//! Shared workload constructors for the benchmark harness and the
//! `repro` binary.
//!
//! Every experiment runs at one of two scales:
//!
//! - [`Scale::Quick`] — minutes-scale parameters for CI and iteration;
//! - [`Scale::Paper`] — the paper's parameters (30,000-image corpus, 100
//!   queries × 5 iterations, 100 pairs per table cell), for the full
//!   reproduction run recorded in EXPERIMENTS.md.

#![warn(missing_docs)]

use qcluster_eval::synthetic::SemanticGapConfig;
use qcluster_eval::Dataset;
use qcluster_imaging::{Corpus, CorpusBuilder, FeatureKind};

/// Workload scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down parameters (fast; same shapes).
    Quick,
    /// The paper's parameters.
    Paper,
}

impl Scale {
    /// Parses `--paper-scale`-style flags.
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--paper-scale" || a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }
}

/// The synthetic image corpus (the Corel-collection substitute).
///
/// Paper scale: 200 categories × 100 images = 20,000 images. The paper's
/// collection had 300 categories, but its real photos discriminate
/// categories through far richer structure than 3 PCA'd color dims can
/// carry for procedural palettes; past ~200 synthetic categories the
/// color feature saturates and every method floors together (see
/// EXPERIMENTS.md). Quick scale: 60 × 20 = 1,200.
pub fn image_corpus(scale: Scale) -> Corpus {
    match scale {
        Scale::Quick => CorpusBuilder::new()
            .categories(60)
            .images_per_category(20)
            .image_size(24)
            .categories_per_super(5)
            .multimodal_fraction(0.4)
            .jitter(0.5)
            .seed(7)
            .build(),
        Scale::Paper => CorpusBuilder::new()
            .categories(200)
            .images_per_category(100)
            .image_size(32)
            .categories_per_super(5)
            .multimodal_fraction(0.4)
            .jitter(0.35)
            .seed(7)
            .build(),
    }
}

/// The image-feature dataset for a given feature kind.
pub fn image_dataset(scale: Scale, kind: FeatureKind) -> Dataset {
    Dataset::from_corpus(&image_corpus(scale), kind).expect("feature pipeline builds")
}

/// The semantic-gap retrieval workload (headline comparison dataset).
///
/// The disjunctive-query phenomenon depends on data DENSITY (DESIGN.md §4
/// and `SemanticGapConfig` docs), so even the quick scale keeps the point
/// count high enough (7,500) that the in-between region of a category's
/// modes contains competing images.
pub fn semantic_gap_dataset(scale: Scale) -> Dataset {
    let config = match scale {
        Scale::Quick => SemanticGapConfig {
            categories: 150,
            ..SemanticGapConfig::default()
        },
        Scale::Paper => SemanticGapConfig::default(),
    };
    Dataset::semantic_gap(&config)
}

/// The retrieval workload for the headline (semantic-gap) comparison —
/// k is fixed to the category size (the paper sets k = 100 with ~100
/// images per category).
pub fn headline_workload(scale: Scale) -> qcluster_eval::experiments::fig6::Fig6Config {
    match scale {
        Scale::Quick => qcluster_eval::experiments::fig6::Fig6Config {
            num_queries: 25,
            iterations: 5,
            k: 50,
            seed: 17,
        },
        Scale::Paper => qcluster_eval::experiments::fig6::Fig6Config {
            num_queries: 100,
            iterations: 5,
            k: 50,
            seed: 17,
        },
    }
}

/// The retrieval workload shape (queries × iterations × k) per scale.
pub fn workload(scale: Scale) -> qcluster_eval::experiments::fig6::Fig6Config {
    match scale {
        Scale::Quick => qcluster_eval::experiments::fig6::Fig6Config {
            num_queries: 15,
            iterations: 3,
            k: 30,
            seed: 17,
        },
        Scale::Paper => qcluster_eval::experiments::fig6::Fig6Config::paper_scale(),
    }
}

/// Host + build fingerprint embedded in every `BENCH_*.json` artifact,
/// one `"key": value,` line per field at the given indent.
///
/// Core-count-gated acceptance bars (e.g. the transport bench's
/// deferred ≥2-core 3× pipelining gate) must stay auditable from the
/// artifact alone: the JSON records how many cores the host had, what
/// the build targeted (`target_cpu` mirrors the workspace
/// `.cargo/config.toml` pin, `target_features` proves it took effect),
/// and when the run happened.
pub fn host_fingerprint_json(indent: &str) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut features: Vec<&str> = Vec::new();
    #[cfg(target_feature = "avx2")]
    features.push("avx2");
    #[cfg(target_feature = "fma")]
    features.push("fma");
    #[cfg(target_feature = "sse4.2")]
    features.push("sse4.2");
    #[cfg(target_feature = "neon")]
    features.push("neon");
    format!(
        "{indent}\"cores\": {cores},\n\
         {indent}\"arch\": \"{arch}\",\n\
         {indent}\"target_cpu\": \"native\",\n\
         {indent}\"target_features\": [{features}],\n\
         {indent}\"unix_timestamp\": {timestamp},\n",
        arch = std::env::consts::ARCH,
        features = features
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", "),
    )
}

/// Streams a synthetic clustered corpus point-by-point into a sealed
/// format-v2 segment (tile-native columns + u8 code column); only the
/// writer's own column staging buffer is held in memory.
///
/// Points are drawn around `centers` well-separated cluster centers
/// with per-dimension jitter, deterministic in `seed` — the same shape
/// the quantize bench queries, at any `n`. This is how the 10M-point
/// corpus for `BENCH_quantize.json` is produced (`dataset-tool synth`
/// wraps it on the command line).
///
/// # Errors
///
/// `InvalidArg` for `n == 0` / `dim == 0`, otherwise I/O failures from
/// the segment writer.
pub fn synth_segment(
    path: &std::path::Path,
    n: u64,
    dim: usize,
    centers: usize,
    seed: u64,
) -> Result<u64, qcluster_store::StoreError> {
    if n == 0 {
        return Err(qcluster_store::StoreError::InvalidArg(
            "synth corpus needs at least one point".into(),
        ));
    }
    // SplitMix64: cheap enough that generation never dominates the
    // 10M-point run, unlike a cryptographic stream.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut unit = move || (next() >> 11) as f64 / (1u64 << 53) as f64;

    let centers = centers.max(1);
    let grid: Vec<Vec<f64>> = (0..centers)
        .map(|_| (0..dim).map(|_| unit() * 20.0 - 10.0).collect())
        .collect();
    let mut writer = qcluster_store::SegmentWriter::create(path, dim)?;
    let mut point = vec![0.0f64; dim];
    for i in 0..n {
        let c = &grid[(i % centers as u64) as usize];
        for (x, &base) in point.iter_mut().zip(c.iter()) {
            *x = base + unit() * 2.0 - 1.0;
        }
        writer.append(&point)?;
    }
    writer.finish()
}

/// Serializes one service [`MetricsSnapshot`] into the shared metrics
/// artifact schema:
///
/// ```json
/// { "bench": "<name>", <host fingerprint…>, "metrics": { …snapshot… } }
/// ```
///
/// The `metrics` value is the serde serialization of `MetricsSnapshot`
/// itself — the exact bytes a wire `Request::Stats` round-trip carries —
/// so the soak report, one-shot scrapes of a live server, and any
/// external monitoring that polls `Stats` all parse **one** schema and
/// can be diffed against each other field-for-field.
pub fn metrics_artifact_json(
    bench: &str,
    snapshot: &qcluster_service::MetricsSnapshot,
) -> Result<String, serde_json::Error> {
    let metrics = serde_json::to_string_pretty(snapshot)?;
    Ok(format!(
        "{{\n  \"bench\": \"{bench}\",\n{fingerprint}  \"metrics\": {metrics}\n}}\n",
        fingerprint = host_fingerprint_json("  "),
    ))
}

/// Writes [`metrics_artifact_json`] to `path` (one-shot `Stats` dump).
///
/// # Errors
///
/// Serialization or filesystem failures, as `std::io::Error`.
pub fn write_metrics_artifact(
    path: impl AsRef<std::path::Path>,
    bench: &str,
    snapshot: &qcluster_service::MetricsSnapshot,
) -> std::io::Result<()> {
    let json = metrics_artifact_json(bench, snapshot)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_artifact_is_valid_json_with_fingerprint_and_snapshot() {
        let service = qcluster_service::Service::new(
            &[
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![2.0, 2.0],
                vec![3.0, 3.0],
            ],
            qcluster_service::ServiceConfig {
                num_shards: 2,
                num_workers: 1,
                ..qcluster_service::ServiceConfig::default()
            },
        )
        .unwrap();
        let json = metrics_artifact_json("stats", &service.stats()).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value.get("bench").and_then(|v| v.as_str()), Some("stats"));
        assert!(value.get("cores").is_some());
        assert!(value.get("unix_timestamp").is_some());
        // The embedded metrics round-trip back into the snapshot type:
        // one schema for the artifact and the wire.
        let metrics = serde_json::to_string(value.get("metrics").unwrap()).unwrap();
        let decoded: qcluster_service::MetricsSnapshot = serde_json::from_str(&metrics).unwrap();
        assert_eq!(decoded, service.stats());
    }

    #[test]
    fn host_fingerprint_records_auditable_host_facts() {
        let json = host_fingerprint_json("  ");
        assert!(json.contains("\"cores\": "));
        assert!(json.contains("\"target_cpu\": \"native\""));
        assert!(json.contains("\"unix_timestamp\": "));
        assert!(json.contains(std::env::consts::ARCH));
        // Every line must be a complete `"key": value,` fragment so the
        // benches can splice it into hand-built JSON objects.
        for line in json.lines() {
            assert!(line.trim_end().ends_with(','), "fragment line: {line:?}");
        }
    }

    #[test]
    fn quick_scale_datasets_build() {
        let ds = semantic_gap_dataset(Scale::Quick);
        assert_eq!(ds.len(), 150 * 50);
        let img = image_dataset(Scale::Quick, FeatureKind::ColorMoments);
        assert_eq!(img.len(), 1200);
        assert_eq!(img.dim(), 3);
    }

    #[test]
    fn scale_flag_parses() {
        assert_eq!(Scale::from_args(&["--paper-scale".into()]), Scale::Paper);
        assert_eq!(Scale::from_args(&[]), Scale::Quick);
    }
}
