//! The simulated user (paper Sec. 5 protocol).
//!
//! The paper obtains feedback from the category ground truth: the "user"
//! marks each retrieved image with its oracle grade. This module wraps
//! that protocol: given the retrieved ids of one round, it returns the
//! relevant set as scored [`FeedbackPoint`]s (same-category images at
//! score 3, related at score 1, the rest unmarked).

use crate::dataset::Dataset;
use crate::oracle::RelevanceOracle;
use qcluster_core::FeedbackPoint;

/// A deterministic oracle-backed user for one query category.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedUser<'a> {
    dataset: &'a Dataset,
    query_category: usize,
    /// Whether related (super-category) images are marked at score 1.
    mark_related: bool,
}

impl<'a> SimulatedUser<'a> {
    /// Creates a user judging for `query_category`, marking related
    /// images too (the paper's protocol).
    pub fn new(dataset: &'a Dataset, query_category: usize) -> Self {
        SimulatedUser {
            dataset,
            query_category,
            mark_related: true,
        }
    }

    /// Disables the related grade (strict same-category feedback).
    pub fn strict(mut self) -> Self {
        self.mark_related = false;
        self
    }

    /// The category this user searches for.
    pub fn query_category(&self) -> usize {
        self.query_category
    }

    /// Marks one round of retrieved images, returning the scored relevant
    /// set (possibly empty — the caller decides how to proceed when the
    /// round surfaced nothing relevant).
    pub fn mark(&self, retrieved: &[usize]) -> Vec<FeedbackPoint> {
        let oracle = RelevanceOracle::new(self.dataset);
        retrieved
            .iter()
            .filter_map(|&id| {
                let score = oracle.score(self.query_category, id);
                let keep = if self.mark_related {
                    score > 0.0
                } else {
                    oracle.is_relevant(self.query_category, id)
                };
                keep.then(|| FeedbackPoint::new(id, self.dataset.vector(id).to_vec(), score))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{SCORE_RELATED, SCORE_SAME_CATEGORY};

    fn dataset() -> Dataset {
        Dataset::from_parts(
            vec![
                vec![0.0],
                vec![0.1],
                vec![1.0],
                vec![1.1],
                vec![5.0],
                vec![5.1],
            ],
            vec![0, 0, 1, 1, 2, 2],
            vec![0, 0, 0, 0, 1, 1],
            2,
        )
    }

    #[test]
    fn marks_same_and_related() {
        let ds = dataset();
        let user = SimulatedUser::new(&ds, 0);
        let marked = user.mark(&[0, 2, 4]);
        assert_eq!(marked.len(), 2);
        assert_eq!(marked[0].id, 0);
        assert_eq!(marked[0].score, SCORE_SAME_CATEGORY);
        assert_eq!(marked[1].id, 2);
        assert_eq!(marked[1].score, SCORE_RELATED);
    }

    #[test]
    fn strict_mode_drops_related() {
        let ds = dataset();
        let user = SimulatedUser::new(&ds, 0).strict();
        let marked = user.mark(&[0, 2, 4]);
        assert_eq!(marked.len(), 1);
        assert_eq!(marked[0].id, 0);
    }

    #[test]
    fn empty_when_nothing_relevant() {
        let ds = dataset();
        let user = SimulatedUser::new(&ds, 0);
        assert!(user.mark(&[4, 5]).is_empty());
    }

    #[test]
    fn feedback_points_carry_vectors() {
        let ds = dataset();
        let user = SimulatedUser::new(&ds, 2);
        let marked = user.mark(&[4]);
        assert_eq!(marked[0].vector, vec![5.0]);
    }
}
