//! The feedback-session driver (paper Sec. 5 protocol).
//!
//! One session reproduces the paper's measurement loop: an initial k-NN
//! from the query example, then `iterations` rounds of
//! *mark-relevant → refine → re-query*. Every approach (Qcluster and all
//! baselines) runs through the same driver via
//! [`RetrievalMethod`], with the same simulated user, so the comparisons
//! of Figs. 7 and 10–13 differ only in the refinement strategy.
//!
//! The driver optionally threads a [`NodeCache`] through the session —
//! the multipoint approach's cross-iteration buffer whose effect Fig. 7
//! measures.

use crate::dataset::Dataset;
use crate::user::SimulatedUser;
use qcluster_baselines::RetrievalMethod;
use qcluster_core::FeedbackPoint;
use qcluster_index::{EuclideanQuery, NodeCache, SearchStats};
use std::time::{Duration, Instant};

/// What one retrieval round produced.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Ranked retrieved image ids (best first), length ≤ k.
    pub retrieved: Vec<usize>,
    /// Tree-search statistics of this round.
    pub stats: SearchStats,
    /// Wall-clock time of the k-NN search plus query compilation.
    pub elapsed: Duration,
    /// How many retrieved images the user marked relevant.
    pub num_marked: usize,
}

/// A completed session: the initial round plus each feedback round.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// `iterations[0]` is the initial query; `iterations[i]` the result
    /// after `i` rounds of feedback.
    pub iterations: Vec<IterationRecord>,
}

impl SessionOutcome {
    /// Total simulated disk reads across the session.
    pub fn total_disk_reads(&self) -> u64 {
        self.iterations.iter().map(|r| r.stats.disk_reads).sum()
    }

    /// Total wall-clock time across the session.
    pub fn total_elapsed(&self) -> Duration {
        self.iterations.iter().map(|r| r.elapsed).sum()
    }
}

/// Drives feedback sessions over one dataset.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackSession<'a> {
    dataset: &'a Dataset,
    /// Result-set size `k` (the paper fixes k = 100).
    pub k: usize,
    /// Whether to thread the multipoint node cache across iterations.
    pub use_node_cache: bool,
}

impl<'a> FeedbackSession<'a> {
    /// Creates a session driver with the paper's defaults for this
    /// dataset scale.
    pub fn new(dataset: &'a Dataset, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        FeedbackSession {
            dataset,
            k,
            use_node_cache: true,
        }
    }

    /// Disables the cross-iteration node cache (fresh I/O every round —
    /// the centroid-approach accounting of Fig. 7).
    pub fn without_node_cache(mut self) -> Self {
        self.use_node_cache = false;
        self
    }

    /// Runs `feedback_rounds` rounds of relevance feedback with `method`
    /// for a query whose example image is `query_image`.
    ///
    /// The method is `reset` first, so one method instance can serve many
    /// queries. If a round marks nothing relevant, the query example
    /// itself is fed (score 3) so every method always has at least one
    /// relevant point — mirroring that the user's example is trivially
    /// relevant.
    ///
    /// # Errors
    ///
    /// Propagates method failures.
    pub fn run(
        &self,
        method: &mut dyn RetrievalMethod,
        query_image: usize,
        feedback_rounds: usize,
    ) -> qcluster_core::Result<SessionOutcome> {
        method.reset();
        let query_category = self.dataset.category(query_image);
        let user = SimulatedUser::new(self.dataset, query_category);
        let mut cache = self
            .use_node_cache
            .then(|| NodeCache::new(self.dataset.tree().num_nodes()));
        let mut iterations = Vec::with_capacity(feedback_rounds + 1);

        // Initial round: plain k-NN from the example image.
        let t0 = Instant::now();
        let initial = EuclideanQuery::new(self.dataset.vector(query_image).to_vec());
        let (neighbors, stats) = self.dataset.tree().knn(&initial, self.k, cache.as_mut());
        let retrieved: Vec<usize> = neighbors.iter().map(|n| n.id).collect();
        let mut marked = user.mark(&retrieved);
        Self::ensure_nonempty(&mut marked, self.dataset, query_image);
        iterations.push(IterationRecord {
            num_marked: marked.len(),
            retrieved,
            stats,
            elapsed: t0.elapsed(),
        });

        for _ in 0..feedback_rounds {
            let t = Instant::now();
            method.feed(&marked)?;
            let query = method.query()?;
            let (neighbors, stats) = self.dataset.tree().knn(&query, self.k, cache.as_mut());
            let retrieved: Vec<usize> = neighbors.iter().map(|n| n.id).collect();
            marked = user.mark(&retrieved);
            Self::ensure_nonempty(&mut marked, self.dataset, query_image);
            iterations.push(IterationRecord {
                num_marked: marked.len(),
                retrieved,
                stats,
                elapsed: t.elapsed(),
            });
        }
        Ok(SessionOutcome { iterations })
    }

    fn ensure_nonempty(marked: &mut Vec<FeedbackPoint>, dataset: &Dataset, query: usize) {
        if marked.is_empty() {
            marked.push(FeedbackPoint::new(
                query,
                dataset.vector(query).to_vec(),
                crate::oracle::SCORE_SAME_CATEGORY,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_core::{QclusterConfig, QclusterEngine};
    use qcluster_imaging::FeatureKind;

    fn dataset() -> Dataset {
        Dataset::small_default(FeatureKind::ColorMoments, 9).unwrap()
    }

    #[test]
    fn session_produces_expected_round_count() {
        let ds = dataset();
        let session = FeedbackSession::new(&ds, 20);
        let mut engine = QclusterEngine::new(QclusterConfig::default());
        let out = session.run(&mut engine, 0, 3).unwrap();
        assert_eq!(out.iterations.len(), 4);
        assert!(out.iterations.iter().all(|r| r.retrieved.len() == 20));
    }

    #[test]
    fn feedback_improves_precision_on_average() {
        let ds = dataset();
        let session = FeedbackSession::new(&ds, 20);
        let mut engine = QclusterEngine::new(QclusterConfig::default());
        let mut init_hits = 0usize;
        let mut final_hits = 0usize;
        for q in [0usize, 24, 50, 75, 100, 130] {
            let out = session.run(&mut engine, q, 3).unwrap();
            let cat = ds.category(q);
            let count = |r: &IterationRecord| {
                r.retrieved
                    .iter()
                    .filter(|&&id| ds.category(id) == cat)
                    .count()
            };
            init_hits += count(&out.iterations[0]);
            final_hits += count(out.iterations.last().unwrap());
        }
        assert!(
            final_hits >= init_hits,
            "feedback should not hurt: {init_hits} -> {final_hits}"
        );
    }

    #[test]
    fn node_cache_reduces_disk_reads() {
        let ds = dataset();
        let mut engine = QclusterEngine::new(QclusterConfig::default());
        let cached = FeedbackSession::new(&ds, 20)
            .run(&mut engine, 0, 3)
            .unwrap();
        let fresh = FeedbackSession::new(&ds, 20)
            .without_node_cache()
            .run(&mut engine, 0, 3)
            .unwrap();
        assert!(
            cached.total_disk_reads() <= fresh.total_disk_reads(),
            "cache must not increase reads: {} vs {}",
            cached.total_disk_reads(),
            fresh.total_disk_reads()
        );
    }

    #[test]
    fn baselines_run_through_the_same_driver() {
        let ds = dataset();
        let session = FeedbackSession::new(&ds, 15);
        let mut qpm = qcluster_baselines::QueryPointMovement::new();
        let mut qex = qcluster_baselines::QueryExpansion::new();
        let mut falcon = qcluster_baselines::Falcon::new();
        for m in [&mut qpm as &mut dyn RetrievalMethod, &mut qex, &mut falcon] {
            let out = session.run(m, 10, 2).unwrap();
            assert_eq!(out.iterations.len(), 3, "{}", m.name());
        }
    }
}
