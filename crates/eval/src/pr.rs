//! Precision/recall machinery (paper Figs. 8–13).
//!
//! The paper's precision–recall graphs plot, per feedback iteration, 100
//! points "each of which shows precision and recall as the number of
//! retrieved images increases from 1 to 100", averaged over 100 random
//! queries.

use crate::dataset::Dataset;
use crate::oracle::RelevanceOracle;

/// One (recall, precision) point at a retrieval depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Retrieval depth `n` (1-based).
    pub n: usize,
    /// Recall at `n`.
    pub recall: f64,
    /// Precision at `n`.
    pub precision: f64,
}

/// A full precision–recall curve: one point per retrieval depth.
pub type PrCurve = Vec<PrPoint>;

/// Precision and recall at a single depth `n` of one ranked list.
///
/// # Panics
///
/// Panics when `n == 0` or exceeds the ranking length.
pub fn pr_at(dataset: &Dataset, query_category: usize, ranking: &[usize], n: usize) -> PrPoint {
    assert!(n > 0 && n <= ranking.len(), "depth out of range");
    let oracle = RelevanceOracle::new(dataset);
    let hits = ranking[..n]
        .iter()
        .filter(|&&id| oracle.is_relevant(query_category, id))
        .count();
    let total = oracle.total_relevant(query_category);
    PrPoint {
        n,
        recall: hits as f64 / total as f64,
        precision: hits as f64 / n as f64,
    }
}

/// Precision at depth `k` of one ranked list, robust to **degraded**
/// answers (a service reporting partial `shards_ok`/`nodes_ok` coverage
/// may return fewer than `k` results, or none at all).
///
/// Unlike [`pr_at`], this never panics on a short list: the denominator
/// stays `k`, so every result a degraded answer failed to surface counts
/// as a miss. Partial coverage can therefore only *clamp* the metric
/// toward zero, never inflate it — a soak harness comparing quality
/// under faults against a healthy baseline needs exactly this bias.
/// Results past depth `k` are ignored; `k == 0` reports `0.0`.
///
/// Ids beyond the labelled corpus (live-ingested overlay vectors have no
/// ground-truth category) count as misses rather than panicking.
pub fn precision_at_k(
    dataset: &Dataset,
    query_category: usize,
    retrieved: &[usize],
    k: usize,
) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let oracle = RelevanceOracle::new(dataset);
    let depth = retrieved.len().min(k);
    let hits = retrieved[..depth]
        .iter()
        .filter(|&&id| id < dataset.len() && oracle.is_relevant(query_category, id))
        .count();
    hits as f64 / k as f64
}

/// The whole curve for one ranked list (depths `1..=ranking.len()`).
pub fn pr_curve(dataset: &Dataset, query_category: usize, ranking: &[usize]) -> PrCurve {
    let oracle = RelevanceOracle::new(dataset);
    let total = oracle.total_relevant(query_category) as f64;
    let mut hits = 0usize;
    ranking
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            if oracle.is_relevant(query_category, id) {
                hits += 1;
            }
            PrPoint {
                n: i + 1,
                recall: hits as f64 / total,
                precision: hits as f64 / (i + 1) as f64,
            }
        })
        .collect()
}

/// Averages several equal-length curves point-wise (the "averaged over 100
/// queries" step).
///
/// # Panics
///
/// Panics on an empty set or ragged curve lengths.
pub fn average_pr_curve(curves: &[PrCurve]) -> PrCurve {
    assert!(!curves.is_empty(), "need at least one curve");
    let len = curves[0].len();
    assert!(
        curves.iter().all(|c| c.len() == len),
        "curves must have equal length"
    );
    (0..len)
        .map(|i| {
            let inv = 1.0 / curves.len() as f64;
            PrPoint {
                n: curves[0][i].n,
                recall: curves.iter().map(|c| c[i].recall).sum::<f64>() * inv,
                precision: curves.iter().map(|c| c[i].precision).sum::<f64>() * inv,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        // Category 0 has 3 images (ids 0–2), category 1 has 3 (ids 3–5).
        Dataset::from_parts(
            (0..6).map(|i| vec![i as f64]).collect(),
            vec![0, 0, 0, 1, 1, 1],
            vec![0, 0, 0, 0, 0, 0],
            3,
        )
    }

    #[test]
    fn perfect_ranking_has_unit_precision() {
        let ds = dataset();
        let curve = pr_curve(&ds, 0, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(curve[0].precision, 1.0);
        assert_eq!(curve[2].precision, 1.0);
        assert_eq!(curve[2].recall, 1.0);
        // After all relevant found, precision decays.
        assert!((curve[5].precision - 0.5).abs() < 1e-12);
        assert_eq!(curve[5].recall, 1.0);
    }

    #[test]
    fn worst_ranking_has_zero_prefix() {
        let ds = dataset();
        let curve = pr_curve(&ds, 0, &[3, 4, 5, 0, 1, 2]);
        assert_eq!(curve[2].precision, 0.0);
        assert_eq!(curve[2].recall, 0.0);
        assert_eq!(curve[5].recall, 1.0);
    }

    #[test]
    fn pr_at_matches_curve() {
        let ds = dataset();
        let ranking = [0, 3, 1, 4, 2, 5];
        let curve = pr_curve(&ds, 0, &ranking);
        for n in 1..=6 {
            let p = pr_at(&ds, 0, &ranking, n);
            assert_eq!(p, curve[n - 1]);
        }
    }

    #[test]
    fn averaging_is_pointwise() {
        let ds = dataset();
        let c1 = pr_curve(&ds, 0, &[0, 1, 2, 3, 4, 5]);
        let c2 = pr_curve(&ds, 0, &[3, 4, 5, 0, 1, 2]);
        let avg = average_pr_curve(&[c1.clone(), c2.clone()]);
        for i in 0..6 {
            assert!((avg[i].precision - 0.5 * (c1[i].precision + c2[i].precision)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "depth out of range")]
    fn zero_depth_panics() {
        let ds = dataset();
        let _ = pr_at(&ds, 0, &[0, 1], 0);
    }

    #[test]
    fn precision_at_k_matches_pr_at_on_full_answers() {
        let ds = dataset();
        let ranking = [0, 3, 1, 4, 2, 5];
        for k in 1..=6 {
            let p = precision_at_k(&ds, 0, &ranking, k);
            assert!((p - pr_at(&ds, 0, &ranking, k).precision).abs() < 1e-12);
        }
    }

    #[test]
    fn precision_at_k_clamps_degraded_answers() {
        let ds = dataset();
        // A degraded answer surfaced only 2 of the k = 4 requested
        // results (partial shard/node coverage). Both happen to be
        // relevant, but the metric must charge the missing slots as
        // misses: 2/4, not 2/2.
        let degraded = [0, 1];
        assert!((precision_at_k(&ds, 0, &degraded, 4) - 0.5).abs() < 1e-12);
        // An empty degraded answer is 0.0, never a panic.
        assert_eq!(precision_at_k(&ds, 0, &[], 4), 0.0);
        // Results past k are ignored, so over-delivery cannot inflate.
        let over = [0, 3, 1, 2, 4, 5];
        assert!((precision_at_k(&ds, 0, &over, 2) - 0.5).abs() < 1e-12);
        // Live-ingested ids beyond the labelled corpus are misses, not
        // panics: [0, 99] at k = 2 scores 1/2.
        assert!((precision_at_k(&ds, 0, &[0, 99], 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn precision_at_k_cannot_exceed_healthy_baseline() {
        let ds = dataset();
        let healthy = [0, 1, 2, 3];
        // Every degraded prefix of a healthy answer scores <= it.
        for depth in 0..healthy.len() {
            assert!(
                precision_at_k(&ds, 0, &healthy[..depth], 4) <= precision_at_k(&ds, 0, &healthy, 4)
            );
        }
        assert_eq!(precision_at_k(&ds, 0, &healthy, 0), 0.0);
    }
}
