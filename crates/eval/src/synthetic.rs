//! Synthetic data generators for the paper's controlled experiments.
//!
//! - [`uniform_cube`] — "10,000 points in ℝ³, randomly distributed
//!   uniformly within the axis-aligned cube (−2,−2,−2) ~ (2,2,2)"
//!   (Example 3 / Fig. 5).
//! - [`GaussianClusters`] — "synthetic data in ℝ¹⁶ … 3 clusters and
//!   their inter-cluster distance values vary from 0.5 to 2.5"; spherical
//!   (`z ~ N(0, I)`) or elliptical (`y = A·z`, `COV(y) = A·Aᵀ`) shapes
//!   (Sec. 5, Figs. 14–17). PCA then reduces 16 → 12/9/6/3 dims.

use qcluster_linalg::{Matrix, Pca};
use qcluster_stats::{GaussianSampler, MultivariateNormal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform points in the axis-aligned cube `[lo, hi]^dim`.
pub fn uniform_cube(n: usize, dim: usize, lo: f64, hi: f64, seed: u64) -> Vec<Vec<f64>> {
    assert!(hi > lo, "invalid cube bounds");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(lo..hi)).collect())
        .collect()
}

/// The cluster geometry of the classification/merging experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterShape {
    /// `z ~ N(μ, I)` — spherical clusters.
    Spherical,
    /// `y = A·z` for a random well-conditioned `A` — elliptical clusters
    /// with covariance `A·Aᵀ` shared by all clusters.
    Elliptical,
}

/// Labelled synthetic Gaussian clusters in ℝ^dim.
#[derive(Debug, Clone)]
pub struct GaussianClusters {
    /// One row per point.
    pub points: Vec<Vec<f64>>,
    /// Cluster label per point.
    pub labels: Vec<usize>,
    /// The true cluster means.
    pub means: Vec<Vec<f64>>,
}

impl GaussianClusters {
    /// Generates `num_clusters` clusters of `points_per_cluster` points in
    /// `dim` dimensions with pairwise mean separation `inter_distance`
    /// (Euclidean, before any linear map).
    ///
    /// Cluster means sit at `inter_distance`-scaled corners of a simplex
    /// along distinct axes, so every pair is equally separated. For
    /// [`ClusterShape::Elliptical`] one random map `A` (orthogonal times
    /// anisotropic scaling in `[0.5, 2]`) is applied to all points and
    /// means, exactly the paper's `y = A·z` construction.
    pub fn generate(
        num_clusters: usize,
        points_per_cluster: usize,
        dim: usize,
        inter_distance: f64,
        shape: ClusterShape,
        seed: u64,
    ) -> Self {
        assert!(
            num_clusters >= 1 && num_clusters <= dim,
            "need clusters <= dim"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Simplex-like means: cluster c sits at inter_distance/√2 on axis c,
        // giving pairwise distance exactly inter_distance.
        let scale = inter_distance / std::f64::consts::SQRT_2;
        let mut means: Vec<Vec<f64>> = (0..num_clusters)
            .map(|c| {
                let mut m = vec![0.0; dim];
                m[c] = scale;
                m
            })
            .collect();

        let mut points = Vec::with_capacity(num_clusters * points_per_cluster);
        let mut labels = Vec::with_capacity(num_clusters * points_per_cluster);
        for (c, mean) in means.iter().enumerate() {
            let mut mvn = MultivariateNormal::standard(mean.clone());
            for _ in 0..points_per_cluster {
                points.push(mvn.sample(&mut rng));
                labels.push(c);
            }
        }

        if shape == ClusterShape::Elliptical {
            let a = random_linear_map(dim, &mut rng);
            for p in &mut points {
                *p = a.matvec(p);
            }
            for m in &mut means {
                *m = a.matvec(m);
            }
        }
        GaussianClusters {
            points,
            labels,
            means,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// PCA-projects all points to `k` dimensions (fitted on this data),
    /// returning the projected copy — the paper's 16 → 12/9/6/3 reduction
    /// plus the retained-variance ratio reported in Tables 2–3.
    ///
    /// # Errors
    ///
    /// Propagates PCA failures.
    pub fn reduce(&self, k: usize) -> qcluster_linalg::Result<(GaussianClusters, f64)> {
        let rows: Vec<&[f64]> = self.points.iter().map(|p| p.as_slice()).collect();
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data)?;
        let projected = self.points.iter().map(|p| pca.transform(p, k)).collect();
        let means = self.means.iter().map(|m| pca.transform(m, k)).collect();
        Ok((
            GaussianClusters {
                points: projected,
                labels: self.labels.clone(),
                means,
            },
            pca.retained_variance(k),
        ))
    }
}

/// Parameters of the **semantic-gap retrieval workload** — the controlled
/// feature-space counterpart of the paper's Corel experiments.
///
/// The paper's premise is that a user's category is *multimodal in feature
/// space*: "the relevant images are mapped to disjoint clusters of
/// arbitrary shapes" (Sec. 1). This workload realizes that premise
/// directly: every category is a pair of tight uniform modes at a
/// controlled separation. Three regime conditions (all satisfied by the
/// defaults, and all verified by the experiments to be necessary for the
/// paper's headline comparison) define when disjunctive queries pay off:
///
/// 1. **Disjoint**: mode separation ≫ within-mode spread
///    (`gap / sigma ≈ 7`), so one moved/averaged query point cannot cover
///    both modes without covering the junk between them.
/// 2. **Discoverable**: mode separation is within the k-NN reach
///    (`gap < diameter · (k/n)^(1/dim)`), so the *other* mode's images
///    appear in early result sets and get marked — no feedback method can
///    exploit structure the user never sees.
/// 3. **Dense**: enough categories that the volume between and around a
///    category's modes contains competing images — the regime of 30,000
///    heterogeneous Corel images in a 3-dim color feature space.
#[derive(Debug, Clone, Copy)]
pub struct SemanticGapConfig {
    /// Number of categories (paper: ~300).
    pub categories: usize,
    /// Points per mode (category size = 2 × this).
    pub per_mode: usize,
    /// Within-mode half-spread scale.
    pub sigma: f64,
    /// Distance between a category's two mode centers.
    pub gap: f64,
    /// Feature dimensionality (paper's color feature: 3).
    pub dim: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SemanticGapConfig {
    fn default() -> Self {
        SemanticGapConfig {
            categories: 300,
            per_mode: 25,
            sigma: 0.015,
            gap: 0.10,
            dim: 3,
            seed: 11,
        }
    }
}

/// Generates the semantic-gap workload: vectors, category labels, and
/// super-category labels (5 categories per super-category).
///
/// Returns `(vectors, categories, super_categories, images_per_category)`
/// ready for `Dataset::from_parts`.
pub fn semantic_gap_corpus(
    config: &SemanticGapConfig,
) -> (Vec<Vec<f64>>, Vec<usize>, Vec<usize>, usize) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dim = config.dim;
    let mut vectors = Vec::with_capacity(2 * config.per_mode * config.categories);
    let mut cats = Vec::with_capacity(vectors.capacity());
    let mut supers = Vec::with_capacity(vectors.capacity());
    for c in 0..config.categories {
        // Mode A center uniform in the unit cube; mode B at `gap` along a
        // random direction.
        let a: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
        let dir: Vec<f64> = {
            let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let n = qcluster_linalg::vecops::norm(&v).max(1e-12);
            v.iter().map(|x| x / n).collect()
        };
        let b: Vec<f64> = a
            .iter()
            .zip(&dir)
            .map(|(x, d)| x + d * config.gap)
            .collect();
        for center in [&a, &b] {
            for _ in 0..config.per_mode {
                vectors.push(
                    center
                        .iter()
                        .map(|&m| m + rng.gen_range(-1.5..1.5) * config.sigma)
                        .collect(),
                );
                cats.push(c);
                supers.push(c / 5);
            }
        }
    }
    (vectors, cats, supers, 2 * config.per_mode)
}

/// A random well-conditioned linear map: orthogonal basis (via Gram–
/// Schmidt on Gaussian vectors) times anisotropic scaling in `[0.5, 2]`.
pub fn random_linear_map(dim: usize, rng: &mut StdRng) -> Matrix {
    let mut g = GaussianSampler::new();
    // Random Gaussian matrix → orthonormalize columns.
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(dim);
    while cols.len() < dim {
        let mut v = g.sample_vec(rng, dim);
        for c in &cols {
            let proj = qcluster_linalg::vecops::dot(&v, c);
            qcluster_linalg::vecops::axpy(&mut v, c, -proj);
        }
        let n = qcluster_linalg::vecops::norm(&v);
        if n > 1e-8 {
            for x in &mut v {
                *x /= n;
            }
            cols.push(v);
        }
    }
    let mut a = Matrix::zeros(dim, dim);
    for (j, col) in cols.iter().enumerate() {
        let s = rng.gen_range(0.5..2.0);
        for i in 0..dim {
            a.set(i, j, col[i] * s);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cube_respects_bounds() {
        let pts = uniform_cube(500, 3, -2.0, 2.0, 1);
        assert_eq!(pts.len(), 500);
        assert!(pts
            .iter()
            .all(|p| p.iter().all(|&x| (-2.0..2.0).contains(&x))));
    }

    #[test]
    fn gaussian_clusters_have_requested_structure() {
        let g = GaussianClusters::generate(3, 50, 16, 2.0, ClusterShape::Spherical, 7);
        assert_eq!(g.len(), 150);
        assert_eq!(g.means.len(), 3);
        // Pairwise mean distances equal the requested separation.
        for i in 0..3 {
            for j in (i + 1)..3 {
                let d = qcluster_linalg::vecops::sq_euclidean(&g.means[i], &g.means[j]).sqrt();
                assert!((d - 2.0).abs() < 1e-12, "pair ({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn elliptical_shape_changes_covariance() {
        let s = GaussianClusters::generate(3, 200, 8, 1.0, ClusterShape::Spherical, 3);
        let e = GaussianClusters::generate(3, 200, 8, 1.0, ClusterShape::Elliptical, 3);
        // Per-dimension variance of cluster 0 should be ≈1 for spherical
        // and visibly anisotropic for elliptical.
        let var_of = |g: &GaussianClusters, d: usize| {
            let vals: Vec<f64> = g
                .points
                .iter()
                .zip(&g.labels)
                .filter(|(_, &l)| l == 0)
                .map(|(p, _)| p[d])
                .collect();
            qcluster_stats::descriptive::population_variance(&vals).unwrap()
        };
        let s_vars: Vec<f64> = (0..8).map(|d| var_of(&s, d)).collect();
        let e_vars: Vec<f64> = (0..8).map(|d| var_of(&e, d)).collect();
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                / v.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(spread(&s_vars) < 2.0, "spherical spread {:?}", s_vars);
        assert!(
            spread(&e_vars) > spread(&s_vars),
            "elliptical not anisotropic"
        );
    }

    #[test]
    fn reduction_keeps_labels_and_reports_variance() {
        let g = GaussianClusters::generate(3, 40, 16, 1.5, ClusterShape::Spherical, 5);
        let (r, ratio) = g.reduce(9).unwrap();
        assert_eq!(r.len(), g.len());
        assert_eq!(r.points[0].len(), 9);
        assert_eq!(r.labels, g.labels);
        assert!(ratio > 0.4 && ratio <= 1.0, "ratio {ratio}");
        // Reducing to full dim keeps all variance.
        let (_, full) = g.reduce(16).unwrap();
        assert!((full - 1.0).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = GaussianClusters::generate(2, 10, 4, 1.0, ClusterShape::Elliptical, 11);
        let b = GaussianClusters::generate(2, 10, 4, 1.0, ClusterShape::Elliptical, 11);
        assert_eq!(a.points, b.points);
    }
}
