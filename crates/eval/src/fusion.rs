//! Multi-feature retrieval: weighted fusion of per-feature rankings.
//!
//! The paper evaluates its features separately, but the MARS system it
//! extends answers queries over **combinations** of features (color AND
//! texture), weighting each feature's distance. This module provides that
//! production capability: several [`Dataset`]s over the same image ids
//! (one per feature space), a query per space, and a fused ranking by the
//! normalized weighted sum of per-feature distances.
//!
//! Distance scales differ across feature spaces, so raw sums would let
//! one feature dominate. Each feature's distances are normalized by their
//! mean over the candidate pool before weighting — the standard MARS-era
//! intra-/inter-feature normalization.

use crate::dataset::Dataset;
use qcluster_index::{Neighbor, QueryDistance};

/// A stack of feature spaces over one image collection.
#[derive(Debug, Clone)]
pub struct MultiFeatureDataset {
    features: Vec<Dataset>,
}

impl MultiFeatureDataset {
    /// Bundles per-feature datasets. All must describe the same images:
    /// equal lengths and identical category labelling.
    ///
    /// # Panics
    ///
    /// Panics on an empty list or mismatched collections.
    pub fn new(features: Vec<Dataset>) -> Self {
        assert!(!features.is_empty(), "need at least one feature space");
        let n = features[0].len();
        for f in &features[1..] {
            assert_eq!(f.len(), n, "feature spaces must cover the same images");
            assert!(
                (0..n).all(|i| f.category(i) == features[0].category(i)),
                "feature spaces must share ground truth"
            );
        }
        MultiFeatureDataset { features }
    }

    /// Number of feature spaces.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// The `f`-th feature space.
    pub fn feature(&self, f: usize) -> &Dataset {
        &self.features[f]
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.features[0].len()
    }

    /// `true` when the collection is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Category of image `id` (shared across feature spaces).
    pub fn category(&self, id: usize) -> usize {
        self.features[0].category(id)
    }

    /// Fused k-NN: for each image, each feature's distance is divided by
    /// that feature's mean distance over the collection, then combined as
    /// `Σ w_f · d̃_f`; the `k` smallest win.
    ///
    /// `queries` supplies one compiled query per feature space (same
    /// order); `weights` the per-feature importances (non-negative, at
    /// least one positive).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches, invalid weights, or `k == 0`.
    pub fn knn_fused(
        &self,
        queries: &[&dyn QueryDistance],
        weights: &[f64],
        k: usize,
    ) -> Vec<Neighbor> {
        assert_eq!(queries.len(), self.features.len(), "one query per feature");
        assert_eq!(weights.len(), self.features.len(), "one weight per feature");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        assert!(weights.iter().any(|&w| w > 0.0), "need a positive weight");
        assert!(k > 0, "k must be positive");

        let n = self.len();
        let mut fused = vec![0.0; n];
        for ((dataset, query), &w) in self.features.iter().zip(queries.iter()).zip(weights.iter()) {
            if w == 0.0 {
                continue;
            }
            let mut dists = Vec::with_capacity(n);
            let mut sum = 0.0;
            for id in 0..n {
                let d = query.distance(dataset.vector(id));
                sum += d;
                dists.push(d);
            }
            let mean = (sum / n as f64).max(1e-300);
            for (acc, d) in fused.iter_mut().zip(dists.iter()) {
                *acc += w * d / mean;
            }
        }
        let mut out: Vec<Neighbor> = fused
            .into_iter()
            .enumerate()
            .map(|(id, distance)| Neighbor { id, distance })
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("non-NaN distances")
                .then_with(|| a.id.cmp(&b.id))
        });
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_index::EuclideanQuery;

    /// Two synthetic feature spaces over 4 categories × 5 images:
    /// categories 0/1 are separable only in "color", 2/3 only in
    /// "texture"; the other feature is uninformative noise-free overlap.
    fn stack() -> MultiFeatureDataset {
        let mut color = Vec::new();
        let mut texture = Vec::new();
        let mut cats = Vec::new();
        for cat in 0..4usize {
            for i in 0..5usize {
                let jitter = i as f64 * 0.01;
                let color_value = match cat {
                    0 => 0.0,
                    1 => 1.0,
                    _ => 0.5, // categories 2/3 overlap in color
                };
                let texture_value = match cat {
                    2 => 0.0,
                    3 => 1.0,
                    _ => 0.5, // categories 0/1 overlap in texture
                };
                color.push(vec![color_value + jitter]);
                texture.push(vec![texture_value + jitter]);
                cats.push(cat);
            }
        }
        let supers = cats.clone();
        MultiFeatureDataset::new(vec![
            Dataset::from_parts(color, cats.clone(), supers.clone(), 5),
            Dataset::from_parts(texture, cats, supers, 5),
        ])
    }

    fn hits(mf: &MultiFeatureDataset, result: &[Neighbor], cat: usize) -> usize {
        result.iter().filter(|n| mf.category(n.id) == cat).count()
    }

    #[test]
    fn fusion_beats_single_features_when_both_matter() {
        let mf = stack();
        // Query image 0 (category 0): color separates it; texture is blind.
        let qc = EuclideanQuery::new(mf.feature(0).vector(0).to_vec());
        let qt = EuclideanQuery::new(mf.feature(1).vector(0).to_vec());
        let color_only = mf.knn_fused(&[&qc, &qt], &[1.0, 0.0], 5);
        let both = mf.knn_fused(&[&qc, &qt], &[1.0, 1.0], 5);
        assert_eq!(hits(&mf, &color_only, 0), 5);
        assert_eq!(hits(&mf, &both, 0), 5, "fusion must keep the color win");

        // Query image 10 (category 2): texture separates it.
        let qc = EuclideanQuery::new(mf.feature(0).vector(10).to_vec());
        let qt = EuclideanQuery::new(mf.feature(1).vector(10).to_vec());
        let texture_only = mf.knn_fused(&[&qc, &qt], &[0.0, 1.0], 5);
        let both = mf.knn_fused(&[&qc, &qt], &[1.0, 1.0], 5);
        assert_eq!(hits(&mf, &texture_only, 2), 5);
        assert_eq!(hits(&mf, &both, 2), 5, "fusion must keep the texture win");
    }

    #[test]
    fn blind_feature_alone_cannot_separate() {
        let mf = stack();
        // Texture alone cannot distinguish category 0 from 1.
        let qt = EuclideanQuery::new(mf.feature(1).vector(0).to_vec());
        let qc = EuclideanQuery::new(mf.feature(0).vector(0).to_vec());
        let texture_only = mf.knn_fused(&[&qc, &qt], &[0.0, 1.0], 10);
        let cat0 = hits(&mf, &texture_only, 0);
        let cat1 = hits(&mf, &texture_only, 1);
        assert!(cat0 + cat1 == 10, "blind feature mixes the two categories");
        assert!(cat1 > 0, "category 1 leaks in without the color feature");
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let mf = stack();
        let qc = EuclideanQuery::new(mf.feature(0).vector(3).to_vec());
        let qt = EuclideanQuery::new(mf.feature(1).vector(3).to_vec());
        let out = mf.knn_fused(&[&qc, &qt], &[0.7, 0.3], 20);
        assert_eq!(out.len(), 20);
        for w in out.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        let mut ids: Vec<usize> = out.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    #[should_panic(expected = "share ground truth")]
    fn mismatched_labels_rejected() {
        let a = Dataset::from_parts(vec![vec![0.0], vec![1.0]], vec![0, 0], vec![0, 0], 2);
        let b = Dataset::from_parts(vec![vec![0.0], vec![1.0]], vec![0, 1], vec![0, 0], 1);
        let _ = MultiFeatureDataset::new(vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "need a positive weight")]
    fn zero_weights_rejected() {
        let mf = stack();
        let qc = EuclideanQuery::new(mf.feature(0).vector(0).to_vec());
        let qt = EuclideanQuery::new(mf.feature(1).vector(0).to_vec());
        let _ = mf.knn_fused(&[&qc, &qt], &[0.0, 0.0], 5);
    }
}
