//! The category-based relevance oracle (paper Sec. 5).
//!
//! "We use high-level category information as the ground truth to obtain
//! the relevance feedback … images from the same category are considered
//! most relevant and images from related categories (such as flowers and
//! plants) are considered relevant."
//!
//! Scores: 3 for same category, 1 for same super-category (the "related"
//! grade), 0 otherwise. Precision/recall use the **binary** same-category
//! ground truth — the graded scores exist to weight the feedback, not to
//! redefine the target set.

use crate::dataset::Dataset;

/// Relevance score for the most relevant grade (same category).
pub const SCORE_SAME_CATEGORY: f64 = 3.0;
/// Relevance score for the related grade (same super-category).
pub const SCORE_RELATED: f64 = 1.0;

/// Ground-truth relevance judgements for one dataset.
#[derive(Debug, Clone, Copy)]
pub struct RelevanceOracle<'a> {
    dataset: &'a Dataset,
}

impl<'a> RelevanceOracle<'a> {
    /// Creates an oracle over `dataset`.
    pub fn new(dataset: &'a Dataset) -> Self {
        RelevanceOracle { dataset }
    }

    /// The graded relevance score of `image` for a query of
    /// `query_category`: 3, 1, or 0.
    pub fn score(&self, query_category: usize, image: usize) -> f64 {
        if self.dataset.category(image) == query_category {
            SCORE_SAME_CATEGORY
        } else if self.same_super(query_category, image) {
            SCORE_RELATED
        } else {
            0.0
        }
    }

    /// Binary ground truth used by precision/recall: same category only.
    pub fn is_relevant(&self, query_category: usize, image: usize) -> bool {
        self.dataset.category(image) == query_category
    }

    /// Whether `image` is "related" (same super-category, different
    /// category).
    pub fn same_super(&self, query_category: usize, image: usize) -> bool {
        let img_cat = self.dataset.category(image);
        if img_cat == query_category {
            return false;
        }
        // Find the super-category of the query category via any image
        // labelled with it — categories are contiguous blocks.
        let per = self.dataset.images_per_category();
        let probe = query_category * per;
        self.dataset.super_category(image) == self.dataset.super_category(probe)
    }

    /// Total number of relevant images for a query of `query_category`
    /// (the recall denominator).
    pub fn total_relevant(&self, _query_category: usize) -> usize {
        self.dataset.images_per_category()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        // 3 categories × 2 images; categories 0 and 1 share super 0.
        Dataset::from_parts(
            vec![
                vec![0.0],
                vec![0.1],
                vec![1.0],
                vec![1.1],
                vec![5.0],
                vec![5.1],
            ],
            vec![0, 0, 1, 1, 2, 2],
            vec![0, 0, 0, 0, 1, 1],
            2,
        )
    }

    #[test]
    fn grades_follow_category_structure() {
        let ds = dataset();
        let o = RelevanceOracle::new(&ds);
        assert_eq!(o.score(0, 0), SCORE_SAME_CATEGORY);
        assert_eq!(o.score(0, 1), SCORE_SAME_CATEGORY);
        assert_eq!(o.score(0, 2), SCORE_RELATED);
        assert_eq!(o.score(0, 4), 0.0);
    }

    #[test]
    fn binary_relevance_is_same_category_only() {
        let ds = dataset();
        let o = RelevanceOracle::new(&ds);
        assert!(o.is_relevant(0, 1));
        assert!(!o.is_relevant(0, 2));
        assert!(!o.is_relevant(0, 4));
    }

    #[test]
    fn recall_denominator_is_category_size() {
        let ds = dataset();
        let o = RelevanceOracle::new(&ds);
        assert_eq!(o.total_relevant(0), 2);
        assert_eq!(o.total_relevant(2), 2);
    }

    #[test]
    fn related_requires_same_super_different_category() {
        let ds = dataset();
        let o = RelevanceOracle::new(&ds);
        assert!(o.same_super(0, 2));
        assert!(!o.same_super(0, 0));
        assert!(!o.same_super(0, 4));
    }
}
