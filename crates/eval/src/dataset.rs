//! An indexed image database with category ground truth.

use qcluster_imaging::{Corpus, CorpusBuilder, FeatureKind, FeatureSet};
use qcluster_index::HybridTree;

/// The retrieval database: reduced feature vectors, their hybrid-tree
/// index, and per-image category / super-category labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    vectors: Vec<Vec<f64>>,
    categories: Vec<usize>,
    super_categories: Vec<usize>,
    tree: HybridTree,
    images_per_category: usize,
}

impl Dataset {
    /// Builds a dataset straight from raw vectors and labels (synthetic
    /// experiments).
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched label lengths.
    pub fn from_parts(
        vectors: Vec<Vec<f64>>,
        categories: Vec<usize>,
        super_categories: Vec<usize>,
        images_per_category: usize,
    ) -> Self {
        assert!(!vectors.is_empty(), "dataset must be non-empty");
        assert_eq!(vectors.len(), categories.len(), "label length mismatch");
        assert_eq!(
            vectors.len(),
            super_categories.len(),
            "super-label length mismatch"
        );
        let tree = HybridTree::bulk_load(&vectors);
        Dataset {
            vectors,
            categories,
            super_categories,
            tree,
            images_per_category,
        }
    }

    /// Renders a synthetic corpus, extracts `kind` features, and indexes
    /// them — the standard preparation for the retrieval experiments.
    ///
    /// # Errors
    ///
    /// Propagates feature-pipeline failures.
    pub fn from_corpus(corpus: &Corpus, kind: FeatureKind) -> qcluster_linalg::Result<Self> {
        let fs = FeatureSet::build(corpus, kind)?;
        let n = fs.len();
        Ok(Dataset::from_parts(
            (0..n).map(|i| fs.vector(i).to_vec()).collect(),
            (0..n).map(|i| fs.category(i)).collect(),
            (0..n).map(|i| fs.super_category(i)).collect(),
            corpus.images_per_category(),
        ))
    }

    /// Builds the controlled **semantic-gap** retrieval workload (see
    /// [`crate::synthetic::SemanticGapConfig`]) — the dataset on which the
    /// paper's headline Qcluster > QEX > QPM comparison is reproduced.
    pub fn semantic_gap(config: &crate::synthetic::SemanticGapConfig) -> Self {
        let (vectors, cats, supers, per) = crate::synthetic::semantic_gap_corpus(config);
        Dataset::from_parts(vectors, cats, supers, per)
    }

    /// A small default corpus configuration for tests and examples.
    ///
    /// # Errors
    ///
    /// Propagates feature-pipeline failures.
    pub fn small_default(kind: FeatureKind, seed: u64) -> qcluster_linalg::Result<Self> {
        let corpus = CorpusBuilder::new()
            .categories(12)
            .images_per_category(12)
            .image_size(24)
            .categories_per_super(4)
            .seed(seed)
            .build();
        Self::from_corpus(&corpus, kind)
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` when the dataset is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.vectors[0].len()
    }

    /// The feature vector of image `id`.
    pub fn vector(&self, id: usize) -> &[f64] {
        &self.vectors[id]
    }

    /// All feature vectors.
    pub fn vectors(&self) -> &[Vec<f64>] {
        &self.vectors
    }

    /// Category of image `id`.
    pub fn category(&self, id: usize) -> usize {
        self.categories[id]
    }

    /// Super-category of image `id`.
    pub fn super_category(&self, id: usize) -> usize {
        self.super_categories[id]
    }

    /// Number of images sharing each category label (constant by corpus
    /// construction).
    pub fn images_per_category(&self) -> usize {
        self.images_per_category
    }

    /// The hybrid-tree index over the vectors.
    pub fn tree(&self) -> &HybridTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_wires_everything() {
        let ds = Dataset::from_parts(
            vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]],
            vec![0, 0, 1],
            vec![0, 0, 0],
            2,
        );
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.category(2), 1);
        assert_eq!(ds.super_category(2), 0);
        assert_eq!(ds.tree().len(), 3);
    }

    #[test]
    fn from_corpus_builds_consistent_labels() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 5).unwrap();
        assert_eq!(ds.len(), 144);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.category(0), 0);
        assert_eq!(ds.category(143), 11);
        assert_eq!(ds.images_per_category(), 12);
    }

    #[test]
    #[should_panic(expected = "label length mismatch")]
    fn mismatched_labels_rejected() {
        let _ = Dataset::from_parts(vec![vec![0.0]], vec![], vec![], 1);
    }
}
