//! Dataset geometry diagnostics.
//!
//! Whether relevance feedback — and especially *disjunctive* feedback —
//! can help on a dataset is a property of its feature-space geometry. This
//! module computes the quantities that predict it (the same analysis that
//! identified the semantic-gap workload's regime conditions; DESIGN.md §4):
//!
//! - per-category **within-spread** vs **between-category separation**
//!   (how hard retrieval is at all),
//! - a per-category **bimodality score** from a 2-means split (whether a
//!   category's relevant set forms disjoint clusters — the paper's
//!   complex-query condition),
//! - the **k-NN reach** (how far a top-k result set extends), which
//!   bounds what feedback can ever discover.

use crate::dataset::Dataset;
use qcluster_linalg::vecops;

/// Geometry summary of one category.
#[derive(Debug, Clone)]
pub struct CategoryDiagnostics {
    /// Category id.
    pub category: usize,
    /// Radial spread: RMS distance of members to their centroid.
    pub within_spread: f64,
    /// Distance from this category's centroid to the nearest other
    /// category's centroid.
    pub nearest_other_centroid: f64,
    /// 2-means bimodality: `gap / σ` where `gap` is the distance between
    /// the two sub-mode centroids and `σ` the mean within-sub-mode spread.
    /// Splitting *unimodal uniform* data scores 2√3 ≈ 3.46 (the analytic
    /// worst case), so values ≳ 4 indicate genuinely disjoint modes.
    pub bimodality: f64,
}

/// Whole-dataset geometry summary.
#[derive(Debug, Clone)]
pub struct DatasetDiagnostics {
    /// Per-category rows.
    pub categories: Vec<CategoryDiagnostics>,
    /// Mean within-category spread.
    pub mean_within: f64,
    /// Mean nearest-other-centroid distance.
    pub mean_between: f64,
    /// Approximate radius of a top-k result ball: the mean k-th NN
    /// distance over a sample of query points.
    pub knn_reach: f64,
    /// `k` used for the reach estimate.
    pub reach_k: usize,
}

impl DatasetDiagnostics {
    /// Separation ratio `mean_between / mean_within` — ≳ 2 means
    /// categories are retrievable at all.
    pub fn separation_ratio(&self) -> f64 {
        self.mean_between / self.mean_within.max(1e-300)
    }

    /// Fraction of categories with bimodality ≥ 4 (disjoint modes; the
    /// threshold sits above the 2√3 ≈ 3.46 score that splitting unimodal
    /// uniform data produces).
    pub fn multimodal_fraction(&self) -> f64 {
        let n = self.categories.len().max(1);
        self.categories
            .iter()
            .filter(|c| c.bimodality >= 4.0)
            .count() as f64
            / n as f64
    }
}

/// Computes the diagnostics; `reach_k` sets the k for the reach estimate
/// (use the retrieval k).
///
/// # Panics
///
/// Panics when `reach_k` is zero or exceeds the dataset size.
pub fn analyze(dataset: &Dataset, reach_k: usize) -> DatasetDiagnostics {
    assert!(reach_k > 0 && reach_k <= dataset.len(), "bad reach_k");
    let per = dataset.images_per_category();
    let num_categories = dataset.len() / per;
    let dim = dataset.dim();

    // Centroids + spreads.
    let mut centroids = Vec::with_capacity(num_categories);
    let mut spreads = Vec::with_capacity(num_categories);
    for c in 0..num_categories {
        let members: Vec<&[f64]> = (c * per..(c + 1) * per)
            .map(|i| dataset.vector(i))
            .collect();
        let mut centroid = vec![0.0; dim];
        for m in &members {
            vecops::axpy(&mut centroid, m, 1.0);
        }
        for v in &mut centroid {
            *v /= members.len() as f64;
        }
        let spread = (members
            .iter()
            .map(|m| vecops::sq_euclidean(m, &centroid))
            .sum::<f64>()
            / members.len() as f64)
            .sqrt();
        centroids.push(centroid);
        spreads.push(spread);
    }

    let mut rows = Vec::with_capacity(num_categories);
    for c in 0..num_categories {
        let nearest = (0..num_categories)
            .filter(|&o| o != c)
            .map(|o| vecops::sq_euclidean(&centroids[c], &centroids[o]).sqrt())
            .fold(f64::INFINITY, f64::min);
        let members: Vec<&[f64]> = (c * per..(c + 1) * per)
            .map(|i| dataset.vector(i))
            .collect();
        rows.push(CategoryDiagnostics {
            category: c,
            within_spread: spreads[c],
            nearest_other_centroid: nearest,
            bimodality: bimodality(&members),
        });
    }

    // k-NN reach: mean k-th neighbor distance over a deterministic sample.
    let scan = qcluster_index::LinearScan::new(dataset.vectors());
    let sample: Vec<usize> = (0..dataset.len())
        .step_by((dataset.len() / 25).max(1))
        .collect();
    let mut reach = 0.0;
    for &q in &sample {
        let query = qcluster_index::EuclideanQuery::new(dataset.vector(q).to_vec());
        let nn = scan.knn(&query, reach_k);
        reach += nn.last().expect("non-empty").distance.sqrt();
    }
    reach /= sample.len() as f64;

    let mean_within = spreads.iter().sum::<f64>() / spreads.len() as f64;
    let mean_between =
        rows.iter().map(|r| r.nearest_other_centroid).sum::<f64>() / rows.len() as f64;
    DatasetDiagnostics {
        categories: rows,
        mean_within,
        mean_between,
        knn_reach: reach,
        reach_k,
    }
}

/// 2-means bimodality score of a point set: split with a few Lloyd
/// iterations seeded by the farthest pair, then report
/// `centroid gap / mean sub-mode spread`. Near-unimodal data scores ≈ 1–2;
/// disjoint modes score ≫ 3.
fn bimodality(points: &[&[f64]]) -> f64 {
    if points.len() < 4 {
        return 0.0;
    }
    let dim = points[0].len();
    // Seed with the farthest pair from point 0 (cheap approximation).
    let far1 = (0..points.len())
        .max_by(|&a, &b| {
            vecops::sq_euclidean(points[a], points[0])
                .partial_cmp(&vecops::sq_euclidean(points[b], points[0]))
                .expect("non-NaN")
        })
        .expect("non-empty");
    let far2 = (0..points.len())
        .max_by(|&a, &b| {
            vecops::sq_euclidean(points[a], points[far1])
                .partial_cmp(&vecops::sq_euclidean(points[b], points[far1]))
                .expect("non-NaN")
        })
        .expect("non-empty");
    let mut c1 = points[far1].to_vec();
    let mut c2 = points[far2].to_vec();

    let mut assign = vec![false; points.len()];
    for _ in 0..8 {
        for (i, p) in points.iter().enumerate() {
            assign[i] = vecops::sq_euclidean(p, &c2) < vecops::sq_euclidean(p, &c1);
        }
        let mut n1 = 0.0;
        let mut n2 = 0.0;
        let mut s1 = vec![0.0; dim];
        let mut s2 = vec![0.0; dim];
        for (i, p) in points.iter().enumerate() {
            if assign[i] {
                vecops::axpy(&mut s2, p, 1.0);
                n2 += 1.0;
            } else {
                vecops::axpy(&mut s1, p, 1.0);
                n1 += 1.0;
            }
        }
        if n1 == 0.0 || n2 == 0.0 {
            return 0.0;
        }
        for v in &mut s1 {
            *v /= n1;
        }
        for v in &mut s2 {
            *v /= n2;
        }
        c1 = s1;
        c2 = s2;
    }
    let gap = vecops::sq_euclidean(&c1, &c2).sqrt();
    let spread_of = |which: bool, center: &[f64]| -> (f64, usize) {
        let mut acc = 0.0;
        let mut n = 0;
        for (i, p) in points.iter().enumerate() {
            if assign[i] == which {
                acc += vecops::sq_euclidean(p, center);
                n += 1;
            }
        }
        (acc, n)
    };
    let (a1, n1) = spread_of(false, &c1);
    let (a2, n2) = spread_of(true, &c2);
    if n1 == 0 || n2 == 0 {
        return 0.0;
    }
    let sigma = ((a1 + a2) / (n1 + n2) as f64).sqrt();
    gap / sigma.max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SemanticGapConfig;

    #[test]
    fn semantic_gap_workload_reads_as_multimodal() {
        let ds = Dataset::semantic_gap(&SemanticGapConfig {
            categories: 20,
            per_mode: 10,
            ..SemanticGapConfig::default()
        });
        let d = analyze(&ds, 20);
        assert_eq!(d.categories.len(), 20);
        assert!(
            d.multimodal_fraction() > 0.9,
            "built-to-be-bimodal categories: {}",
            d.multimodal_fraction()
        );
        assert!(d.separation_ratio() > 1.0);
        assert!(d.knn_reach > 0.0);
    }

    #[test]
    fn unimodal_blobs_read_as_unimodal() {
        // Tight single-mode categories on a line.
        let mut vectors = Vec::new();
        let mut cats = Vec::new();
        for c in 0..5usize {
            for i in 0..10usize {
                vectors.push(vec![c as f64 * 10.0 + (i as f64) * 0.01, 0.0]);
                cats.push(c);
            }
        }
        let ds = Dataset::from_parts(vectors, cats.clone(), cats, 10);
        let d = analyze(&ds, 10);
        assert!(
            d.multimodal_fraction() < 0.3,
            "uniform blobs misread: {}",
            d.multimodal_fraction()
        );
        assert!(d.separation_ratio() > 10.0, "clearly separated categories");
    }

    #[test]
    fn reach_grows_with_k() {
        let ds = Dataset::semantic_gap(&SemanticGapConfig {
            categories: 15,
            per_mode: 10,
            ..SemanticGapConfig::default()
        });
        let small = analyze(&ds, 5).knn_reach;
        let large = analyze(&ds, 50).knn_reach;
        assert!(large > small);
    }
}
