//! Evaluation harness for the Qcluster reproduction.
//!
//! This crate turns the substrates (imaging, index, core, baselines) into
//! the paper's experiments:
//!
//! - [`dataset`] — an indexed image database with ground truth.
//! - [`oracle`] — the category-based relevance oracle (Sec. 5: "images
//!   from the same category are considered most relevant and images from
//!   related categories … are considered relevant").
//! - [`user`] — the simulated user that scores retrieved images.
//! - [`pr`] — precision/recall machinery and averaging over query sets.
//! - [`session`] — the feedback-session driver: initial k-NN, user marks,
//!   method refines, repeat.
//! - [`synthetic`] — the synthetic data generators of Sec. 5 (uniform
//!   cube for Fig. 5, spherical/elliptical Gaussian clusters in ℝ¹⁶ for
//!   Figs. 14–19 and Tables 2–3).
//! - [`experiments`] — one driver per paper figure/table, each returning
//!   printable structured rows (consumed by the `repro` binary and the
//!   criterion benches).

#![warn(missing_docs)]
// Indexed loops over multiple parallel buffers are the clearest (and often
// fastest) form for the dense numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]

pub mod dataset;
pub mod diagnostics;
pub mod experiments;
pub mod fusion;
pub mod oracle;
pub mod persist;
pub mod pr;
pub mod session;
pub mod synthetic;
pub mod user;

pub use dataset::Dataset;
pub use fusion::MultiFeatureDataset;
pub use oracle::RelevanceOracle;
pub use persist::{
    load_dataset, load_dataset_auto, load_dataset_binary, save_dataset, save_dataset_binary,
    PersistError,
};
pub use pr::{average_pr_curve, pr_at, precision_at_k, PrCurve, PrPoint};
pub use session::{FeedbackSession, IterationRecord, SessionOutcome};
pub use user::SimulatedUser;
