//! One driver per paper figure/table.
//!
//! Every driver exposes a config struct (with a scaled-down
//! [`Default`] for tests and a `paper_scale()` preset matching the paper's
//! parameters where feasible) and a `run` function returning structured
//! rows. The `repro` binary in `qcluster-bench` prints them; the criterion
//! benches time them.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig5`] | Fig. 5 — disjunctive query on the uniform cube |
//! | [`fig6`] | Fig. 6 — CPU time, inverse vs diagonal scheme |
//! | [`fig7`] | Fig. 7 — execution cost of the three approaches |
//! | [`fig8_9`] | Figs. 8–9 — P–R graphs per iteration (color / texture) |
//! | [`fig10_13`] | Figs. 10–13 — recall & precision of the three approaches |
//! | [`fig14_17`] | Figs. 14–17 — classification error rate grids |
//! | [`fig18_19`] | Figs. 18–19 — T² vs c² Q–Q plots |
//! | [`table2_3`] | Tables 2–3 — T² accuracy, same/different means |
//! | [`ablation`] | design-choice quality ablations (DESIGN.md §7) |

pub mod ablation;
pub mod fig10_13;
pub mod fig14_17;
pub mod fig18_19;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8_9;
pub mod table2_3;
