//! Figs. 10–13 — recall and precision of the three approaches per
//! iteration.
//!
//! "Figure 10 and 11 compare the recall for query clustering, query point
//! movement, and query expansion at each iteration. Figure 12 and 13
//! compare the precision … They produce the same precision and the same
//! recall for the initial query. These figures show that the precision and
//! the recall of our method increase at each iteration and outperform
//! those of the query point movement and the query expansion approach."
//!
//! The headline numbers to reproduce in shape: Qcluster beats QEX by
//! ≈20–22% and QPM by ≈31–35% in final-iteration recall/precision.

use crate::dataset::Dataset;
use crate::experiments::fig6::{query_ids, Fig6Config};
use crate::pr::pr_at;
use crate::session::FeedbackSession;
use qcluster_baselines::{Falcon, MindReader, QueryExpansion, QueryPointMovement, RetrievalMethod};
use qcluster_core::{QclusterConfig, QclusterEngine};

/// Parameters (same workload shape as Fig. 6).
pub type Fig1013Config = Fig6Config;

/// Per-iteration mean recall and precision of one approach.
#[derive(Debug, Clone)]
pub struct ApproachQuality {
    /// Display name ("qcluster", "qpm", "qex").
    pub name: &'static str,
    /// `recall[i]` after `i` feedback rounds (index 0 = initial query).
    pub recall: Vec<f64>,
    /// `precision[i]` after `i` feedback rounds.
    pub precision: Vec<f64>,
}

/// Runs one approach over the workload, measuring quality at depth `k`.
pub fn run_method(
    dataset: &Dataset,
    config: &Fig1013Config,
    method: &mut dyn RetrievalMethod,
) -> ApproachQuality {
    let k = config.k.min(dataset.len());
    let session = FeedbackSession::new(dataset, k);
    let queries = query_ids(dataset, config);
    let mut recall = vec![0.0; config.iterations + 1];
    let mut precision = vec![0.0; config.iterations + 1];
    for &q in &queries {
        let out = session
            .run(method, q, config.iterations)
            .expect("session runs");
        let cat = dataset.category(q);
        for (i, rec) in out.iterations.iter().enumerate() {
            let depth = rec.retrieved.len().min(k);
            let p = pr_at(dataset, cat, &rec.retrieved, depth);
            recall[i] += p.recall;
            precision[i] += p.precision;
        }
    }
    let n = queries.len() as f64;
    ApproachQuality {
        name: method.name(),
        recall: recall.into_iter().map(|r| r / n).collect(),
        precision: precision.into_iter().map(|p| p / n).collect(),
    }
}

/// Runs the paper's three approaches (Qcluster, QPM, QEX).
pub fn run(dataset: &Dataset, config: &Fig1013Config) -> Vec<ApproachQuality> {
    let mut qcluster = QclusterEngine::new(QclusterConfig::default());
    let mut qpm = QueryPointMovement::new();
    let mut qex = QueryExpansion::new();
    vec![
        run_method(dataset, config, &mut qcluster),
        run_method(dataset, config, &mut qpm),
        run_method(dataset, config, &mut qex),
    ]
}

/// Runs all five implemented approaches (adds MindReader and FALCON —
/// systems the paper discusses but only compares on execution cost).
pub fn run_all(dataset: &Dataset, config: &Fig1013Config) -> Vec<ApproachQuality> {
    let mut results = run(dataset, config);
    let mut mindreader = MindReader::new();
    let mut falcon = Falcon::new();
    results.push(run_method(dataset, config, &mut mindreader));
    results.push(run_method(dataset, config, &mut falcon));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_imaging::FeatureKind;

    #[test]
    fn initial_iteration_is_identical_across_approaches() {
        // "They produce the same precision and the same recall for the
        // initial query" — the initial round is method-independent.
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 31).unwrap();
        let cfg = Fig1013Config {
            num_queries: 4,
            iterations: 1,
            k: 12,
            seed: 9,
        };
        let results = run(&ds, &cfg);
        let r0 = results[0].recall[0];
        let p0 = results[0].precision[0];
        for r in &results[1..] {
            assert!((r.recall[0] - r0).abs() < 1e-12, "{}", r.name);
            assert!((r.precision[0] - p0).abs() < 1e-12, "{}", r.name);
        }
    }

    #[test]
    fn headline_ordering_on_semantic_gap_workload() {
        // The paper's headline (Figs. 10–13): Qcluster > QEX > QPM after
        // feedback. Reproduced on a scaled-down semantic-gap workload.
        let ds = Dataset::semantic_gap(&crate::synthetic::SemanticGapConfig {
            categories: 80,
            per_mode: 15,
            sigma: 0.015,
            gap: 0.10,
            dim: 3,
            seed: 11,
        });
        let cfg = Fig1013Config {
            num_queries: 15,
            iterations: 3,
            k: 30,
            seed: 3,
        };
        let results = run(&ds, &cfg);
        let final_recall = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| *r.recall.last().unwrap())
                .unwrap()
        };
        let (qc, qex, qpm) = (
            final_recall("qcluster"),
            final_recall("qex"),
            final_recall("qpm"),
        );
        assert!(qc > qpm, "qcluster {qc} must beat qpm {qpm}");
        assert!(qc > qex * 0.99, "qcluster {qc} must not trail qex {qex}");
    }

    #[test]
    fn qcluster_competitive_after_feedback() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 31).unwrap();
        let cfg = Fig1013Config {
            num_queries: 8,
            iterations: 3,
            k: 12,
            seed: 9,
        };
        let results = run(&ds, &cfg);
        let final_recall = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| *r.recall.last().unwrap())
                .unwrap()
        };
        // On a small corpus just require: Qcluster is not dominated.
        let qc = final_recall("qcluster");
        let qpm = final_recall("qpm");
        assert!(
            qc >= qpm * 0.8,
            "qcluster {qc} collapsed relative to qpm {qpm}"
        );
    }
}
