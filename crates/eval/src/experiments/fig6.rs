//! Fig. 6 — CPU cost of the inverse-matrix vs diagonal-matrix scheme.
//!
//! "Figure 6 compares the CPU cost of an inverse matrix scheme and a
//! diagonal matrix scheme for the Qcluster approach when color moments are
//! used as a feature. The diagonal matrix scheme … significantly
//! outperforms the inverse matrix scheme in terms of CPU time."
//!
//! The driver runs the same query workload under both
//! [`CovarianceScheme`]s and reports the mean per-iteration wall-clock
//! time. The dominant asymptotic difference (O(p) vs O(p³) inversions plus
//! O(p) vs O(p²) distance kernels) is hardware-independent, so the *shape*
//! — diagonal ≪ inverse — carries over from the paper's Sun Ultra II.

use crate::dataset::Dataset;
use crate::session::FeedbackSession;
use qcluster_core::{CovarianceScheme, QclusterConfig, QclusterEngine};
use std::time::Duration;

/// Parameters for the scheme-cost comparison.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Config {
    /// Number of random initial queries (paper: 100).
    pub num_queries: usize,
    /// Feedback iterations after the initial query (paper: 5).
    pub iterations: usize,
    /// Result-set size (paper: 100).
    pub k: usize,
    /// RNG seed for query selection.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            num_queries: 10,
            iterations: 3,
            k: 20,
            seed: 17,
        }
    }
}

impl Fig6Config {
    /// The paper's workload shape.
    pub fn paper_scale() -> Self {
        Fig6Config {
            num_queries: 100,
            iterations: 5,
            k: 100,
            seed: 17,
        }
    }
}

/// One row: per-iteration mean CPU time under both schemes.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Iteration index (0 = initial query).
    pub iteration: usize,
    /// Mean wall-clock time with the diagonal scheme.
    pub diagonal: Duration,
    /// Mean wall-clock time with the full-inverse scheme.
    pub inverse: Duration,
}

/// Runs the workload under one scheme, returning per-iteration mean times.
fn run_scheme(dataset: &Dataset, config: &Fig6Config, scheme: CovarianceScheme) -> Vec<Duration> {
    let session = FeedbackSession::new(dataset, config.k.min(dataset.len()));
    let mut engine = QclusterEngine::new(QclusterConfig {
        scheme,
        ..QclusterConfig::default()
    });
    let mut totals = vec![Duration::ZERO; config.iterations + 1];
    let queries = query_ids(dataset, config);
    for &q in &queries {
        let out = session
            .run(&mut engine, q, config.iterations)
            .expect("session runs");
        for (i, rec) in out.iterations.iter().enumerate() {
            totals[i] += rec.elapsed;
        }
    }
    totals
        .into_iter()
        .map(|t| t / queries.len() as u32)
        .collect()
}

/// Deterministic pseudo-random query image ids.
pub(crate) fn query_ids(dataset: &Dataset, config: &Fig6Config) -> Vec<usize> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.num_queries)
        .map(|_| rng.gen_range(0..dataset.len()))
        .collect()
}

/// Runs the full comparison.
pub fn run(dataset: &Dataset, config: &Fig6Config) -> Vec<Fig6Row> {
    let diag = run_scheme(dataset, config, CovarianceScheme::default_diagonal());
    let inv = run_scheme(dataset, config, CovarianceScheme::default_full());
    diag.into_iter()
        .zip(inv)
        .enumerate()
        .map(|(iteration, (diagonal, inverse))| Fig6Row {
            iteration,
            diagonal,
            inverse,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_imaging::FeatureKind;

    #[test]
    fn produces_one_row_per_iteration() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 3).unwrap();
        let cfg = Fig6Config {
            num_queries: 3,
            iterations: 2,
            k: 15,
            seed: 1,
        };
        let rows = run(&ds, &cfg);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.diagonal > Duration::ZERO));
        assert!(rows.iter().all(|r| r.inverse > Duration::ZERO));
    }
}
