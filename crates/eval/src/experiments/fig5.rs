//! Fig. 5 / Example 3 — the disjunctive query on synthetic uniform data.
//!
//! "The synthetic data consists of 10,000 points in ℝ³, randomly
//! distributed uniformly within the axis-aligned cube (−2,−2,−2) ~
//! (2,2,2). We used the aggregate distance function (Equation (5)) …
//! S_i⁻¹ is computed using a diagonal matrix scheme and m_i is set to 1
//! for all i. Points were retrieved if and only if they were within 1.0
//! units of either (−1,−1,−1) or (1,1,1). 820 points were retrieved."
//!
//! The experiment verifies that ranking by the aggregate distance (Eq. 5)
//! reproduces the two-ball OR-region: the top-N aggregate results (N =
//! size of the OR-region) should overlap the region almost perfectly, and
//! the scatter data returned lets the harness print both ball memberships.

use crate::synthetic::uniform_cube;
use qcluster_baselines::{AggregateKind, MultiPointQuery};
use qcluster_index::LinearScan;

/// Parameters of the Fig. 5 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Config {
    /// Number of uniform points (paper: 10,000).
    pub num_points: usize,
    /// Ball radius (paper: 1.0).
    pub radius: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            num_points: 2_000,
            radius: 1.0,
            seed: 42,
        }
    }
}

impl Fig5Config {
    /// The paper's exact scale.
    pub fn paper_scale() -> Self {
        Fig5Config {
            num_points: 10_000,
            radius: 1.0,
            seed: 42,
        }
    }
}

/// Results of the Fig. 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Number of points inside either unit ball (paper: 820 of 10,000).
    pub in_or_region: usize,
    /// Fraction of the OR-region recovered in the top-N aggregate ranking.
    pub overlap_fraction: f64,
    /// The retrieved points (for scatter-plot output), tagged with which
    /// ball they fall in (0, 1, or 2 = neither — aggregate-only pulls).
    pub retrieved: Vec<(Vec<f64>, u8)>,
}

/// The two query centers of Example 3.
pub const CENTERS: [[f64; 3]; 2] = [[-1.0, -1.0, -1.0], [1.0, 1.0, 1.0]];

/// Runs the experiment.
pub fn run(config: &Fig5Config) -> Fig5Result {
    let points = uniform_cube(config.num_points, 3, -2.0, 2.0, config.seed);
    let r2 = config.radius * config.radius;

    let ball = |p: &[f64]| -> u8 {
        let d0 = qcluster_linalg::vecops::sq_euclidean(p, &CENTERS[0]);
        let d1 = qcluster_linalg::vecops::sq_euclidean(p, &CENTERS[1]);
        if d0 <= r2 {
            0
        } else if d1 <= r2 {
            1
        } else {
            2
        }
    };
    let in_region: Vec<usize> = (0..points.len())
        .filter(|&i| ball(&points[i]) != 2)
        .collect();

    // Eq. 5 with identity per-cluster S⁻¹ and m_i = 1.
    let query = MultiPointQuery::uniform(
        CENTERS.iter().map(|c| c.to_vec()).collect(),
        AggregateKind::FuzzyOr { alpha: -1.0 },
    );
    // NOTE: Eq. 5 is the harmonic (α = −1 over squared distances ≡ α = −2
    // over distances) form; MultiPointQuery components are already squared
    // quadratic forms, so α = −1 here reproduces Eq. 5 exactly.
    let scan = LinearScan::new(&points);
    let top = scan.knn(&query, in_region.len().max(1));

    let hits = top.iter().filter(|n| ball(&points[n.id]) != 2).count();
    let retrieved = top
        .iter()
        .map(|n| (points[n.id].clone(), ball(&points[n.id])))
        .collect();

    Fig5Result {
        in_or_region: in_region.len(),
        overlap_fraction: if in_region.is_empty() {
            1.0
        } else {
            hits as f64 / in_region.len() as f64
        },
        retrieved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_ranking_recovers_or_region() {
        let r = run(&Fig5Config::default());
        assert!(r.in_or_region > 0);
        assert!(
            r.overlap_fraction > 0.85,
            "overlap only {}",
            r.overlap_fraction
        );
    }

    #[test]
    fn region_size_matches_geometry() {
        // Ball volume fraction: 2 · (4π/3 r³) / 4³ ≈ 0.131 ⇒ ~1,310 of
        // 10,000 (the paper's 820 count corresponds to its specific seed;
        // balls near the cube corner are partially clipped — centers at
        // (±1,±1,±1) keep the full ball inside, so expect the analytic
        // fraction here).
        let r = run(&Fig5Config::paper_scale());
        let expected = 2.0 * (4.0 / 3.0) * std::f64::consts::PI / 64.0 * 10_000.0;
        assert!(
            (r.in_or_region as f64 - expected).abs() < 0.15 * expected,
            "got {} expected ≈{expected}",
            r.in_or_region
        );
    }

    #[test]
    fn retrieved_points_are_tagged() {
        let r = run(&Fig5Config::default());
        assert_eq!(r.retrieved.len(), r.in_or_region.max(1));
        assert!(r.retrieved.iter().any(|(_, b)| *b == 0));
        assert!(r.retrieved.iter().any(|(_, b)| *b == 1));
    }
}
