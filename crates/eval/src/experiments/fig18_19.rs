//! Figs. 18–19 — Q–Q plots of T² values against critical distances.
//!
//! "Given 100 pairs of clusters of size 30 … Figure 18 and 19 show the
//! quantile-quantile plot of 100 T² values and 100 critical distance
//! values for 50 pairs of clusters with same mean and 50 pairs of clusters
//! with different mean. Critical distance values are calculated from
//! random F value\[s\] … (Eq. 20)."
//!
//! The expected picture: same-mean pairs sit at or below the `T² = c²`
//! line (mergeable); different-mean pairs sit above it (separate). Both
//! statistics are reported on the F scale (`T² / scale-factor`), matching
//! the magnitudes printed in the paper's Tables 2–3.

use qcluster_stats::hotelling::PooledScheme;
use qcluster_stats::sampling::random_f;
use qcluster_stats::{two_sample_t2, MultivariateNormal};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the Q–Q experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig1819Config {
    /// Pairs per group (paper: 50 same-mean + 50 different-mean).
    pub pairs_per_group: usize,
    /// Cluster size (paper: 30).
    pub cluster_size: usize,
    /// Data dimensionality after reduction (paper's Q–Q uses 12).
    pub dim: usize,
    /// Mean separation of the "different" group.
    pub separation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig1819Config {
    fn default() -> Self {
        Fig1819Config {
            pairs_per_group: 50,
            cluster_size: 30,
            dim: 12,
            separation: 2.0,
            seed: 99,
        }
    }
}

/// One Q–Q point set.
#[derive(Debug, Clone)]
pub struct Fig1819Result {
    /// Sorted F-scaled T² values of the same-mean pairs.
    pub t2_same: Vec<f64>,
    /// Sorted F-scaled T² values of the different-mean pairs.
    pub t2_diff: Vec<f64>,
    /// Sorted random-F critical values (Eq. 20), one per pair.
    pub critical: Vec<f64>,
}

/// Scale factor turning T² into an F statistic for `(p, m)`:
/// `F = T² (m − p − 1) / (p (m − 2))`.
pub fn f_scale(p: usize, m: f64) -> f64 {
    (m - p as f64 - 1.0) / (p as f64 * (m - 2.0))
}

/// Runs the Q–Q experiment under one pooled-covariance scheme
/// (Fig. 18: `FullInverse`; Fig. 19: `Diagonal`).
pub fn run(config: &Fig1819Config, scheme: PooledScheme) -> Fig1819Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let p = config.dim;
    let n = config.cluster_size;
    let m = 2.0 * n as f64;
    let scale = f_scale(p, m);
    let d2 = m as usize - p - 1;

    let sample_pair = |separated: bool, rng: &mut StdRng| -> f64 {
        let mean_b = if separated {
            let mut v = vec![0.0; p];
            v[0] = config.separation;
            v
        } else {
            vec![0.0; p]
        };
        let a = MultivariateNormal::standard(vec![0.0; p]).sample_matrix(rng, n);
        let b = MultivariateNormal::standard(mean_b).sample_matrix(rng, n);
        let test = two_sample_t2(&a, &b, 0.05, scheme).expect("t2 computes");
        test.t2 * scale
    };

    let mut t2_same: Vec<f64> = (0..config.pairs_per_group)
        .map(|_| sample_pair(false, &mut rng))
        .collect();
    let mut t2_diff: Vec<f64> = (0..config.pairs_per_group)
        .map(|_| sample_pair(true, &mut rng))
        .collect();
    let mut critical: Vec<f64> = (0..2 * config.pairs_per_group)
        .map(|_| random_f(&mut rng, p, d2))
        .collect();

    t2_same.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    t2_diff.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    critical.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
    Fig1819Result {
        t2_same,
        t2_diff,
        critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median(xs: &[f64]) -> f64 {
        xs[xs.len() / 2]
    }

    #[test]
    fn same_mean_pairs_sit_near_the_f_line() {
        for scheme in [PooledScheme::FullInverse, PooledScheme::Diagonal] {
            let r = run(&Fig1819Config::default(), scheme);
            // Median F-scaled T² of same-mean pairs ≈ median of random F.
            let m_t2 = median(&r.t2_same);
            let m_f = median(&r.critical);
            assert!(
                (m_t2 - m_f).abs() < 0.75,
                "{scheme:?}: medians {m_t2} vs {m_f}"
            );
        }
    }

    #[test]
    fn different_mean_pairs_sit_above_the_line() {
        let r = run(&Fig1819Config::default(), PooledScheme::FullInverse);
        // The smallest different-mean statistic should exceed the median
        // critical value by a comfortable margin.
        assert!(
            r.t2_diff[0] > median(&r.critical),
            "separated pairs not separated: {} vs {}",
            r.t2_diff[0],
            median(&r.critical)
        );
    }

    #[test]
    fn outputs_are_sorted() {
        let r = run(&Fig1819Config::default(), PooledScheme::Diagonal);
        for v in [&r.t2_same, &r.t2_diff, &r.critical] {
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
