//! Fig. 7 — execution cost of the three approaches.
//!
//! "The proposed Qcluster shows … similar performance with the multipoint
//! approach and outperforms the centroid-based approach such as MARS and
//! FALCON. This is because our k-NN search is based on the multipoint
//! approach that saves the execution cost of an iteration by caching the
//! information of index nodes generated during the previous iterations."
//!
//! The cost proxy is **simulated disk reads**: node accesses not served by
//! the session's cross-iteration [`NodeCache`](qcluster_index::NodeCache).
//! Qcluster runs with the
//! cache (the multipoint approach); the centroid-style baselines (QPM,
//! QEX) re-issue fresh queries each round, so they run without it.

use crate::dataset::Dataset;
use crate::experiments::fig6::{query_ids, Fig6Config};
use crate::session::FeedbackSession;
use qcluster_baselines::{QueryExpansion, QueryPointMovement, RetrievalMethod};
use qcluster_core::{QclusterConfig, QclusterEngine};
use std::time::Duration;

/// Parameters (shared shape with Fig. 6's workload).
pub type Fig7Config = Fig6Config;

/// Per-iteration cost of one approach.
#[derive(Debug, Clone)]
pub struct ApproachCost {
    /// Display name.
    pub name: &'static str,
    /// Mean simulated disk reads per iteration (index 0 = initial query).
    pub disk_reads: Vec<f64>,
    /// Mean wall-clock per iteration.
    pub elapsed: Vec<Duration>,
}

/// Runs one approach over the workload.
fn run_method(
    dataset: &Dataset,
    config: &Fig7Config,
    method: &mut dyn RetrievalMethod,
    with_cache: bool,
) -> ApproachCost {
    let mut session = FeedbackSession::new(dataset, config.k.min(dataset.len()));
    if !with_cache {
        session = session.without_node_cache();
    }
    let queries = query_ids(dataset, config);
    let mut reads = vec![0.0; config.iterations + 1];
    let mut times = vec![Duration::ZERO; config.iterations + 1];
    for &q in &queries {
        let out = session
            .run(method, q, config.iterations)
            .expect("session runs");
        for (i, rec) in out.iterations.iter().enumerate() {
            reads[i] += rec.stats.disk_reads as f64;
            times[i] += rec.elapsed;
        }
    }
    let n = queries.len() as f64;
    ApproachCost {
        name: method.name(),
        disk_reads: reads.into_iter().map(|r| r / n).collect(),
        elapsed: times
            .into_iter()
            .map(|t| t / queries.len() as u32)
            .collect(),
    }
}

/// Runs the three-approach comparison.
pub fn run(dataset: &Dataset, config: &Fig7Config) -> Vec<ApproachCost> {
    let mut qcluster = QclusterEngine::new(QclusterConfig::default());
    let mut qpm = QueryPointMovement::new();
    let mut qex = QueryExpansion::new();
    vec![
        run_method(dataset, config, &mut qcluster, true),
        run_method(dataset, config, &mut qpm, false),
        run_method(dataset, config, &mut qex, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_imaging::FeatureKind;

    #[test]
    fn qcluster_saves_disk_reads_after_first_iteration() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 3).unwrap();
        let cfg = Fig7Config {
            num_queries: 5,
            iterations: 3,
            k: 20,
            seed: 2,
        };
        let costs = run(&ds, &cfg);
        assert_eq!(costs.len(), 3);
        let qcluster = &costs[0];
        assert_eq!(qcluster.name, "qcluster");
        // Later iterations of the cached approach must be cheaper than its
        // own cold first iteration.
        let cold = qcluster.disk_reads[0];
        let warm_max = qcluster.disk_reads[1..]
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max);
        assert!(
            warm_max <= cold * 1.5,
            "warm iterations should not balloon: cold {cold}, warm {warm_max}"
        );
        // And the total cached cost should undercut the uncached baselines'.
        let total = |c: &ApproachCost| c.disk_reads.iter().sum::<f64>();
        assert!(
            total(qcluster) <= total(&costs[1]) * 1.25,
            "qcluster {} vs qpm {}",
            total(qcluster),
            total(&costs[1])
        );
    }
}
