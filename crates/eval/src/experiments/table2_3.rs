//! Tables 2–3 — accuracy of the T² merge test, same vs different means,
//! inverse vs diagonal pooled covariance, across PCA dimensions.
//!
//! "Given 100 pairs of clusters of size 30, 100 T² values and
//! corresponding critical distance (c²) values are computed. Quantile-F
//! values … are the critical distance values given by the 95th percentile
//! F_{p,n−p}(0.05) … If \[the\] T² value is larger than \[the\] corresponding
//! c² value, reject H₀." Table 2 holds the same-mean pairs (error =
//! spurious rejection), Table 3 the different-mean pairs (error = missed
//! rejection).
//!
//! Data generation follows Sec. 5: 16-dim Gaussians (spherical for the
//! tables' reference runs) PCA-reduced to 12/9/6/3 with the retained
//! "variation ratio" reported per row. Statistics are reported on the F
//! scale like the paper's T² column (see `fig18_19::f_scale`).

use crate::experiments::fig18_19::f_scale;
use crate::synthetic::{ClusterShape, GaussianClusters};
use qcluster_linalg::Matrix;
use qcluster_stats::f_quantile;
use qcluster_stats::hotelling::{two_sample_t2, PooledScheme};

/// Parameters of the table experiment.
#[derive(Debug, Clone)]
pub struct Table23Config {
    /// Pairs per grid cell (paper: 100).
    pub pairs: usize,
    /// Cluster size (paper: 30).
    pub cluster_size: usize,
    /// PCA target dimensions (paper: 12, 9, 6, 3 from ℝ¹⁶).
    pub dims: Vec<usize>,
    /// Mean separation of the different-mean group.
    pub separation: f64,
    /// Significance level (paper: 0.05).
    pub alpha: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Table23Config {
    fn default() -> Self {
        Table23Config {
            pairs: 40,
            cluster_size: 30,
            dims: vec![12, 9, 6, 3],
            separation: 2.0,
            alpha: 0.05,
            seed: 4242,
        }
    }
}

impl Table23Config {
    /// The paper's scale (100 pairs per cell).
    pub fn paper_scale() -> Self {
        Table23Config {
            pairs: 100,
            ..Self::default()
        }
    }
}

/// One table row.
#[derive(Debug, Clone, Copy)]
pub struct TableRow {
    /// PCA dimension.
    pub dim: usize,
    /// Mean retained-variance ("variation ratio" column).
    pub variation_ratio: f64,
    /// Mean F-scaled T² over the pairs ("T²" column).
    pub mean_t2: f64,
    /// `F_{p, n−p}(α)` ("quantile-F" column).
    pub quantile_f: f64,
    /// Percentage of wrong verdicts ("error-ratio (%)" column).
    pub error_ratio: f64,
}

/// Which population the pairs are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeanHypothesis {
    /// Both clusters share one mean (Table 2; error = false rejection).
    Same,
    /// Means differ by `separation` (Table 3; error = missed rejection).
    Different,
}

/// Runs one table (same- or different-mean) under one pooled scheme.
pub fn run(
    config: &Table23Config,
    hypothesis: MeanHypothesis,
    scheme: PooledScheme,
) -> Vec<TableRow> {
    let n = config.cluster_size;
    let m = 2.0 * n as f64;
    let mut rows = Vec::with_capacity(config.dims.len());
    for (di, &dim) in config.dims.iter().enumerate() {
        let scale = f_scale(dim, m);
        let quantile_f = f_quantile(dim, 2 * n - dim, config.alpha);
        let mut sum_t2 = 0.0;
        let mut errors = 0usize;
        let mut sum_ratio = 0.0;
        for pair in 0..config.pairs {
            let seed = config
                .seed
                .wrapping_add(pair as u64)
                .wrapping_mul(di as u64 + 7)
                .wrapping_add(match hypothesis {
                    MeanHypothesis::Same => 0,
                    MeanHypothesis::Different => 1_000_000,
                });
            // Two 16-dim clusters at the requested separation (0 for the
            // same-mean table), reduced together so both live in one PCA
            // basis — the same pipeline the engine uses.
            let separation = match hypothesis {
                MeanHypothesis::Same => 0.0,
                MeanHypothesis::Different => config.separation,
            };
            let full = GaussianClusters::generate(
                2,
                n,
                16,
                separation.max(1e-9),
                ClusterShape::Spherical,
                seed,
            );
            let (reduced, ratio) = full.reduce(dim).expect("PCA reduces");
            sum_ratio += ratio;
            let (a, b) = split_pair(&reduced, n, dim);
            let t = two_sample_t2(&a, &b, config.alpha, scheme).expect("t2 computes");
            sum_t2 += t.t2 * scale;
            let wrong = match hypothesis {
                MeanHypothesis::Same => t.t2 * scale > quantile_f,
                MeanHypothesis::Different => t.t2 * scale <= quantile_f,
            };
            if wrong {
                errors += 1;
            }
        }
        rows.push(TableRow {
            dim,
            variation_ratio: sum_ratio / config.pairs as f64,
            mean_t2: sum_t2 / config.pairs as f64,
            quantile_f,
            error_ratio: 100.0 * errors as f64 / config.pairs as f64,
        });
    }
    rows
}

fn split_pair(data: &GaussianClusters, n: usize, dim: usize) -> (Matrix, Matrix) {
    let mut a = Matrix::zeros(n, dim);
    let mut b = Matrix::zeros(n, dim);
    let (mut ia, mut ib) = (0, 0);
    for (p, &l) in data.points.iter().zip(&data.labels) {
        if l == 0 {
            a.row_mut(ia).copy_from_slice(p);
            ia += 1;
        } else {
            b.row_mut(ib).copy_from_slice(p);
            ib += 1;
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Table23Config {
        Table23Config {
            pairs: 25,
            dims: vec![12, 3],
            ..Table23Config::default()
        }
    }

    #[test]
    fn same_mean_error_is_near_alpha() {
        for scheme in [PooledScheme::FullInverse, PooledScheme::Diagonal] {
            let rows = run(&cfg(), MeanHypothesis::Same, scheme);
            for row in &rows {
                assert!(
                    row.error_ratio <= 25.0,
                    "{scheme:?} dim {}: error {}%",
                    row.dim,
                    row.error_ratio
                );
                // Mean F-scaled T² should be O(1), like the paper's
                // 0.4–1.1 column.
                assert!(row.mean_t2 < 3.0, "mean T² {}", row.mean_t2);
            }
        }
    }

    #[test]
    fn different_mean_t2_is_large() {
        let rows = run(&cfg(), MeanHypothesis::Different, PooledScheme::FullInverse);
        for row in &rows {
            assert!(
                row.mean_t2 > row.quantile_f,
                "dim {}: separated means not detected ({} <= {})",
                row.dim,
                row.mean_t2,
                row.quantile_f
            );
            assert!(row.error_ratio <= 20.0);
        }
    }

    #[test]
    fn quantile_f_matches_paper_values() {
        let rows = run(&cfg(), MeanHypothesis::Same, PooledScheme::Diagonal);
        let q12 = rows.iter().find(|r| r.dim == 12).unwrap().quantile_f;
        // Paper Table 2: quantile-F at dim 12 is 1.96 (F_{12,48}(0.05)).
        assert!((q12 - 1.96).abs() < 0.02, "q12 = {q12}");
    }

    #[test]
    fn variation_ratio_decreases_with_dim() {
        let rows = run(&cfg(), MeanHypothesis::Same, PooledScheme::Diagonal);
        let v12 = rows.iter().find(|r| r.dim == 12).unwrap().variation_ratio;
        let v3 = rows.iter().find(|r| r.dim == 3).unwrap().variation_ratio;
        assert!(v12 > v3);
    }
}
