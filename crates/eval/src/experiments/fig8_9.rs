//! Figs. 8–9 — precision–recall graphs of Qcluster per iteration.
//!
//! "Figure 8 and 9 show the precision-recall graphs for our method when
//! color moments and co-occurrence matrix texture are used … one line is
//! plotted per iteration. Each line is drawn with 100 points, each of
//! which shows precision and recall as the number of retrieved images
//! increases from 1 to 100." The paper's two observations to reproduce:
//! quality improves every iteration, and the first iteration improves it
//! the most (fast convergence).

use crate::dataset::Dataset;
use crate::experiments::fig6::{query_ids, Fig6Config};
use crate::pr::{average_pr_curve, pr_curve, PrCurve};
use crate::session::FeedbackSession;
use qcluster_core::{QclusterConfig, QclusterEngine};

/// Parameters (same workload shape as Fig. 6).
pub type Fig89Config = Fig6Config;

/// The averaged P–R curve of each iteration (index 0 = initial query).
#[derive(Debug, Clone)]
pub struct Fig89Result {
    /// `curves[i]` is the average P–R curve after `i` feedback rounds.
    pub curves: Vec<PrCurve>,
}

impl Fig89Result {
    /// Area under the (recall, precision) polyline of iteration `i` —
    /// a scalar summary used by the convergence checks.
    pub fn aupr(&self, iteration: usize) -> f64 {
        let c = &self.curves[iteration];
        // Trapezoid over recall; curves are monotone in recall.
        let mut area = 0.0;
        for w in c.windows(2) {
            let dr = w[1].recall - w[0].recall;
            area += dr * 0.5 * (w[0].precision + w[1].precision);
        }
        area
    }
}

/// Runs the per-iteration P–R measurement for Qcluster on `dataset`.
pub fn run(dataset: &Dataset, config: &Fig89Config) -> Fig89Result {
    let session = FeedbackSession::new(dataset, config.k.min(dataset.len()));
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let queries = query_ids(dataset, config);
    let mut per_iteration: Vec<Vec<PrCurve>> = vec![Vec::new(); config.iterations + 1];
    for &q in &queries {
        let out = session
            .run(&mut engine, q, config.iterations)
            .expect("session runs");
        let cat = dataset.category(q);
        for (i, rec) in out.iterations.iter().enumerate() {
            per_iteration[i].push(pr_curve(dataset, cat, &rec.retrieved));
        }
    }
    Fig89Result {
        curves: per_iteration
            .into_iter()
            .map(|cs| average_pr_curve(&cs))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_imaging::FeatureKind;

    #[test]
    fn quality_improves_with_feedback() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 21).unwrap();
        let cfg = Fig89Config {
            num_queries: 8,
            iterations: 3,
            k: 24,
            seed: 5,
        };
        let res = run(&ds, &cfg);
        assert_eq!(res.curves.len(), 4);
        let first = res.aupr(0);
        let last = res.aupr(cfg.iterations);
        assert!(
            last >= first * 0.95,
            "final AUPR {last} should not fall below initial {first}"
        );
    }

    #[test]
    fn curves_have_full_depth() {
        let ds = Dataset::small_default(FeatureKind::CooccurrenceTexture, 21).unwrap();
        let cfg = Fig89Config {
            num_queries: 3,
            iterations: 1,
            k: 10,
            seed: 5,
        };
        let res = run(&ds, &cfg);
        assert!(res.curves.iter().all(|c| c.len() == 10));
        for c in &res.curves {
            for w in c.windows(2) {
                assert!(w[1].recall >= w[0].recall, "recall must be monotone");
            }
        }
    }
}
