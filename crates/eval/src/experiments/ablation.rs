//! Quality ablations of the design choices DESIGN.md §7 calls out.
//!
//! Three sweeps, all on the semantic-gap workload (the dataset where the
//! disjunctive structure matters):
//!
//! 1. **Aggregate rule** — the paper fixes the fuzzy-OR harmonic form
//!    (Eq. 5, α = −2 over distances); we swap the combination rule over
//!    the *same* engine clusters: convex (α = 1), multi-focal, fuzzy OR
//!    with α ∈ {−1, −2, −5}. Expectation: the ORs win, the convex cover
//!    loses, steeper α ≈ nearest-cluster behavior.
//! 2. **Covariance scheme** — diagonal vs full inverse retrieval quality
//!    (the quality half of Fig. 6's claim "its performance is similar").
//! 3. **Merge forcing** — `max_relaxations` 0 vs forced merging to the
//!    target count (the cost/quality trade of Algorithm 3's step 8).

use crate::dataset::Dataset;
use crate::experiments::fig6::{query_ids, Fig6Config};
use crate::pr::pr_at;
use crate::session::FeedbackSession;
use crate::user::SimulatedUser;
use qcluster_baselines::{AggregateKind, MultiPointQuery, RetrievalMethod};
use qcluster_core::{CovarianceScheme, QclusterConfig, QclusterEngine};
use qcluster_index::EuclideanQuery;

/// Workload parameters (shared shape with Fig. 6).
pub type AblationConfig = Fig6Config;

/// One ablation row: a variant label and its final-iteration mean recall.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Mean recall per iteration (index 0 = initial).
    pub recall: Vec<f64>,
}

impl AblationRow {
    /// Final-iteration recall.
    pub fn final_recall(&self) -> f64 {
        *self.recall.last().expect("non-empty")
    }
}

/// Sweep 1: the aggregate combination rule over identical engine clusters.
///
/// The engine's feedback loop runs normally (classification + merging with
/// Eq. 5), but each iteration's *retrieval* query is re-compiled under the
/// ablated aggregate, so the sweep isolates the combination rule.
pub fn aggregate_rule_sweep(dataset: &Dataset, config: &AblationConfig) -> Vec<AblationRow> {
    let kinds: Vec<(String, AggregateKind)> = vec![
        ("convex (α=+1)".into(), AggregateKind::Convex),
        ("multi-focal".into(), AggregateKind::MultiFocal),
        (
            "fuzzy OR α=-1".into(),
            AggregateKind::FuzzyOr { alpha: -1.0 },
        ),
        (
            "fuzzy OR α=-2".into(),
            AggregateKind::FuzzyOr { alpha: -2.0 },
        ),
        (
            "fuzzy OR α=-5".into(),
            AggregateKind::FuzzyOr { alpha: -5.0 },
        ),
    ];
    let k = config.k.min(dataset.len());
    let queries = query_ids(dataset, config);
    kinds
        .into_iter()
        .map(|(label, kind)| {
            let mut recall = vec![0.0; config.iterations + 1];
            for &q in &queries {
                run_with_aggregate(dataset, q, config.iterations, k, kind, &mut recall);
            }
            AblationRow {
                variant: label,
                recall: recall
                    .into_iter()
                    .map(|r| r / queries.len() as f64)
                    .collect(),
            }
        })
        .collect()
}

/// One session where retrieval uses the ablated aggregate compiled from
/// the engine's current clusters (diagonal per-cluster weights + masses —
/// the same ingredients Eq. 5 consumes).
fn run_with_aggregate(
    dataset: &Dataset,
    query_image: usize,
    iterations: usize,
    k: usize,
    kind: AggregateKind,
    recall_acc: &mut [f64],
) {
    let cat = dataset.category(query_image);
    let user = SimulatedUser::new(dataset, cat);
    let mut engine = QclusterEngine::new(QclusterConfig::default());

    let initial = EuclideanQuery::new(dataset.vector(query_image).to_vec());
    let (nn, _) = dataset.tree().knn(&initial, k, None);
    let mut retrieved: Vec<usize> = nn.iter().map(|n| n.id).collect();
    recall_acc[0] += pr_at(dataset, cat, &retrieved, retrieved.len()).recall;

    for it in 1..=iterations {
        let mut marked = user.mark(&retrieved);
        if marked.is_empty() {
            marked.push(qcluster_core::FeedbackPoint::new(
                query_image,
                dataset.vector(query_image).to_vec(),
                crate::oracle::SCORE_SAME_CATEGORY,
            ));
        }
        engine.feed(&marked).expect("engine feeds");
        // Ablated query: same clusters, different combination rule.
        let lambda = engine.config().scheme.lambda();
        let points = engine
            .clusters()
            .iter()
            .map(|c| {
                let weights = c
                    .covariance()
                    .diagonal()
                    .iter()
                    .map(|&v| 1.0 / (v.max(0.0) + lambda))
                    .collect();
                (c.mean().to_vec(), weights, c.mass())
            })
            .collect();
        let query = MultiPointQuery::new(points, kind);
        let (nn, _) = dataset.tree().knn(&query, k, None);
        retrieved = nn.iter().map(|n| n.id).collect();
        recall_acc[it] += pr_at(dataset, cat, &retrieved, retrieved.len()).recall;
    }
}

/// Sweep 2: retrieval quality of the diagonal vs full-inverse scheme.
pub fn scheme_quality_sweep(dataset: &Dataset, config: &AblationConfig) -> Vec<AblationRow> {
    [
        ("diagonal", CovarianceScheme::default_diagonal()),
        ("full inverse", CovarianceScheme::default_full()),
    ]
    .into_iter()
    .map(|(label, scheme)| {
        let mut engine = QclusterEngine::new(QclusterConfig {
            scheme,
            ..QclusterConfig::default()
        });
        AblationRow {
            variant: label.into(),
            recall: method_recall(dataset, config, &mut engine),
        }
    })
    .collect()
}

/// Sweep 3: merge forcing (Algorithm 3's α-relaxation) on vs off.
pub fn merge_forcing_sweep(dataset: &Dataset, config: &AblationConfig) -> Vec<AblationRow> {
    [
        ("no forcing (relax=0)", 0usize, 5usize),
        ("forced to 3 clusters", 50, 3),
        ("forced to 1 cluster", 200, 1),
    ]
    .into_iter()
    .map(|(label, max_relaxations, target_clusters)| {
        let mut engine = QclusterEngine::new(QclusterConfig {
            max_relaxations,
            target_clusters,
            ..QclusterConfig::default()
        });
        AblationRow {
            variant: label.into(),
            recall: method_recall(dataset, config, &mut engine),
        }
    })
    .collect()
}

/// Sweep 4: QPM's Rocchio negative-feedback weight γ. The simulated user
/// additionally marks every *non-relevant* retrieved image as a negative
/// example (score 1); γ = 0 reduces to the standard positive-only QPM.
pub fn negative_feedback_sweep(dataset: &Dataset, config: &AblationConfig) -> Vec<AblationRow> {
    [0.0, 0.25, 0.5, 1.0]
        .into_iter()
        .map(|gamma| {
            let k = config.k.min(dataset.len());
            let queries = query_ids(dataset, config);
            let mut recall = vec![0.0; config.iterations + 1];
            for &q in &queries {
                run_qpm_with_negatives(dataset, q, config.iterations, k, gamma, &mut recall);
            }
            AblationRow {
                variant: format!("qpm gamma={gamma}"),
                recall: recall
                    .into_iter()
                    .map(|r| r / queries.len() as f64)
                    .collect(),
            }
        })
        .collect()
}

fn run_qpm_with_negatives(
    dataset: &Dataset,
    query_image: usize,
    iterations: usize,
    k: usize,
    gamma: f64,
    recall_acc: &mut [f64],
) {
    use qcluster_baselines::QueryPointMovement;
    let cat = dataset.category(query_image);
    let user = SimulatedUser::new(dataset, cat);
    let oracle = crate::oracle::RelevanceOracle::new(dataset);
    let mut method = QueryPointMovement::new().with_gamma(gamma);

    let initial = EuclideanQuery::new(dataset.vector(query_image).to_vec());
    let (nn, _) = dataset.tree().knn(&initial, k, None);
    let mut retrieved: Vec<usize> = nn.iter().map(|n| n.id).collect();
    recall_acc[0] += pr_at(dataset, cat, &retrieved, retrieved.len()).recall;

    for it in 1..=iterations {
        let mut marked = user.mark(&retrieved);
        if marked.is_empty() {
            marked.push(qcluster_core::FeedbackPoint::new(
                query_image,
                dataset.vector(query_image).to_vec(),
                crate::oracle::SCORE_SAME_CATEGORY,
            ));
        }
        let negatives: Vec<qcluster_core::FeedbackPoint> = retrieved
            .iter()
            .filter(|&&id| oracle.score(cat, id) == 0.0)
            .map(|&id| qcluster_core::FeedbackPoint::new(id, dataset.vector(id).to_vec(), 1.0))
            .collect();
        method.feed(&marked).expect("feeds");
        if !negatives.is_empty() {
            method.feed_negative(&negatives).expect("feeds negatives");
        }
        let query = method.query().expect("compiles");
        let (nn, _) = dataset.tree().knn(&query, k, None);
        retrieved = nn.iter().map(|n| n.id).collect();
        recall_acc[it] += pr_at(dataset, cat, &retrieved, retrieved.len()).recall;
    }
}

/// Sec. 4.5 clustering-quality report: run Qcluster sessions and measure
/// the leave-one-out misclassification rate of each final clustering.
pub fn clustering_quality(dataset: &Dataset, config: &AblationConfig) -> (f64, f64) {
    let k = config.k.min(dataset.len());
    let session = FeedbackSession::new(dataset, k);
    let queries = query_ids(dataset, config);
    let mut total_error = 0.0;
    let mut total_clusters = 0.0;
    for &q in &queries {
        let mut engine = QclusterEngine::new(QclusterConfig::default());
        session
            .run(&mut engine, q, config.iterations)
            .expect("runs");
        let err = qcluster_core::leave_one_out_error_rate(
            engine.clusters(),
            engine.config().scheme,
            engine.config().alpha,
        )
        .expect("quality computes");
        total_error += err;
        total_clusters += engine.num_clusters() as f64;
    }
    let n = queries.len() as f64;
    (total_error / n, total_clusters / n)
}

fn method_recall(
    dataset: &Dataset,
    config: &AblationConfig,
    method: &mut dyn RetrievalMethod,
) -> Vec<f64> {
    let k = config.k.min(dataset.len());
    let session = FeedbackSession::new(dataset, k);
    let queries = query_ids(dataset, config);
    let mut recall = vec![0.0; config.iterations + 1];
    for &q in &queries {
        let outcome = session.run(method, q, config.iterations).expect("runs");
        let cat = dataset.category(q);
        for (i, rec) in outcome.iterations.iter().enumerate() {
            recall[i] += pr_at(dataset, cat, &rec.retrieved, rec.retrieved.len()).recall;
        }
    }
    recall
        .into_iter()
        .map(|r| r / queries.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SemanticGapConfig;

    fn dataset() -> Dataset {
        Dataset::semantic_gap(&SemanticGapConfig {
            categories: 60,
            per_mode: 12,
            ..SemanticGapConfig::default()
        })
    }

    fn cfg() -> AblationConfig {
        AblationConfig {
            num_queries: 10,
            iterations: 3,
            k: 24,
            seed: 5,
        }
    }

    #[test]
    fn fuzzy_or_beats_convex_on_disjunctive_data() {
        let ds = dataset();
        let rows = aggregate_rule_sweep(&ds, &cfg());
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.variant.starts_with(label))
                .map(AblationRow::final_recall)
                .unwrap()
        };
        assert!(
            get("fuzzy OR α=-2") > get("convex"),
            "OR {:.3} must beat convex {:.3}",
            get("fuzzy OR α=-2"),
            get("convex")
        );
    }

    #[test]
    fn diagonal_quality_close_to_full_inverse() {
        // The quality half of the paper's diagonal-scheme justification.
        let ds = dataset();
        let rows = scheme_quality_sweep(&ds, &cfg());
        let diag = rows[0].final_recall();
        let full = rows[1].final_recall();
        assert!(
            (diag - full).abs() < 0.1,
            "schemes should perform similarly: {diag} vs {full}"
        );
    }

    #[test]
    fn negative_feedback_does_not_collapse() {
        let ds = dataset();
        let rows = negative_feedback_sweep(&ds, &cfg());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.final_recall() > 0.1,
                "{}: {}",
                r.variant,
                r.final_recall()
            );
        }
    }

    #[test]
    fn clustering_quality_is_bounded() {
        let ds = dataset();
        let (err, clusters) = clustering_quality(&ds, &cfg());
        assert!((0.0..=1.0).contains(&err), "error {err}");
        assert!(clusters >= 1.0);
    }

    #[test]
    fn forcing_to_one_cluster_hurts() {
        let ds = dataset();
        let rows = merge_forcing_sweep(&ds, &cfg());
        let free = rows[0].final_recall();
        let one = rows[2].final_recall();
        assert!(
            free >= one,
            "free clustering {free} must not lose to single-cluster forcing {one}"
        );
    }
}
