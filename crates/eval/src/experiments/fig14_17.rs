//! Figs. 14–17 — classification error rate of Algorithm 2 on synthetic
//! Gaussian clusters.
//!
//! "The synthetic data in ℝ¹⁶ are generated. The data consist of 3
//! clusters and their inter-cluster distance values vary from 0.5 to 2.5.
//! Then the principal component analysis is used to reduce the dimension
//! … to 12, 9, 6, 3." The grid crosses cluster shape (spherical vs
//! elliptical, Figs. 14/16 vs 15/17) with the covariance scheme (inverse
//! vs diagonal, Figs. 14/15 vs 16/17). Expected shapes:
//!
//! - error falls as inter-cluster distance grows,
//! - error rises as the PCA dimension shrinks (information loss). Note:
//!   for *perfectly spherical* clusters this effect is absent by
//!   symmetry — every dropped principal component is pure isotropic
//!   noise, so the reduction loses nothing. The paper's information-loss
//!   mechanism appears once the data is anisotropic (the elliptical
//!   grids, Figs. 15/17), where PCA can rank the between-cluster signal
//!   below high-variance nuisance directions and dropping components
//!   drops signal,
//! - error is (nearly) shape-independent — Theorem 1's invariance.
//!
//! Protocol: fit clusters on a labelled training split, classify a
//! held-out split with the pure Bayesian assignment (no outlier cut),
//! count wrong assignments.

use crate::synthetic::{ClusterShape, GaussianClusters};
use qcluster_core::{BayesianClassifier, Cluster, CovarianceScheme, FeedbackPoint};

/// Parameters of the classification-error grid.
#[derive(Debug, Clone)]
pub struct Fig1417Config {
    /// Points per cluster (train + test).
    pub points_per_cluster: usize,
    /// PCA target dimensions (paper: 12, 9, 6, 3 from ℝ¹⁶).
    pub dims: Vec<usize>,
    /// Inter-cluster distances (paper: 0.5 … 2.5).
    pub distances: Vec<f64>,
    /// Repetitions averaged per grid cell.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Fig1417Config {
    fn default() -> Self {
        Fig1417Config {
            points_per_cluster: 40,
            dims: vec![12, 9, 6, 3],
            distances: vec![0.5, 1.0, 1.5, 2.0, 2.5],
            trials: 3,
            seed: 1234,
        }
    }
}

impl Fig1417Config {
    /// Heavier averaging for the repro binary.
    pub fn paper_scale() -> Self {
        Fig1417Config {
            points_per_cluster: 60,
            trials: 10,
            ..Self::default()
        }
    }
}

/// One grid cell: error rate at (dim, inter-cluster distance).
#[derive(Debug, Clone, Copy)]
pub struct ErrorCell {
    /// PCA dimension.
    pub dim: usize,
    /// Inter-cluster distance.
    pub distance: f64,
    /// Mean held-out misclassification rate.
    pub error_rate: f64,
    /// Mean retained-variance ratio of the PCA reduction.
    pub variance_ratio: f64,
}

/// Classification error of one train/test trial.
fn one_trial(data: &GaussianClusters, scheme: CovarianceScheme) -> f64 {
    // Split: even indices train, odd test (labels are interleaved only
    // within clusters, so both splits cover all clusters).
    let mut train: Vec<Vec<FeedbackPoint>> = vec![Vec::new(); data.means.len()];
    let mut test: Vec<(Vec<f64>, usize)> = Vec::new();
    for (i, (p, &l)) in data.points.iter().zip(&data.labels).enumerate() {
        if i % 2 == 0 {
            train[l].push(FeedbackPoint::new(i, p.clone(), 1.0));
        } else {
            test.push((p.clone(), l));
        }
    }
    let clusters: Vec<Cluster> = train
        .into_iter()
        .map(|pts| Cluster::from_points(pts).expect("non-empty training split"))
        .collect();
    // Pure assignment error (Sec. 4.5 / Figs. 14–17): a point is wrong
    // when the classification function puts it in the wrong cluster; the
    // effective-radius outlier cut is not part of this measurement.
    let classifier = BayesianClassifier::fit(&clusters, scheme, 0.05).expect("classifier fits");
    let mut wrong = 0usize;
    for (x, label) in &test {
        if classifier.nearest(&clusters, x) != *label {
            wrong += 1;
        }
    }
    wrong as f64 / test.len() as f64
}

/// Runs the grid for one (shape, scheme) combination — i.e. one of the
/// four figures.
pub fn run(
    config: &Fig1417Config,
    shape: ClusterShape,
    scheme: CovarianceScheme,
) -> Vec<ErrorCell> {
    let mut cells = Vec::new();
    for &dim in &config.dims {
        for &distance in &config.distances {
            let mut err = 0.0;
            let mut var = 0.0;
            for t in 0..config.trials {
                let seed = config
                    .seed
                    .wrapping_add(t as u64)
                    .wrapping_mul(dim as u64 + 1)
                    .wrapping_add((distance * 100.0) as u64);
                let full = GaussianClusters::generate(
                    3,
                    config.points_per_cluster,
                    16,
                    distance,
                    shape,
                    seed,
                );
                let (reduced, ratio) = full.reduce(dim).expect("PCA reduces");
                err += one_trial(&reduced, scheme);
                var += ratio;
            }
            cells.push(ErrorCell {
                dim,
                distance,
                error_rate: err / config.trials as f64,
                variance_ratio: var / config.trials as f64,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Fig1417Config {
        Fig1417Config {
            points_per_cluster: 30,
            dims: vec![12, 3],
            distances: vec![0.5, 2.5],
            trials: 3,
            seed: 77,
        }
    }

    #[test]
    fn error_falls_with_separation() {
        let cells = run(
            &cfg(),
            ClusterShape::Spherical,
            CovarianceScheme::default_full(),
        );
        let at = |dim: usize, dist: f64| {
            cells
                .iter()
                .find(|c| c.dim == dim && (c.distance - dist).abs() < 1e-9)
                .unwrap()
                .error_rate
        };
        assert!(
            at(12, 2.5) <= at(12, 0.5),
            "error must fall with distance: {} vs {}",
            at(12, 2.5),
            at(12, 0.5)
        );
    }

    #[test]
    fn shape_invariance_under_full_inverse() {
        // Theorem 1: with the full-inverse scheme the error rate should be
        // nearly identical for spherical and elliptical data.
        let cfg = cfg();
        let s = run(
            &cfg,
            ClusterShape::Spherical,
            CovarianceScheme::default_full(),
        );
        let e = run(
            &cfg,
            ClusterShape::Elliptical,
            CovarianceScheme::default_full(),
        );
        for (a, b) in s.iter().zip(e.iter()) {
            assert!(
                (a.error_rate - b.error_rate).abs() < 0.25,
                "shape changed error too much at dim {} dist {}: {} vs {}",
                a.dim,
                a.distance,
                a.error_rate,
                b.error_rate
            );
        }
    }

    #[test]
    fn variance_ratio_tracks_dimension() {
        let cells = run(
            &cfg(),
            ClusterShape::Spherical,
            CovarianceScheme::default_diagonal(),
        );
        let v12: f64 = cells
            .iter()
            .filter(|c| c.dim == 12)
            .map(|c| c.variance_ratio)
            .sum();
        let v3: f64 = cells
            .iter()
            .filter(|c| c.dim == 3)
            .map(|c| c.variance_ratio)
            .sum();
        assert!(v12 > v3, "more dims must retain more variance");
    }
}
