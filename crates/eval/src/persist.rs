//! Dataset persistence.
//!
//! Building a dataset is the expensive step of every experiment: rendering
//! tens of thousands of images and extracting color-moment/GLCM features
//! takes orders of magnitude longer than the retrieval runs themselves.
//! This module serializes a prepared [`Dataset`] (vectors + ground truth;
//! the index is rebuilt on load, which is fast) to JSON, so a corpus can
//! be prepared once and reused across experiment invocations and by
//! external tooling.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// The serialized form of a dataset (index excluded — rebuilt on load).
#[derive(Debug, Serialize, Deserialize)]
struct DatasetFile {
    /// Format version for forward compatibility.
    version: u32,
    vectors: Vec<Vec<f64>>,
    categories: Vec<usize>,
    super_categories: Vec<usize>,
    images_per_category: usize,
}

const FORMAT_VERSION: u32 = 1;

/// Errors from dataset persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed or incompatible file contents.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O failure: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serializes a dataset to a JSON writer.
///
/// # Errors
///
/// I/O failures; serialization itself cannot fail for this data model.
pub fn write_dataset<W: Write>(dataset: &Dataset, mut writer: W) -> Result<(), PersistError> {
    let file = DatasetFile {
        version: FORMAT_VERSION,
        vectors: dataset.vectors().to_vec(),
        categories: (0..dataset.len()).map(|i| dataset.category(i)).collect(),
        super_categories: (0..dataset.len())
            .map(|i| dataset.super_category(i))
            .collect(),
        images_per_category: dataset.images_per_category(),
    };
    let json = serde_json::to_string(&file).map_err(|e| PersistError::Format(e.to_string()))?;
    writer.write_all(json.as_bytes())?;
    Ok(())
}

/// Deserializes a dataset from a JSON reader, rebuilding the index.
///
/// # Errors
///
/// I/O failures, malformed JSON, wrong format version, or inconsistent
/// label lengths.
pub fn read_dataset<R: Read>(mut reader: R) -> Result<Dataset, PersistError> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    let file: DatasetFile =
        serde_json::from_str(&buf).map_err(|e| PersistError::Format(e.to_string()))?;
    if file.version != FORMAT_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported format version {} (expected {FORMAT_VERSION})",
            file.version
        )));
    }
    if file.vectors.is_empty() {
        return Err(PersistError::Format("empty dataset".into()));
    }
    if file.vectors.len() != file.categories.len()
        || file.vectors.len() != file.super_categories.len()
    {
        return Err(PersistError::Format("label length mismatch".into()));
    }
    Ok(Dataset::from_parts(
        file.vectors,
        file.categories,
        file.super_categories,
        file.images_per_category,
    ))
}

/// Saves a dataset to a file.
///
/// # Errors
///
/// See [`write_dataset`].
pub fn save_dataset(dataset: &Dataset, path: &Path) -> Result<(), PersistError> {
    let file = std::fs::File::create(path)?;
    write_dataset(dataset, std::io::BufWriter::new(file))
}

/// Loads a dataset from a file.
///
/// # Errors
///
/// See [`read_dataset`].
pub fn load_dataset(path: &Path) -> Result<Dataset, PersistError> {
    let file = std::fs::File::open(path)?;
    read_dataset(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_imaging::FeatureKind;

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 3).unwrap();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let loaded = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), ds.len());
        assert_eq!(loaded.dim(), ds.dim());
        assert_eq!(loaded.images_per_category(), ds.images_per_category());
        for i in 0..ds.len() {
            assert_eq!(loaded.vector(i), ds.vector(i));
            assert_eq!(loaded.category(i), ds.category(i));
            assert_eq!(loaded.super_category(i), ds.super_category(i));
        }
        // Rebuilt index answers identically.
        let q = qcluster_index::EuclideanQuery::new(ds.vector(0).to_vec());
        let (a, _) = ds.tree().knn(&q, 10, None);
        let (b, _) = loaded.tree().knn(&q, 10, None);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(
            read_dataset("not json".as_bytes()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let json = r#"{"version":99,"vectors":[[0.0]],"categories":[0],"super_categories":[0],"images_per_category":1}"#;
        assert!(matches!(
            read_dataset(json.as_bytes()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn rejects_inconsistent_labels() {
        let json = r#"{"version":1,"vectors":[[0.0],[1.0]],"categories":[0],"super_categories":[0,0],"images_per_category":1}"#;
        assert!(matches!(
            read_dataset(json.as_bytes()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 4).unwrap();
        let dir = std::env::temp_dir().join("qcluster_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(loaded.len(), ds.len());
        std::fs::remove_file(&path).ok();
    }
}
