//! Dataset persistence.
//!
//! Building a dataset is the expensive step of every experiment: rendering
//! tens of thousands of images and extracting color-moment/GLCM features
//! takes orders of magnitude longer than the retrieval runs themselves.
//! This module serializes a prepared [`Dataset`] (vectors + ground truth;
//! the index is rebuilt on load, which is fast) so a corpus can be
//! prepared once and reused across experiment invocations and by external
//! tooling. Two formats are supported:
//!
//! - **JSON** ([`save_dataset`]/[`load_dataset`]) — human-readable and
//!   diff-able, streamed through buffered readers/writers.
//! - **Binary** ([`save_dataset_binary`]/[`load_dataset_binary`]) — a
//!   CRC-checked fixed-width format reusing the `qcluster-store` codec;
//!   bit-exact `f64` round-trips and much faster loads (see
//!   `benches/store.rs` in `qcluster-bench`).
//!
//! [`load_dataset_auto`] sniffs the leading magic and accepts either.

use crate::dataset::Dataset;
use qcluster_store::codec::{put_f64, put_u32, put_u64, ByteReader, Crc32};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// The serialized form of a dataset (index excluded — rebuilt on load).
#[derive(Debug, Serialize, Deserialize)]
struct DatasetFile {
    /// Format version for forward compatibility.
    version: u32,
    vectors: Vec<Vec<f64>>,
    categories: Vec<usize>,
    super_categories: Vec<usize>,
    images_per_category: usize,
}

const FORMAT_VERSION: u32 = 1;

/// Leading magic of the binary dataset format.
const BINARY_MAGIC: [u8; 4] = *b"QDSB";
/// Version of the binary dataset format.
const BINARY_VERSION: u32 = 1;

/// Errors from dataset persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed or incompatible file contents.
    Format {
        /// The offending file, when the failure is tied to one (`None`
        /// for the stream-level APIs).
        path: Option<PathBuf>,
        /// What was wrong.
        detail: String,
    },
}

impl PersistError {
    fn format(detail: impl Into<String>) -> Self {
        PersistError::Format {
            path: None,
            detail: detail.into(),
        }
    }

    /// Attaches the offending path to a format error (I/O errors keep
    /// their own context).
    fn with_path(self, path: &Path) -> Self {
        match self {
            PersistError::Format { path: None, detail } => PersistError::Format {
                path: Some(path.to_path_buf()),
                detail,
            },
            other => other,
        }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O failure: {e}"),
            PersistError::Format { path: None, detail } => write!(f, "format error: {detail}"),
            PersistError::Format {
                path: Some(p),
                detail,
            } => write!(f, "format error in {}: {detail}", p.display()),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn to_file(dataset: &Dataset) -> DatasetFile {
    DatasetFile {
        version: FORMAT_VERSION,
        vectors: dataset.vectors().to_vec(),
        categories: (0..dataset.len()).map(|i| dataset.category(i)).collect(),
        super_categories: (0..dataset.len())
            .map(|i| dataset.super_category(i))
            .collect(),
        images_per_category: dataset.images_per_category(),
    }
}

fn from_file(file: DatasetFile) -> Result<Dataset, PersistError> {
    if file.version != FORMAT_VERSION {
        return Err(PersistError::format(format!(
            "unsupported format version {} (expected {FORMAT_VERSION})",
            file.version
        )));
    }
    if file.vectors.is_empty() {
        return Err(PersistError::format("empty dataset"));
    }
    if file.vectors.len() != file.categories.len()
        || file.vectors.len() != file.super_categories.len()
    {
        return Err(PersistError::format("label length mismatch"));
    }
    Ok(Dataset::from_parts(
        file.vectors,
        file.categories,
        file.super_categories,
        file.images_per_category,
    ))
}

/// Serializes a dataset to a JSON writer, streaming (no whole-file
/// string is built).
///
/// # Errors
///
/// I/O failures; serialization itself cannot fail for this data model.
pub fn write_dataset<W: Write>(dataset: &Dataset, writer: W) -> Result<(), PersistError> {
    serde_json::to_writer(writer, &to_file(dataset))
        .map_err(|e| PersistError::format(e.to_string()))
}

/// Deserializes a dataset from a JSON reader, rebuilding the index.
///
/// # Errors
///
/// I/O failures, malformed JSON, wrong format version, or inconsistent
/// label lengths.
pub fn read_dataset<R: Read>(reader: R) -> Result<Dataset, PersistError> {
    let file: DatasetFile =
        serde_json::from_reader(reader).map_err(|e| PersistError::format(e.to_string()))?;
    from_file(file)
}

/// Saves a dataset to a JSON file through a buffered writer.
///
/// # Errors
///
/// See [`write_dataset`]; format errors carry `path`.
pub fn save_dataset(dataset: &Dataset, path: &Path) -> Result<(), PersistError> {
    let file = std::fs::File::create(path)?;
    write_dataset(dataset, std::io::BufWriter::new(file)).map_err(|e| e.with_path(path))
}

/// Loads a dataset from a JSON file through a buffered reader.
///
/// # Errors
///
/// See [`read_dataset`]; format errors carry `path`.
pub fn load_dataset(path: &Path) -> Result<Dataset, PersistError> {
    let file = std::fs::File::open(path)?;
    read_dataset(std::io::BufReader::new(file)).map_err(|e| e.with_path(path))
}

/// Saves a dataset in the binary fast-path format: a `QDSB` header,
/// fixed-width `f64` vectors and `u64` labels, and a trailing CRC-32
/// over the body. Round-trips are bit-exact (unlike JSON's decimal
/// detour) and loads are a large multiple faster.
///
/// # Errors
///
/// I/O failures.
pub fn save_dataset_binary(dataset: &Dataset, path: &Path) -> Result<(), PersistError> {
    let mut body = Vec::with_capacity(16 + dataset.len() * (dataset.dim() * 8 + 16));
    put_u32(&mut body, BINARY_VERSION);
    put_u32(
        &mut body,
        u32::try_from(dataset.dim()).expect("dimensionality fits in u32"),
    );
    put_u64(&mut body, dataset.len() as u64);
    put_u64(&mut body, dataset.images_per_category() as u64);
    for v in dataset.vectors() {
        for &x in v {
            put_f64(&mut body, x);
        }
    }
    for i in 0..dataset.len() {
        put_u64(&mut body, dataset.category(i) as u64);
    }
    for i in 0..dataset.len() {
        put_u64(&mut body, dataset.super_category(i) as u64);
    }
    let crc = Crc32::checksum(&body);
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    writer.write_all(&BINARY_MAGIC)?;
    writer.write_all(&body)?;
    let mut tail = Vec::with_capacity(4);
    put_u32(&mut tail, crc);
    writer.write_all(&tail)?;
    writer.flush()?;
    Ok(())
}

/// Loads a dataset from the binary fast-path format, validating the
/// magic, version, CRC, and length arithmetic before rebuilding the
/// index.
///
/// # Errors
///
/// I/O failures, or `Format` (carrying `path`) for any corruption.
pub fn load_dataset_binary(path: &Path) -> Result<Dataset, PersistError> {
    let bytes = std::fs::read(path)?;
    parse_binary(&bytes).map_err(|e| e.with_path(path))
}

fn parse_binary(bytes: &[u8]) -> Result<Dataset, PersistError> {
    if bytes.len() < BINARY_MAGIC.len() + 4 || bytes[..4] != BINARY_MAGIC {
        return Err(PersistError::format("missing QDSB magic"));
    }
    let body = &bytes[4..bytes.len() - 4];
    let mut crc_reader = ByteReader::new(&bytes[bytes.len() - 4..]);
    let stored_crc = crc_reader.u32().expect("4 bytes sliced");
    let actual = Crc32::checksum(body);
    if stored_crc != actual {
        return Err(PersistError::format(format!(
            "checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
        )));
    }
    let mut r = ByteReader::new(body);
    let truncated = || PersistError::format("truncated body");
    let version = r.u32().ok_or_else(truncated)?;
    if version != BINARY_VERSION {
        return Err(PersistError::format(format!(
            "unsupported binary version {version} (expected {BINARY_VERSION})"
        )));
    }
    let dim = r.u32().ok_or_else(truncated)? as usize;
    let count = usize::try_from(r.u64().ok_or_else(truncated)?)
        .map_err(|_| PersistError::format("count overflows usize"))?;
    let images_per_category = usize::try_from(r.u64().ok_or_else(truncated)?)
        .map_err(|_| PersistError::format("images_per_category overflows usize"))?;
    if count == 0 || dim == 0 {
        return Err(PersistError::format("empty dataset"));
    }
    let expected = count
        .checked_mul(dim)
        .and_then(|n| n.checked_mul(8))
        .and_then(|n| n.checked_add(count * 16))
        .ok_or_else(|| PersistError::format("size arithmetic overflow"))?;
    if r.remaining() != expected {
        return Err(PersistError::format(format!(
            "body holds {} bytes of records, expected {expected}",
            r.remaining()
        )));
    }
    let mut vectors = Vec::with_capacity(count);
    for _ in 0..count {
        let mut v = Vec::with_capacity(dim);
        for _ in 0..dim {
            v.push(r.f64().ok_or_else(truncated)?);
        }
        vectors.push(v);
    }
    let read_labels = |r: &mut ByteReader<'_>| -> Result<Vec<usize>, PersistError> {
        (0..count)
            .map(|_| {
                usize::try_from(r.u64().ok_or_else(truncated)?)
                    .map_err(|_| PersistError::format("label overflows usize"))
            })
            .collect()
    };
    let categories = read_labels(&mut r)?;
    let super_categories = read_labels(&mut r)?;
    Ok(Dataset::from_parts(
        vectors,
        categories,
        super_categories,
        images_per_category,
    ))
}

/// Loads a dataset from either format, sniffing the leading magic:
/// `QDSB` selects the binary parser, anything else falls through to
/// JSON.
///
/// # Errors
///
/// Whatever the selected parser returns.
pub fn load_dataset_auto(path: &Path) -> Result<Dataset, PersistError> {
    let file = std::fs::File::open(path)?;
    let mut magic = [0u8; 4];
    let n = {
        let mut file = &file;
        let mut read = 0;
        while read < 4 {
            match file.read(&mut magic[read..])? {
                0 => break,
                k => read += k,
            }
        }
        read
    };
    drop(file);
    if n == 4 && magic == BINARY_MAGIC {
        load_dataset_binary(path)
    } else {
        load_dataset(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcluster_imaging::FeatureKind;

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 3).unwrap();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let loaded = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), ds.len());
        assert_eq!(loaded.dim(), ds.dim());
        assert_eq!(loaded.images_per_category(), ds.images_per_category());
        for i in 0..ds.len() {
            assert_eq!(loaded.vector(i), ds.vector(i));
            assert_eq!(loaded.category(i), ds.category(i));
            assert_eq!(loaded.super_category(i), ds.super_category(i));
        }
        // Rebuilt index answers identically.
        let q = qcluster_index::EuclideanQuery::new(ds.vector(0).to_vec());
        let (a, _) = ds.tree().knn(&q, 10, None);
        let (b, _) = loaded.tree().knn(&q, 10, None);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(
            read_dataset("not json".as_bytes()),
            Err(PersistError::Format { .. })
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let json = r#"{"version":99,"vectors":[[0.0]],"categories":[0],"super_categories":[0],"images_per_category":1}"#;
        assert!(matches!(
            read_dataset(json.as_bytes()),
            Err(PersistError::Format { .. })
        ));
    }

    #[test]
    fn rejects_inconsistent_labels() {
        let json = r#"{"version":1,"vectors":[[0.0],[1.0]],"categories":[0],"super_categories":[0,0],"images_per_category":1}"#;
        assert!(matches!(
            read_dataset(json.as_bytes()),
            Err(PersistError::Format { .. })
        ));
    }

    fn tmp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qcluster_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_roundtrip() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 4).unwrap();
        let path = tmp_dir().join("ds.json");
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(loaded.len(), ds.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn format_errors_name_the_file() {
        let path = tmp_dir().join("garbage.json");
        std::fs::write(&path, "definitely not json").unwrap();
        let err = load_dataset(&path).unwrap_err();
        assert!(
            err.to_string().contains("garbage.json"),
            "error should name the file: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_roundtrip_is_bitwise_exact() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 5).unwrap();
        let path = tmp_dir().join("ds.qdsb");
        save_dataset_binary(&ds, &path).unwrap();
        let loaded = load_dataset_binary(&path).unwrap();
        assert_eq!(loaded.len(), ds.len());
        assert_eq!(loaded.images_per_category(), ds.images_per_category());
        for i in 0..ds.len() {
            let (a, b) = (ds.vector(i), loaded.vector(i));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "vector {i} must be bit-exact");
            }
            assert_eq!(loaded.category(i), ds.category(i));
            assert_eq!(loaded.super_category(i), ds.super_category(i));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_detects_corruption() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 3).unwrap();
        let path = tmp_dir().join("ds_corrupt.qdsb");
        save_dataset_binary(&ds, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_dataset_binary(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format { path: Some(_), .. }));
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_load_sniffs_both_formats() {
        let ds = Dataset::small_default(FeatureKind::ColorMoments, 3).unwrap();
        let dir = tmp_dir();
        let json = dir.join("auto.json");
        let bin = dir.join("auto.qdsb");
        save_dataset(&ds, &json).unwrap();
        save_dataset_binary(&ds, &bin).unwrap();
        assert_eq!(load_dataset_auto(&json).unwrap().len(), ds.len());
        assert_eq!(load_dataset_auto(&bin).unwrap().len(), ds.len());
        std::fs::remove_file(&json).ok();
        std::fs::remove_file(&bin).ok();
    }
}
