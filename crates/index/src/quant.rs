//! u8 scalar quantization and the two-phase (quantized filter + exact
//! rerank) scan.
//!
//! Phase 1 walks a `u8` code column at ~4× the memory bandwidth of the
//! exact `f64` column and computes a **sound lower bound** on every
//! point's distance, keeping the best `m` candidates in a bounded heap.
//! Phase 2 reranks only those candidates with the exact `f64` kernel.
//! Because the bound is sound (never exceeds the exact computed
//! distance) and the final acceptance check is verified against the
//! phase-1 heap, the returned top-k is **bit-for-bit identical** to the
//! exact scan — the quantized column accelerates the scan, it never
//! changes an answer. When the acceptance check fails (window too small
//! for the corpus/query geometry) the scan runs one *bound-driven*
//! second rerank: the k-th exact distance from the first round
//! upper-bounds the true k-th distance, so reranking every point whose
//! lower bound falls at or under it is provably exhaustive — the
//! candidate set is sized by the quantization error bound itself.
//!
//! # The bound
//!
//! Per dimension `j` the corpus is affinely coded:
//! `x̂_j = min_j + δ_j·q_j` with `q_j = round((x_j − min_j)/δ_j)` clamped
//! to `[0, 255]` and `δ_j = (max_j − min_j)/255`. The *measured*
//! reconstruction error `err_j = max_x |x_j − x̂_j|` is stored next to
//! the codes. For a weighted component `d(x) = Σ_j w_j (x_j − c_j)²`
//! the triangle inequality in the `√w`-scaled metric gives
//!
//! ```text
//! √d(x) ≥ √d(x̂) − √(Σ_j w_j·err_j²)   =  √d̂ − E
//! ```
//!
//! so `LB = max(0, √d̂ − E)² ≤ d(x)`. `d̂` expands over codes as
//! `C0 + Σ_j q_j·(A_j·q_j + B_j)` with `A_j = w_j·δ_j²`,
//! `B_j = 2·w_j·(min_j − c_j)·δ_j`, `C0 = Σ_j w_j·(min_j − c_j)²` —
//! a pure integer-code polynomial the kernel evaluates in `f32` without
//! touching the exact column. Disjunctive (multi-component) queries
//! lower-bound each component and aggregate with the same monotone
//! harmonic formula as the exact kernel.
//!
//! Phase 1 runs in `f32`; soundness against the *f64-computed* exact
//! distance is preserved by plan-time margins (see [`QuantPlan`]): the
//! worst-case `f32` evaluation error `κ·S` (κ ≈ dim·1e-6, `S` an
//! a-priori bound on the summand magnitudes) is subtracted from the
//! polynomial value in *squared* units before the root — folding it
//! into `E` in sqrt units would cost `2·√d̂·√(κS)` of slack — then the
//! quantization error `E` comes off in sqrt units, every bound is
//! deflated by `1 − 1e-4`, and an absolute `zero guard` scaled to the
//! exact kernel's own rounding floor snaps near-zero bounds to exactly
//! `0` so a bound can never exceed an exact distance that cancellation
//! rounds to (or below) zero.

use crate::distance::QueryDistance;
use crate::knn::{Neighbor, TopK};
use qcluster_linalg::vecops::TILE_LANES;

/// Number of quantization steps per dimension (`u8` codes `0..=255`).
pub const QUANT_LEVELS: f64 = 255.0;

/// Tiles per phase-1 kernel call (32 tiles = 256 points, L1-resident
/// codes + outputs).
pub const QUANT_BLOCK_TILES: usize = 32;

/// Multiplicative deflation applied to every phase-1 bound: absorbs the
/// relative rounding of the `f32` subtract/square/aggregate tail.
const LB_DEFLATE: f32 = 1.0 - 1e-4;

/// Per-dimension affine quantization parameters fitted over a corpus,
/// stored alongside the code column (segment format v2 persists them).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantParams {
    min: Vec<f64>,
    delta: Vec<f64>,
    max_err: Vec<f64>,
}

impl QuantParams {
    /// Fits per-dimension `min`/`delta` over row-major `data` and
    /// measures the worst reconstruction error per dimension (inflated
    /// by a few ulps so the stored bound dominates the `f64`-computed
    /// measurement exactly).
    ///
    /// Dimensions containing non-finite values get `max_err = ∞`, which
    /// makes every [`QuantPlan::build`] return `None` — consumers fall
    /// back to the exact scan rather than trusting garbage codes.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn fit(data: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
        let n = data.len() / dim;
        Self::fit_visit(dim, n, |visit| {
            for row in data.chunks_exact(dim) {
                for (j, &v) in row.iter().enumerate() {
                    visit(j, v);
                }
            }
        })
    }

    /// [`QuantParams::fit`] over a tile-major column (see
    /// [`TileCorpus`]) holding `len` real points — padding lanes of the
    /// final tile are skipped, never polluting the fitted range. The
    /// min/max/error reductions are order-independent, so this is
    /// bit-identical to fitting the same points row-major.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0` or `tiles.len()` disagrees with
    /// `ceil(len/8) * dim * 8`.
    pub fn fit_tiles(tiles: &[f64], dim: usize, len: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        let tile = dim * TILE_LANES;
        assert_eq!(
            tiles.len(),
            len.div_ceil(TILE_LANES) * tile,
            "tiles length mismatch"
        );
        Self::fit_visit(dim, len, |visit| {
            for (t, tf) in tiles.chunks_exact(tile).enumerate() {
                let valid = TILE_LANES.min(len - t * TILE_LANES);
                for j in 0..dim {
                    for &v in &tf[j * TILE_LANES..j * TILE_LANES + valid] {
                        visit(j, v);
                    }
                }
            }
        })
    }

    /// Shared fit core: `each` must invoke its callback once per
    /// `(dimension, value)` pair of the corpus, in any order, and is
    /// driven twice (range pass, then error-measurement pass).
    fn fit_visit(dim: usize, n: usize, each: impl Fn(&mut dyn FnMut(usize, f64))) -> Self {
        let mut min = vec![f64::INFINITY; dim];
        let mut max = vec![f64::NEG_INFINITY; dim];
        let mut finite = vec![true; dim];
        each(&mut |j, v| {
            if !v.is_finite() {
                finite[j] = false;
            } else {
                if v < min[j] {
                    min[j] = v;
                }
                if v > max[j] {
                    max[j] = v;
                }
            }
        });
        for j in 0..dim {
            if n == 0 || min[j] > max[j] {
                min[j] = 0.0;
                max[j] = 0.0;
            }
        }
        let delta: Vec<f64> = (0..dim).map(|j| (max[j] - min[j]) / QUANT_LEVELS).collect();
        let mut params = QuantParams {
            min,
            delta,
            max_err: vec![0.0; dim],
        };
        let mut measured = vec![0.0f64; dim];
        each(&mut |j, v| {
            let e = (v - params.decode(j, params.encode_value(j, v))).abs();
            if e > measured[j] {
                measured[j] = e;
            }
        });
        for j in 0..dim {
            params.max_err[j] = if finite[j] {
                // Dominate the f64-computed measurement: relative slop for
                // the |x − decode| evaluation plus an absolute floor at the
                // decode magnitude scale.
                measured[j] * (1.0 + 1e-9)
                    + (params.min[j].abs() + params.delta[j] * QUANT_LEVELS) * 1e-12
            } else {
                f64::INFINITY
            };
        }
        params
    }

    /// Rebuilds params from persisted columns (segment format v2).
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree or `min.len() == 0`.
    pub fn from_parts(min: Vec<f64>, delta: Vec<f64>, max_err: Vec<f64>) -> Self {
        assert!(!min.is_empty(), "dim must be positive");
        assert_eq!(min.len(), delta.len(), "delta length mismatch");
        assert_eq!(min.len(), max_err.len(), "max_err length mismatch");
        QuantParams {
            min,
            delta,
            max_err,
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Per-dimension range minima.
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Per-dimension code step sizes.
    pub fn delta(&self) -> &[f64] {
        &self.delta
    }

    /// Per-dimension reconstruction error bounds.
    pub fn max_err(&self) -> &[f64] {
        &self.max_err
    }

    /// Codes one value of dimension `j`.
    #[inline]
    pub fn encode_value(&self, j: usize, x: f64) -> u8 {
        if self.delta[j] > 0.0 {
            (((x - self.min[j]) / self.delta[j]).round() as i64).clamp(0, 255) as u8
        } else {
            0
        }
    }

    /// Reconstructs dimension `j` from a code.
    #[inline]
    pub fn decode(&self, j: usize, code: u8) -> f64 {
        self.min[j] + self.delta[j] * f64::from(code)
    }

    /// Codes a tile-major exact column into a same-shape tile-major code
    /// column (see [`TileCorpus`] for the layout).
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree or are not whole tiles.
    pub fn encode_tiles(&self, tiles: &[f64], codes: &mut [u8]) {
        let dim = self.dim();
        let tile = dim * TILE_LANES;
        assert_eq!(tiles.len() % tile, 0, "tiles length not whole tiles");
        assert_eq!(tiles.len(), codes.len(), "codes length mismatch");
        for (tf, tc) in tiles.chunks_exact(tile).zip(codes.chunks_exact_mut(tile)) {
            for j in 0..dim {
                let col = &tf[j * TILE_LANES..(j + 1) * TILE_LANES];
                let out = &mut tc[j * TILE_LANES..(j + 1) * TILE_LANES];
                for l in 0..TILE_LANES {
                    out[l] = self.encode_value(j, col[l]);
                }
            }
        }
    }
}

/// One weighted-Euclidean component of a query, described for plan
/// compilation: `d_r(x) = Σ_j w_j (x_j − c_j)²` with mass `m_r` in the
/// harmonic aggregate. `weights: None` means unit weights.
#[derive(Debug, Clone, Copy)]
pub struct QuantSpec<'a> {
    /// Per-dimension non-negative weights (`None` = all ones).
    pub weights: Option<&'a [f64]>,
    /// Component center.
    pub center: &'a [f64],
    /// Positive mass in the harmonic aggregate (use `1.0` for
    /// single-component queries — the aggregate then reduces to the
    /// component bound).
    pub mass: f64,
}

/// Up to four components evaluated per kernel pass; wider queries are
/// split into chunks whose per-point harmonic terms accumulate.
const CHUNK_COMPONENTS: usize = 4;

#[derive(Debug, Clone)]
struct PlanChunk {
    gc: usize,
    /// `a`/`b` coefficients replicated 8-wide so the AVX2 kernel can use
    /// them as memory operands: lane `l` of coefficient `a` for
    /// dimension `j`, component `r` lives at `(j*gc + r)*16 + l`, the
    /// `b` lane at `(j*gc + r)*16 + 8 + l`.
    coeffs8: Vec<f32>,
    c0: [f32; CHUNK_COMPONENTS],
    err: [f32; CHUNK_COMPONENTS],
    /// Absolute f32-evaluation margin κ·S, subtracted in *squared*
    /// units before the square root. Folding it into `err` instead
    /// (sqrt units) would cost `2·√D·√(κS)` of slack per component —
    /// three orders of magnitude worse at realistic distances.
    abs: [f32; CHUNK_COMPONENTS],
    mass: [f32; CHUNK_COMPONENTS],
    guard: f32,
}

/// A query compiled against one corpus' [`QuantParams`]: the phase-1
/// evaluator. Built per (query, segment) pair by
/// [`QueryDistance::quantized_plan`]; `None` means the query (or the
/// params) cannot be soundly bounded and the scan must stay exact.
#[derive(Debug, Clone)]
pub struct QuantPlan {
    dim: usize,
    chunks: Vec<PlanChunk>,
    total_mass: f32,
}

impl QuantPlan {
    /// Compiles component specs into a phase-1 plan, deriving the
    /// soundness margins. Returns `None` when anything is non-finite,
    /// a weight is negative, a mass is non-positive, or the magnitude
    /// bound exceeds the `f32`-safe range — callers then use the exact
    /// path, which is always correct.
    pub fn build(params: &QuantParams, specs: &[QuantSpec<'_>], total_mass: f64) -> Option<Self> {
        let dim = params.dim();
        if specs.is_empty() || !(total_mass.is_finite() && total_mass > 0.0) {
            return None;
        }
        // κ: a-priori relative bound on f32 evaluation error of the
        // Σ q(Aq+B) polynomial (2 rounded ops per dimension, ~2.4e-7
        // each; ×4 headroom also covers f64→f32 coefficient rounding).
        let kappa = dim as f64 * 1e-6;
        let mut chunks = Vec::with_capacity(specs.len().div_ceil(CHUNK_COMPONENTS));
        for group in specs.chunks(CHUNK_COMPONENTS) {
            let gc = group.len();
            let mut coeffs8 = vec![0.0f32; dim * gc * 2 * TILE_LANES];
            let mut c0a = [0.0f32; CHUNK_COMPONENTS];
            let mut erra = [0.0f32; CHUNK_COMPONENTS];
            let mut absa = [0.0f32; CHUNK_COMPONENTS];
            let mut massa = [0.0f32; CHUNK_COMPONENTS];
            let mut guard = 0.0f64;
            for (r, spec) in group.iter().enumerate() {
                if spec.center.len() != dim {
                    return None;
                }
                if let Some(w) = spec.weights {
                    if w.len() != dim {
                        return None;
                    }
                }
                if !(spec.mass.is_finite() && spec.mass > 0.0) {
                    return None;
                }
                let mut c0 = 0.0f64;
                let mut e2 = 0.0f64;
                // S: bound on the quantized polynomial's summand
                // magnitudes (f32 evaluation scale). S64: bound on the
                // exact f64 kernel's internal magnitudes (its expanded
                // form suffers cancellation, so its absolute rounding
                // floor is what the zero guard must dominate).
                let mut s_quant = 0.0f64;
                let mut s_exact = 0.0f64;
                for j in 0..dim {
                    let w = spec.weights.map_or(1.0, |w| w[j]);
                    if !(w >= 0.0 && w.is_finite()) {
                        return None;
                    }
                    let c = spec.center[j];
                    let (mn, dl, er) = (params.min[j], params.delta[j], params.max_err[j]);
                    if !(c.is_finite() && mn.is_finite() && dl.is_finite() && er.is_finite()) {
                        return None;
                    }
                    let a = w * dl * dl;
                    let b = 2.0 * w * (mn - c) * dl;
                    c0 += w * (mn - c) * (mn - c);
                    e2 += w * er * er;
                    s_quant += a.abs() * QUANT_LEVELS * QUANT_LEVELS + b.abs() * QUANT_LEVELS;
                    let m_j = mn.abs().max((mn + dl * QUANT_LEVELS).abs()) + er;
                    s_exact += w * m_j * m_j + 2.0 * (w * c).abs() * m_j + w * c * c;
                    let base = (j * gc + r) * 2 * TILE_LANES;
                    coeffs8[base..base + TILE_LANES].fill(a as f32);
                    coeffs8[base + TILE_LANES..base + 2 * TILE_LANES].fill(b as f32);
                }
                s_quant += c0.abs();
                // Quantization error stays in sqrt units (Cauchy-
                // Schwarz: D_true ≥ (√D_quant − √e2)²); the f32
                // evaluation margin κ·S is an *absolute* error on the
                // polynomial value and is subtracted in squared units
                // before the root — see `PlanChunk::abs`.
                let e_safe = e2.sqrt() * (1.0 + 1e-4);
                let abs_margin = kappa * s_quant * (1.0 + 1e-3);
                // Absolute floor: where the exact expanded kernel's own
                // rounding could push a tiny (or zero) distance below the
                // bound, snap the bound to 0. 1e5 × the ~dim·ε64·S64
                // rounding floor keeps the deflation margin dominant.
                let g = dim as f64 * f64::EPSILON * s_exact * 1e5;
                if !(c0.is_finite()
                    && e_safe.is_finite()
                    && abs_margin.is_finite()
                    && g.is_finite())
                    || s_quant > 1e30
                    || s_exact > 1e30
                {
                    return None;
                }
                c0a[r] = c0 as f32;
                erra[r] = e_safe as f32;
                absa[r] = abs_margin as f32;
                massa[r] = spec.mass as f32;
                guard = guard.max(g);
            }
            chunks.push(PlanChunk {
                gc,
                coeffs8,
                c0: c0a,
                err: erra,
                abs: absa,
                mass: massa,
                guard: guard as f32,
            });
        }
        Some(QuantPlan {
            dim,
            chunks,
            total_mass: total_mass as f32,
        })
    }

    /// Dimensionality the plan was compiled for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Evaluates phase-1 lower bounds for `ntiles` tiles of codes into
    /// `out` (one `f32` per lane, padding lanes included). `acc` is a
    /// reusable scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics when `codes.len() != ntiles*dim*8` or
    /// `out.len() != ntiles*8`.
    pub fn lower_bounds(&self, codes: &[u8], ntiles: usize, acc: &mut Vec<f32>, out: &mut [f32]) {
        assert_eq!(
            codes.len(),
            ntiles * self.dim * TILE_LANES,
            "codes length mismatch"
        );
        assert_eq!(out.len(), ntiles * TILE_LANES, "out length mismatch");
        acc.clear();
        acc.resize(out.len(), 0.0);
        for chunk in &self.chunks {
            accumulate_chunk(codes, self.dim, ntiles, chunk, acc);
        }
        for (o, &a) in out.iter_mut().zip(acc.iter()) {
            let v = self.total_mass / a;
            *o = if v.is_finite() { v.max(0.0) } else { 0.0 };
        }
    }
}

/// Adds `Σ_r mass_r / LB_r(p)` for one component chunk into `acc`,
/// dispatching to the AVX2+FMA kernel when the CPU has it.
fn accumulate_chunk(codes: &[u8], dim: usize, ntiles: usize, chunk: &PlanChunk, acc: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: feature presence just checked; slice lengths are
            // validated by the caller's asserts.
            unsafe {
                match chunk.gc {
                    1 => avx2::lb_chunk::<1>(codes, dim, ntiles, chunk, acc),
                    2 => avx2::lb_chunk::<2>(codes, dim, ntiles, chunk, acc),
                    3 => avx2::lb_chunk::<3>(codes, dim, ntiles, chunk, acc),
                    _ => avx2::lb_chunk::<4>(codes, dim, ntiles, chunk, acc),
                }
            }
            return;
        }
    }
    lb_chunk_portable(codes, dim, ntiles, chunk, acc);
}

/// Portable phase-1 chunk kernel: same structure as the AVX2 path with
/// eight-lane arrays the autovectorizer can pick up. Rounding may differ
/// from the intrinsics path; both stay below the plan's margins, so
/// either yields a sound bound.
fn lb_chunk_portable(codes: &[u8], dim: usize, ntiles: usize, chunk: &PlanChunk, acc: &mut [f32]) {
    let gc = chunk.gc;
    let tile = dim * TILE_LANES;
    let mut q = vec![0.0f32; tile];
    for t in 0..ntiles {
        let ctile = &codes[t * tile..(t + 1) * tile];
        for i in 0..tile {
            q[i] = f32::from(ctile[i]);
        }
        let mut d = [[0.0f32; TILE_LANES]; CHUNK_COMPONENTS];
        for j in 0..dim {
            let col = &q[j * TILE_LANES..(j + 1) * TILE_LANES];
            for r in 0..gc {
                let base = (j * gc + r) * 2 * TILE_LANES;
                let a = chunk.coeffs8[base];
                let b = chunk.coeffs8[base + TILE_LANES];
                for l in 0..TILE_LANES {
                    d[r][l] += col[l] * (a * col[l] + b);
                }
            }
        }
        let out = &mut acc[t * TILE_LANES..(t + 1) * TILE_LANES];
        for r in 0..gc {
            let (c0, e, ab, m) = (chunk.c0[r], chunk.err[r], chunk.abs[r], chunk.mass[r]);
            for l in 0..TILE_LANES {
                let rt = (d[r][l] + c0 - ab).max(0.0).sqrt();
                let rr = (rt - e).max(0.0);
                let lb = (rr * rr * LB_DEFLATE - chunk.guard).max(0.0);
                out[l] += m / lb;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{PlanChunk, LB_DEFLATE, TILE_LANES};
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// AVX2+FMA phase-1 chunk kernel. One u8→f32 column conversion per
    /// dimension is shared across components; coefficients come 8-wide
    /// from memory (micro-fused FMA operands); each component keeps two
    /// accumulator chains (even/odd dimensions) so the loop is bound by
    /// FMA throughput, not latency.
    ///
    /// # Safety
    ///
    /// Requires `avx2` and `fma`; `codes.len() == ntiles*dim*8` and
    /// `acc.len() == ntiles*8`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn lb_chunk<const GC: usize>(
        codes: &[u8],
        dim: usize,
        ntiles: usize,
        chunk: &PlanChunk,
        acc: &mut [f32],
    ) {
        debug_assert_eq!(chunk.gc, GC);
        let tile = dim * TILE_LANES;
        let cf = chunk.coeffs8.as_ptr();
        let deflate = _mm256_set1_ps(LB_DEFLATE);
        let guard = _mm256_set1_ps(chunk.guard);
        let zero = _mm256_setzero_ps();
        for t in 0..ntiles {
            let ct = codes.as_ptr().add(t * tile);
            let mut da = [_mm256_setzero_ps(); GC];
            let mut db = [_mm256_setzero_ps(); GC];
            let mut j = 0;
            while j + 1 < dim {
                let q0 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_loadl_epi64(
                    ct.add(j * TILE_LANES).cast(),
                )));
                let q1 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_loadl_epi64(
                    ct.add((j + 1) * TILE_LANES).cast(),
                )));
                for r in 0..GC {
                    let b0 = cf.add((j * GC + r) * 2 * TILE_LANES);
                    let t0 = _mm256_fmadd_ps(
                        _mm256_loadu_ps(b0),
                        q0,
                        _mm256_loadu_ps(b0.add(TILE_LANES)),
                    );
                    da[r] = _mm256_fmadd_ps(q0, t0, da[r]);
                    let b1 = cf.add(((j + 1) * GC + r) * 2 * TILE_LANES);
                    let t1 = _mm256_fmadd_ps(
                        _mm256_loadu_ps(b1),
                        q1,
                        _mm256_loadu_ps(b1.add(TILE_LANES)),
                    );
                    db[r] = _mm256_fmadd_ps(q1, t1, db[r]);
                }
                j += 2;
            }
            if j < dim {
                let q0 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_loadl_epi64(
                    ct.add(j * TILE_LANES).cast(),
                )));
                for r in 0..GC {
                    let b0 = cf.add((j * GC + r) * 2 * TILE_LANES);
                    let t0 = _mm256_fmadd_ps(
                        _mm256_loadu_ps(b0),
                        q0,
                        _mm256_loadu_ps(b0.add(TILE_LANES)),
                    );
                    da[r] = _mm256_fmadd_ps(q0, t0, da[r]);
                }
            }
            let ap = acc.as_mut_ptr().add(t * TILE_LANES);
            let mut av = _mm256_loadu_ps(ap);
            for r in 0..GC {
                let dd = _mm256_sub_ps(
                    _mm256_add_ps(_mm256_add_ps(da[r], db[r]), _mm256_set1_ps(chunk.c0[r])),
                    _mm256_set1_ps(chunk.abs[r]),
                );
                let rt = _mm256_sqrt_ps(_mm256_max_ps(dd, zero));
                let rr = _mm256_max_ps(_mm256_sub_ps(rt, _mm256_set1_ps(chunk.err[r])), zero);
                let lb =
                    _mm256_max_ps(_mm256_fmsub_ps(_mm256_mul_ps(rr, rr), deflate, guard), zero);
                av = _mm256_add_ps(av, _mm256_div_ps(_mm256_set1_ps(chunk.mass[r]), lb));
            }
            _mm256_storeu_ps(ap, av);
        }
    }
}

/// Statistics from one [`QuantizedScan::two_phase_knn`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantScanStats {
    /// Points filtered by the quantized phase-1 kernel.
    pub phase1_points: u64,
    /// Candidates exactly reranked in phase 2.
    pub reranked: u64,
    /// Full exact rescans taken because the candidate window could not
    /// be certified (or a bound self-check failed).
    pub fallback_rescans: u64,
    /// Queries that could not compile a quantized plan and ran exact.
    pub plan_misses: u64,
}

impl QuantScanStats {
    /// Accumulates another call's counters.
    pub fn absorb(&mut self, other: &QuantScanStats) {
        self.phase1_points += other.phase1_points;
        self.reranked += other.reranked;
        self.fallback_rescans += other.fallback_rescans;
        self.plan_misses += other.plan_misses;
    }
}

/// A corpus held in the transposed-tile layout the batch kernels (and
/// segment format v2) use natively: `ceil(len/8)` tiles of
/// `dim × 8` column-major `f64`s, zero-padded past `len`.
#[derive(Debug, Clone)]
pub struct TileCorpus {
    tiles: Vec<f64>,
    dim: usize,
    len: usize,
}

impl TileCorpus {
    /// Transposes row-major points into tiles.
    ///
    /// # Panics
    ///
    /// Panics when `points` is empty or dimensionalities disagree.
    pub fn from_rows(points: &[Vec<f64>]) -> Self {
        assert!(!points.is_empty(), "corpus must be non-empty");
        let dim = points[0].len();
        let mut row_buf = vec![0.0f64; TILE_LANES * dim];
        let mut tiles = vec![0.0f64; points.len().div_ceil(TILE_LANES) * dim * TILE_LANES];
        for (t, group) in points.chunks(TILE_LANES).enumerate() {
            for (l, p) in group.iter().enumerate() {
                assert_eq!(p.len(), dim, "inconsistent dimensionality");
                row_buf[l * dim..(l + 1) * dim].copy_from_slice(p);
            }
            qcluster_linalg::vecops::transpose_tile(
                &row_buf[..group.len() * dim],
                dim,
                &mut tiles[t * dim * TILE_LANES..(t + 1) * dim * TILE_LANES],
            );
        }
        TileCorpus {
            tiles,
            dim,
            len: points.len(),
        }
    }

    /// Transposes a flat row-major corpus into tiles.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`, `data` is empty, or `data.len()` is not a
    /// multiple of `dim`.
    pub fn from_flat(data: &[f64], dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(!data.is_empty(), "corpus must be non-empty");
        assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
        let len = data.len() / dim;
        let mut tiles = vec![0.0f64; len.div_ceil(TILE_LANES) * dim * TILE_LANES];
        for (t, group) in data.chunks(TILE_LANES * dim).enumerate() {
            qcluster_linalg::vecops::transpose_tile(
                group,
                dim,
                &mut tiles[t * dim * TILE_LANES..(t + 1) * dim * TILE_LANES],
            );
        }
        TileCorpus { tiles, dim, len }
    }

    /// Adopts an already tile-major buffer without copying (the segment
    /// format v2 load path). Padding lanes of the final tile should be
    /// zero; their values never affect results.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`, `len == 0`, or `tiles.len()` disagrees
    /// with `ceil(len/8) * dim * 8`.
    pub fn from_tile_parts(tiles: Vec<f64>, dim: usize, len: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(len > 0, "corpus must be non-empty");
        assert_eq!(
            tiles.len(),
            len.div_ceil(TILE_LANES) * dim * TILE_LANES,
            "tiles length mismatch"
        );
        TileCorpus { tiles, dim, len }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: construction rejects empty corpora.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 8-point tiles (the final one may be padded).
    pub fn ntiles(&self) -> usize {
        self.len.div_ceil(TILE_LANES)
    }

    /// The raw tile-major column.
    pub fn tiles(&self) -> &[f64] {
        &self.tiles
    }

    /// Copies point `id` into row-major `out`.
    ///
    /// # Panics
    ///
    /// Panics when `id >= len` or `out.len() != dim`.
    pub fn copy_point(&self, id: usize, out: &mut [f64]) {
        assert!(id < self.len, "point id out of range");
        assert_eq!(out.len(), self.dim, "output length mismatch");
        let (t, l) = (id / TILE_LANES, id % TILE_LANES);
        let tile = &self.tiles[t * self.dim * TILE_LANES..(t + 1) * self.dim * TILE_LANES];
        for j in 0..self.dim {
            out[j] = tile[j * TILE_LANES + l];
        }
    }

    /// Exact k-NN over the tiles (no row-major materialization): blocks
    /// of tiles stream through [`QueryDistance::distance_tiles`] into a
    /// bounded heap. Identical results to [`crate::LinearScan::knn`].
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or the query dimensionality disagrees.
    pub fn knn<Q: QueryDistance + ?Sized>(&self, query: &Q, k: usize) -> Vec<Neighbor> {
        assert_eq!(query.dim(), self.dim, "query dimensionality mismatch");
        let mut heap = TopK::new(k);
        let mut dist = vec![0.0f64; QUANT_BLOCK_TILES * TILE_LANES];
        let tile = self.dim * TILE_LANES;
        let mut base_tile = 0;
        let ntiles = self.ntiles();
        while base_tile < ntiles {
            let bt = QUANT_BLOCK_TILES.min(ntiles - base_tile);
            let base_id = base_tile * TILE_LANES;
            let pts = (self.len - base_id).min(bt * TILE_LANES);
            query.distance_tiles(
                &self.tiles[base_tile * tile..(base_tile + bt) * tile],
                self.dim,
                &mut dist[..pts],
            );
            for (p, &d) in dist[..pts].iter().enumerate() {
                heap.offer(base_id + p, d);
            }
            base_tile += bt;
        }
        heap.into_sorted()
    }
}

/// Rerank window for a top-`k` query: enough slack that the candidate
/// set certifies on typical corpora (see DESIGN.md §16 for the sizing
/// derivation) while keeping phase 2 a rounding error next to phase 1.
pub fn default_rerank_window(k: usize) -> usize {
    (4 * k).max(k + 64)
}

/// The two-phase scan: a [`TileCorpus`] plus its quantized code column.
#[derive(Debug, Clone)]
pub struct QuantizedScan {
    corpus: TileCorpus,
    codes: Vec<u8>,
    params: QuantParams,
}

impl QuantizedScan {
    /// Builds corpus, params, and codes from row-major points.
    ///
    /// # Panics
    ///
    /// Panics when `points` is empty or dimensionalities disagree.
    pub fn from_rows(points: &[Vec<f64>]) -> Self {
        let corpus = TileCorpus::from_rows(points);
        let dim = corpus.dim();
        let mut flat = Vec::with_capacity(points.len() * dim);
        for p in points {
            flat.extend_from_slice(p);
        }
        Self::with_corpus(corpus, &flat, dim)
    }

    /// Builds from a flat row-major corpus.
    ///
    /// # Panics
    ///
    /// See [`TileCorpus::from_flat`].
    pub fn from_flat(data: &[f64], dim: usize) -> Self {
        Self::with_corpus(TileCorpus::from_flat(data, dim), data, dim)
    }

    fn with_corpus(corpus: TileCorpus, flat: &[f64], dim: usize) -> Self {
        let params = QuantParams::fit(flat, dim);
        let mut codes = vec![0u8; corpus.tiles().len()];
        params.encode_tiles(corpus.tiles(), &mut codes);
        QuantizedScan {
            corpus,
            codes,
            params,
        }
    }

    /// Adopts pre-built columns without copying (segment format v2).
    ///
    /// # Panics
    ///
    /// Panics when shapes disagree.
    pub fn from_parts(corpus: TileCorpus, codes: Vec<u8>, params: QuantParams) -> Self {
        assert_eq!(codes.len(), corpus.tiles().len(), "codes length mismatch");
        assert_eq!(params.dim(), corpus.dim(), "params dimensionality mismatch");
        QuantizedScan {
            corpus,
            codes,
            params,
        }
    }

    /// The exact column.
    pub fn corpus(&self) -> &TileCorpus {
        &self.corpus
    }

    /// The quantization parameters.
    pub fn params(&self) -> &QuantParams {
        &self.params
    }

    /// The tile-major code column.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// Always false: construction rejects empty corpora.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// Exact k-NN (phase 1 skipped entirely).
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or the query dimensionality disagrees.
    pub fn knn<Q: QueryDistance + ?Sized>(&self, query: &Q, k: usize) -> Vec<Neighbor> {
        self.corpus.knn(query, k)
    }

    /// Two-phase k-NN: quantized filter, exact rerank, certified
    /// acceptance — returns exactly what [`Self::knn`] would, plus
    /// phase counters. `window` overrides [`default_rerank_window`].
    ///
    /// The acceptance argument: every point outside the candidate heap
    /// has `LB ≥ heap_max` (the heap's final worst bound), and
    /// `LB ≤ exact` by soundness, so when the k-th reranked distance
    /// `D < heap_max`, no outside point can beat any returned neighbor;
    /// ties at `D` itself are settled by the strict inequality. When the
    /// heap never filled, every point was reranked.
    ///
    /// When the window is too tight to certify, the scan does **not**
    /// rescan exactly: the k-th *exact* distance `τ` from the first
    /// rerank upper-bounds the true k-th distance, so a second rerank
    /// over every point with `LB ≤ τ` provably contains the true top-k
    /// — the candidate set is sized by the quantization error bound
    /// itself rather than a guessed window. Only a bound violated by an
    /// exact distance (`D < LB`, impossible unless the soundness margins
    /// are broken) falls back to one full exact pass.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or the query dimensionality disagrees.
    pub fn two_phase_knn<Q: QueryDistance + ?Sized>(
        &self,
        query: &Q,
        k: usize,
        window: Option<usize>,
    ) -> (Vec<Neighbor>, QuantScanStats) {
        assert_eq!(
            query.dim(),
            self.corpus.dim(),
            "query dimensionality mismatch"
        );
        let mut stats = QuantScanStats::default();
        let n = self.corpus.len();
        let plan = match query.quantized_plan(&self.params) {
            Some(plan) => plan,
            None => {
                stats.plan_misses = 1;
                return (self.knn(query, k), stats);
            }
        };
        let kk = k.min(n);
        let m = window
            .unwrap_or_else(|| default_rerank_window(kk))
            .max(kk)
            .min(n);

        // Phase 1: every point's lower bound (kept whole — 4 bytes per
        // point — so a failed certification can re-select candidates
        // without re-running the kernel), plus a heap of the m smallest.
        let ntiles = self.corpus.ntiles();
        let mut acc = Vec::new();
        let mut lb = vec![0.0f32; ntiles * TILE_LANES];
        plan.lower_bounds(&self.codes, ntiles, &mut acc, &mut lb);
        let mut heap = TopK::new(m);
        for (p, &b) in lb[..n].iter().enumerate() {
            heap.offer(p, f64::from(b));
        }
        stats.phase1_points = n as u64;
        let overflowed = n > m;
        let cands = heap.into_sorted();
        let heap_max = cands.last().map_or(0.0, |c| c.distance);

        // Phase 2: gather candidates in id order (cache-friendly) and
        // rerank with the exact kernel.
        let mut by_id: Vec<(usize, f64)> = cands.iter().map(|c| (c.id, c.distance)).collect();
        by_id.sort_unstable_by_key(|&(id, _)| id);
        let (result, mut unsound) = self.rerank(query, kk, &by_id);
        stats.reranked = by_id.len() as u64;

        let certified =
            !unsound && (!overflowed || result.threshold().is_some_and(|d_k| d_k < heap_max));
        if certified {
            return (result.into_sorted(), stats);
        }

        if !unsound {
            // Second, bound-driven round: τ (the k-th exact distance
            // seen so far) upper-bounds the true k-th distance, and
            // `LB ≤ D` for every point, so {p : LB ≤ τ} ⊇ true top-k.
            // Any outside point has D ≥ LB > τ ≥ final d_k, strictly —
            // exactness needs no further certification.
            let tau = result.threshold().expect("m ≥ kk candidates reranked");
            let by_id: Vec<(usize, f64)> = lb[..n]
                .iter()
                .enumerate()
                .filter_map(|(p, &b)| {
                    let b = f64::from(b);
                    (b <= tau).then_some((p, b))
                })
                .collect();
            let (result, unsound2) = self.rerank(query, kk, &by_id);
            stats.reranked += by_id.len() as u64;
            unsound = unsound2;
            if !unsound {
                return (result.into_sorted(), stats);
            }
        }

        // A violated bound means the soundness margins failed (a bug,
        // or memory corruption): serve the query exactly anyway.
        stats.fallback_rescans = 1;
        (self.knn(query, k), stats)
    }

    /// Exactly reranks `by_id` (ascending-id `(id, lower_bound)` pairs)
    /// into a `kk`-bounded top-k heap. Returns the heap and whether any
    /// exact distance violated its supposed lower bound.
    fn rerank<Q: QueryDistance + ?Sized>(
        &self,
        query: &Q,
        kk: usize,
        by_id: &[(usize, f64)],
    ) -> (TopK, bool) {
        let dim = self.corpus.dim();
        let mut result = TopK::new(kk);
        let mut unsound = false;
        let block = TILE_LANES * QUANT_BLOCK_TILES;
        let mut rows = vec![0.0f64; block * dim];
        let mut dist = vec![0.0f64; block];
        for chunk in by_id.chunks(block) {
            for (i, &(id, _)) in chunk.iter().enumerate() {
                self.corpus
                    .copy_point(id, &mut rows[i * dim..(i + 1) * dim]);
            }
            query.distance_batch(&rows[..chunk.len() * dim], dim, &mut dist[..chunk.len()]);
            for (i, &(id, bound)) in chunk.iter().enumerate() {
                if dist[i] < bound {
                    unsound = true;
                }
                result.offer(id, dist[i]);
            }
        }
        (result, unsound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{EuclideanQuery, WeightedEuclideanQuery};
    use crate::scan::LinearScan;

    fn corpus(n: usize, dim: usize) -> Vec<Vec<f64>> {
        let mut state = 0x2545f4914f6cdd1du64;
        let mut rnd = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n)
            .map(|_| (0..dim).map(|_| rnd() * 4.0).collect())
            .collect()
    }

    #[test]
    fn fit_tiles_matches_row_major_fit_bit_for_bit() {
        for n in [1usize, 7, 8, 9, 300] {
            let pts = corpus(n, 5);
            let flat: Vec<f64> = pts.iter().flatten().copied().collect();
            let want = QuantParams::fit(&flat, 5);
            let tiled = TileCorpus::from_flat(&flat, 5);
            let got = QuantParams::fit_tiles(tiled.tiles(), 5, n);
            assert_eq!(got, want, "n={n}");
        }
        // Empty corpora degrade to zero ranges in both forms.
        assert_eq!(QuantParams::fit_tiles(&[], 3, 0), QuantParams::fit(&[], 3));
    }

    #[test]
    fn codes_round_trip_within_measured_error() {
        let pts = corpus(300, 5);
        let flat: Vec<f64> = pts.iter().flatten().copied().collect();
        let params = QuantParams::fit(&flat, 5);
        for row in &pts {
            for j in 0..5 {
                let back = params.decode(j, params.encode_value(j, row[j]));
                assert!((row[j] - back).abs() <= params.max_err()[j]);
            }
        }
    }

    #[test]
    fn zero_range_dimension_reconstructs_exactly() {
        let data = vec![3.0, 1.0, 3.0, 2.0, 3.0, -1.0];
        let params = QuantParams::fit(&data, 2);
        assert_eq!(params.delta()[0], 0.0);
        assert_eq!(params.decode(0, params.encode_value(0, 3.0)), 3.0);
        // Only the absolute inflation floor remains of the error bound.
        assert!(params.max_err()[0] <= 4e-12);
    }

    #[test]
    fn non_finite_values_poison_the_plan() {
        let data = vec![1.0, f64::NAN, 2.0, 3.0];
        let params = QuantParams::fit(&data, 2);
        let q = EuclideanQuery::new(vec![0.0, 0.0]);
        assert!(q.quantized_plan(&params).is_none());
    }

    #[test]
    fn tile_corpus_round_trips_points() {
        let pts = corpus(21, 4);
        let tc = TileCorpus::from_rows(&pts);
        assert_eq!(tc.len(), 21);
        assert_eq!(tc.ntiles(), 3);
        let mut row = vec![0.0; 4];
        for (i, p) in pts.iter().enumerate() {
            tc.copy_point(i, &mut row);
            assert_eq!(&row, p);
        }
    }

    #[test]
    fn tile_corpus_knn_matches_linear_scan() {
        let pts = corpus(500, 6);
        let tc = TileCorpus::from_rows(&pts);
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(pts[7].clone());
        assert_eq!(tc.knn(&q, 10), scan.knn(&q, 10));
        let w = WeightedEuclideanQuery::new(pts[3].clone(), vec![0.5, 2.0, 0.0, 1.0, 3.0, 0.25]);
        assert_eq!(tc.knn(&w, 10), scan.knn(&w, 10));
    }

    #[test]
    fn two_phase_matches_exact_bit_for_bit() {
        let pts = corpus(2000, 8);
        let qs = QuantizedScan::from_rows(&pts);
        let scan = LinearScan::new(&pts);
        for k in [1usize, 10, 25] {
            let q = EuclideanQuery::new(pts[k].clone());
            let (got, stats) = qs.two_phase_knn(&q, k, None);
            let want = scan.knn(&q, k);
            assert_eq!(got, want, "k={k}");
            assert_eq!(stats.phase1_points, 2000);
            assert!(stats.plan_misses == 0);
        }
    }

    #[test]
    fn two_phase_handles_duplicates_and_ties() {
        let mut pts = corpus(64, 3);
        for i in 0..32 {
            let dup = pts[i % 4].clone();
            pts.push(dup);
        }
        let qs = QuantizedScan::from_rows(&pts);
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(pts[0].clone());
        let (got, _) = qs.two_phase_knn(&q, 40, None);
        assert_eq!(got, scan.knn(&q, 40));
    }

    #[test]
    fn window_of_full_corpus_never_falls_back() {
        let pts = corpus(100, 4);
        let qs = QuantizedScan::from_rows(&pts);
        let q = EuclideanQuery::new(pts[0].clone());
        let (got, stats) = qs.two_phase_knn(&q, 5, Some(100));
        assert_eq!(got, LinearScan::new(&pts).knn(&q, 5));
        assert_eq!(stats.fallback_rescans, 0);
        assert_eq!(stats.reranked, 100);
    }

    #[test]
    fn tiny_window_still_exact_via_fallback_path() {
        // A window of k forces frequent certification failures; results
        // must still be exact.
        let pts = corpus(800, 5);
        let qs = QuantizedScan::from_rows(&pts);
        let scan = LinearScan::new(&pts);
        for probe in 0..8 {
            let q = EuclideanQuery::new(pts[probe * 97].clone());
            let (got, _) = qs.two_phase_knn(&q, 10, Some(10));
            assert_eq!(got, scan.knn(&q, 10));
        }
    }

    #[test]
    fn lower_bounds_are_sound_for_every_point() {
        let pts = corpus(1000, 7);
        let qs = QuantizedScan::from_rows(&pts);
        let q =
            WeightedEuclideanQuery::new(pts[11].clone(), vec![1.0, 0.5, 2.0, 0.0, 0.75, 1.5, 0.25]);
        let plan = q.quantized_plan(qs.params()).expect("plan compiles");
        let ntiles = qs.corpus().ntiles();
        let mut acc = Vec::new();
        let mut lb = vec![0.0f32; ntiles * TILE_LANES];
        plan.lower_bounds(qs.codes(), ntiles, &mut acc, &mut lb);
        for (i, p) in pts.iter().enumerate() {
            assert!(
                f64::from(lb[i]) <= q.distance(p),
                "bound {} exceeds exact {} at {i}",
                lb[i],
                q.distance(p)
            );
        }
    }
}
