//! Exact best-first k-NN search over the hybrid tree.
//!
//! The classic Hjaltason–Samet incremental algorithm: a min-priority queue
//! over nodes ordered by the distance lower bound, pruned against the
//! current k-th best candidate. Exactness follows from the
//! [`QueryDistance`] lower-bound contract.
//!
//! Every node dequeued counts as one **node access** — the experiments'
//! I/O proxy. When a [`NodeCache`] is supplied (the multipoint approach of
//! paper reference \[7\]), accesses to nodes already touched earlier in the
//! same feedback session are cache hits and do not count as disk reads.

use crate::cache::NodeCache;
use crate::distance::QueryDistance;
use crate::tree::{HybridTree, Node};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One k-NN result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the point in the array the tree was bulk-loaded from.
    pub id: usize,
    /// Distance under the query's distance function.
    pub distance: f64,
}

/// Counters describing the work one search performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes dequeued and expanded.
    pub nodes_accessed: u64,
    /// Of those, how many were already resident in the session cache.
    pub cache_hits: u64,
    /// Node accesses charged as disk reads (`nodes_accessed − cache_hits`).
    pub disk_reads: u64,
    /// Point-level distance evaluations.
    pub distance_evaluations: u64,
    /// Points filtered by a quantized phase-1 kernel (two-phase scans).
    pub quant_phase1_points: u64,
    /// Candidates exactly reranked by a two-phase scan's phase 2.
    pub quant_reranked: u64,
    /// Full exact rescans a two-phase scan fell back to.
    pub quant_fallbacks: u64,
    /// Queries that could not compile a quantized plan and ran exact.
    pub quant_plan_misses: u64,
}

/// Max-heap entry for the result set (largest distance on top).
#[derive(Debug, PartialEq)]
struct Candidate {
    distance: f64,
    id: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance
            .partial_cmp(&other.distance)
            .expect("non-NaN distances")
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded top-k accumulator: keeps the `k` smallest `(distance, id)`
/// pairs seen so far in a max-heap, so selecting the top-k out of `n`
/// offers costs `O(n log k)` instead of a full `O(n log n)` sort.
///
/// Tie-breaking is identical to sorting all candidates ascending by
/// `(distance, id)` and truncating to `k` — the order every k-NN entry
/// point in this crate guarantees.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Candidate>,
}

impl TopK {
    /// An empty accumulator for the `k` best candidates.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one candidate, keeping it only if it beats the current
    /// k-th best under `(distance, id)` ordering.
    ///
    /// # Panics
    ///
    /// Panics on a NaN distance.
    #[inline]
    pub fn offer(&mut self, id: usize, distance: f64) {
        let candidate = Candidate { distance, id };
        if self.heap.len() < self.k {
            self.heap.push(candidate);
        } else if candidate < *self.heap.peek().expect("non-empty full heap") {
            self.heap.pop();
            self.heap.push(candidate);
        }
    }

    /// Candidates currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no candidate has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th best distance once `k` candidates are held —
    /// the prune threshold for best-first search. `None` while underfull
    /// (nothing can be pruned yet).
    pub fn threshold(&self) -> Option<f64> {
        (self.heap.len() == self.k).then(|| self.heap.peek().expect("full heap").distance)
    }

    /// Consumes the accumulator into neighbors sorted ascending by
    /// `(distance, id)`.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|c| Neighbor {
                id: c.id,
                distance: c.distance,
            })
            .collect()
    }
}

/// Min-heap entry (via reversed ordering) for the node frontier.
#[derive(Debug, PartialEq)]
struct Frontier {
    min_dist: f64,
    node: usize,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want smallest first.
        other
            .min_dist
            .partial_cmp(&self.min_dist)
            .expect("non-NaN bounds")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Merges per-shard top-`k` lists into the global top-`k`.
///
/// Each input list must be sorted ascending by `(distance, id)` — the
/// order produced by [`LinearScan::knn`](crate::LinearScan::knn) and
/// [`HybridTree::knn`]. The merge is the classic k-way heap merge: it
/// pops at most `k` elements overall, so the cost is `O(k log s)` for
/// `s` shards rather than re-sorting all `s·k` candidates.
///
/// # Panics
///
/// Panics when `k == 0` or any distance is NaN.
pub fn merge_top_k(lists: Vec<Vec<Neighbor>>, k: usize) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");

    /// Min-heap head entry (reversed ordering on `(distance, id)`).
    struct Head {
        neighbor: Neighbor,
        shard: usize,
    }

    impl PartialEq for Head {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }

    impl Eq for Head {}

    impl Ord for Head {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .neighbor
                .distance
                .partial_cmp(&self.neighbor.distance)
                .expect("non-NaN distances")
                .then_with(|| other.neighbor.id.cmp(&self.neighbor.id))
        }
    }

    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut iters: Vec<std::vec::IntoIter<Neighbor>> =
        lists.into_iter().map(|l| l.into_iter()).collect();
    let mut heads = BinaryHeap::with_capacity(iters.len());
    for (shard, it) in iters.iter_mut().enumerate() {
        if let Some(neighbor) = it.next() {
            heads.push(Head { neighbor, shard });
        }
    }

    let mut out = Vec::with_capacity(k.min(heads.len()));
    while out.len() < k {
        let Some(Head { neighbor, shard }) = heads.pop() else {
            break;
        };
        out.push(neighbor);
        if let Some(next) = iters[shard].next() {
            heads.push(Head {
                neighbor: next,
                shard,
            });
        }
    }
    out
}

impl HybridTree {
    /// Finds the `k` nearest points to `query`, ties broken by id.
    ///
    /// Returns the neighbors sorted by ascending distance together with the
    /// search statistics. Pass a [`NodeCache`] to model the multipoint
    /// approach's cross-iteration buffer; pass `None` to charge every node
    /// access as a disk read (a fresh query).
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or the query dimensionality disagrees with the
    /// tree's.
    pub fn knn<Q: QueryDistance>(
        &self,
        query: &Q,
        k: usize,
        mut cache: Option<&mut NodeCache>,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert!(k > 0, "k must be positive");
        assert_eq!(query.dim(), self.dim(), "query dimensionality mismatch");
        let mut stats = SearchStats::default();
        let mut results = TopK::new(k);
        // Per-leaf batch output, grown to the largest leaf encountered.
        let mut dists: Vec<f64> = Vec::new();
        let mut frontier = BinaryHeap::new();
        frontier.push(Frontier {
            min_dist: query.min_distance(self.nodes[self.root].bbox()),
            node: self.root,
        });

        while let Some(Frontier { min_dist, node }) = frontier.pop() {
            // Prune: nothing in this subtree can beat the current k-th best.
            if let Some(worst) = results.threshold() {
                if min_dist > worst {
                    break;
                }
            }
            stats.nodes_accessed += 1;
            let hit = cache.as_deref_mut().is_some_and(|c| c.access(node));
            if hit {
                stats.cache_hits += 1;
            }

            match &self.nodes[node] {
                Node::Leaf { start, end, .. } => {
                    // Leaf points are contiguous in the tree's permuted
                    // buffer: evaluate the whole page in one batch call.
                    let count = end - start;
                    dists.resize(count, 0.0);
                    let block = &self.data[start * self.dim..end * self.dim];
                    query.distance_batch(block, self.dim, &mut dists);
                    stats.distance_evaluations += count as u64;
                    for (i, &d) in dists.iter().enumerate() {
                        results.offer(self.order[start + i], d);
                    }
                }
                Node::Internal { left, right, .. } => {
                    for &child in &[*left, *right] {
                        let lb = query.min_distance(self.nodes[child].bbox());
                        if results.threshold().is_none_or(|worst| lb <= worst) {
                            frontier.push(Frontier {
                                min_dist: lb,
                                node: child,
                            });
                        }
                    }
                }
            }
        }
        stats.disk_reads = stats.nodes_accessed - stats.cache_hits;
        (results.into_sorted(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{EuclideanQuery, QueryDistance};
    use crate::scan::LinearScan;

    fn grid_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .flat_map(|i| (0..n).map(move |j| vec![i as f64, j as f64]))
            .collect()
    }

    #[test]
    fn nearest_neighbor_is_exact_on_grid() {
        let pts = grid_points(10);
        let tree = HybridTree::bulk_load_with_page_size(&pts, 128);
        let q = EuclideanQuery::new(vec![3.2, 6.9]);
        let (nn, _) = tree.knn(&q, 1, None);
        assert_eq!(nn.len(), 1);
        assert_eq!(pts[nn[0].id], vec![3.0, 7.0]);
    }

    #[test]
    fn knn_matches_linear_scan() {
        let pts = grid_points(12);
        let tree = HybridTree::bulk_load_with_page_size(&pts, 96);
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(vec![5.3, 2.8]);
        let (a, _) = tree.knn(&q, 10, None);
        let b = scan.knn(&q, 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id);
            assert!((x.distance - y.distance).abs() < 1e-12);
        }
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let pts = grid_points(3);
        let tree = HybridTree::bulk_load(&pts);
        let q = EuclideanQuery::new(vec![0.0, 0.0]);
        let (nn, _) = tree.knn(&q, 100, None);
        assert_eq!(nn.len(), 9);
    }

    #[test]
    fn results_sorted_ascending() {
        let pts = grid_points(8);
        let tree = HybridTree::bulk_load_with_page_size(&pts, 64);
        let q = EuclideanQuery::new(vec![4.0, 4.0]);
        let (nn, _) = tree.knn(&q, 20, None);
        for w in nn.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn pruning_beats_full_traversal() {
        let pts = grid_points(40); // 1600 points
        let tree = HybridTree::bulk_load_with_page_size(&pts, 256);
        let q = EuclideanQuery::new(vec![1.0, 1.0]);
        let (_, stats) = tree.knn(&q, 5, None);
        assert!(
            stats.nodes_accessed < tree.num_nodes() as u64 / 2,
            "accessed {} of {} nodes",
            stats.nodes_accessed,
            tree.num_nodes()
        );
    }

    #[test]
    fn cache_converts_repeat_accesses_to_hits() {
        let pts = grid_points(20);
        let tree = HybridTree::bulk_load_with_page_size(&pts, 128);
        let mut cache = NodeCache::new(tree.num_nodes());
        let q = EuclideanQuery::new(vec![10.0, 10.0]);
        let (_, s1) = tree.knn(&q, 10, Some(&mut cache));
        assert_eq!(s1.cache_hits, 0);
        assert!(s1.disk_reads > 0);
        // A nearby refined query revisits mostly the same nodes.
        let q2 = EuclideanQuery::new(vec![10.5, 9.5]);
        let (_, s2) = tree.knn(&q2, 10, Some(&mut cache));
        assert!(s2.cache_hits > 0);
        assert!(s2.disk_reads < s1.disk_reads);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let pts = grid_points(2);
        let tree = HybridTree::bulk_load(&pts);
        let q = EuclideanQuery::new(vec![0.0, 0.0]);
        let _ = tree.knn(&q, 0, None);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dim_mismatch_panics() {
        let pts = grid_points(2);
        let tree = HybridTree::bulk_load(&pts);
        let q = EuclideanQuery::new(vec![0.0, 0.0, 0.0]);
        let _ = tree.knn(&q, 1, None);
    }

    #[test]
    fn merge_top_k_matches_global_scan() {
        let pts = grid_points(9); // 81 points
        let q = EuclideanQuery::new(vec![3.7, 4.1]);
        // Split into 4 contiguous shards, scan each, merge with global ids.
        let per_shard: Vec<Vec<Neighbor>> = pts
            .chunks(21)
            .enumerate()
            .map(|(s, chunk)| {
                let scan = LinearScan::new(chunk);
                scan.knn(&q, 10)
                    .into_iter()
                    .map(|n| Neighbor {
                        id: s * 21 + n.id,
                        distance: n.distance,
                    })
                    .collect()
            })
            .collect();
        let merged = merge_top_k(per_shard, 10);
        let global = LinearScan::new(&pts).knn(&q, 10);
        assert_eq!(merged.len(), global.len());
        for (a, b) in merged.iter().zip(global.iter()) {
            assert_eq!(a.id, b.id);
            assert!((a.distance - b.distance).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_top_k_breaks_ties_by_id() {
        let mk = |ids: &[usize]| -> Vec<Neighbor> {
            ids.iter()
                .map(|&id| Neighbor { id, distance: 1.0 })
                .collect()
        };
        let merged = merge_top_k(vec![mk(&[1, 5]), mk(&[0, 3]), mk(&[2])], 4);
        assert_eq!(
            merged.iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn merge_top_k_short_inputs_return_everything() {
        let lists = vec![
            vec![Neighbor {
                id: 0,
                distance: 2.0,
            }],
            Vec::new(),
            vec![Neighbor {
                id: 1,
                distance: 1.0,
            }],
        ];
        let merged = merge_top_k(lists, 10);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].id, 1);
        assert_eq!(merged[1].id, 0);
    }

    #[test]
    fn query_distance_object_safe_through_reference() {
        // The service fans out `&dyn QueryDistance`; the reference blanket
        // impl must keep tree search usable through it.
        let pts = grid_points(6);
        let tree = HybridTree::bulk_load(&pts);
        let q = EuclideanQuery::new(vec![2.2, 2.8]);
        let dyn_q: &dyn QueryDistance = &q;
        let (a, _) = tree.knn(&dyn_q, 4, None);
        let (b, _) = tree.knn(&q, 4, None);
        assert_eq!(
            a.iter().map(|n| n.id).collect::<Vec<_>>(),
            b.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }
}
