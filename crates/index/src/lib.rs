//! High-dimensional feature indexing for the Qcluster reproduction.
//!
//! The paper indexes feature vectors with the **hybrid tree**
//! (Chakrabarti & Mehrotra, ICDE 1999) and answers refined multipoint
//! queries with the **multipoint approach** of Chakrabarti, Porkaew &
//! Mehrotra (ICDE 2000), which "saves the execution cost of an iteration by
//! caching the information of index nodes generated during the previous
//! iterations of the query" (paper Sec. 5, Fig. 7).
//!
//! This crate provides:
//!
//! - [`HybridTree`] — a bulk-loaded, space-partitioned tree over feature
//!   vectors with per-node bounding boxes. It preserves the two properties
//!   the experiments rely on: exact k-NN under arbitrary lower-boundable
//!   distance functions, and a node-granular access count (the I/O proxy).
//! - [`QueryDistance`] — the pluggable distance abstraction. Qcluster's
//!   disjunctive aggregate distance, MARS's weighted Euclidean, and
//!   MindReader's generalized Euclidean all implement it.
//! - [`NodeCache`] — the cross-iteration node buffer of the multipoint
//!   approach: nodes read by earlier iterations of the same feedback
//!   session are buffer hits, so only newly-touched nodes count as I/O.
//! - [`LinearScan`] — the exact brute-force baseline.

#![warn(missing_docs)]
// Indexed loops over multiple parallel buffers are the clearest (and often
// fastest) form for the dense numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]

pub mod bbox;
pub mod cache;
pub mod distance;
pub mod dynamic;
pub mod incremental;
pub mod knn;
pub mod quant;
pub mod range;
pub mod scan;
pub mod tree;

pub use bbox::BoundingBox;
pub use cache::NodeCache;
pub use distance::{EuclideanQuery, QueryDistance, WeightedEuclideanQuery};
pub use dynamic::{DynamicIndex, DynamicStats};
pub use incremental::KnnIter;
pub use knn::{merge_top_k, Neighbor, SearchStats, TopK};
pub use quant::{
    default_rerank_window, QuantParams, QuantPlan, QuantScanStats, QuantSpec, QuantizedScan,
    TileCorpus, QUANT_BLOCK_TILES,
};
pub use scan::{LinearScan, SCAN_BLOCK_POINTS};
pub use tree::HybridTree;
