//! A growable index over the bulk-loaded hybrid tree.
//!
//! The paper's database is static, but a production CBIR system ingests
//! images continuously. [`DynamicIndex`] extends the immutable
//! [`HybridTree`] with the classic *side-buffer + rebuild* design: inserts
//! land in an unindexed buffer that every query scans alongside the tree;
//! when the buffer outgrows its threshold the whole index is bulk-reloaded
//! (bulk loading is fast — see `benches/knn.rs`). Queries are exact at
//! every moment, and ids are stable across rebuilds.

use crate::cache::NodeCache;
use crate::distance::QueryDistance;
use crate::knn::{Neighbor, SearchStats};
use crate::tree::HybridTree;

/// Default buffer size that triggers a rebuild.
pub const DEFAULT_REBUILD_THRESHOLD: usize = 1024;

/// A snapshot of a [`DynamicIndex`]'s growth counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicStats {
    /// Total points (indexed + buffered).
    pub len: usize,
    /// Points covered by the bulk-loaded tree.
    pub indexed: usize,
    /// Points awaiting the next rebuild.
    pub buffered: usize,
    /// Rebuilds performed since construction.
    pub rebuilds: usize,
    /// Buffer size that triggers a rebuild.
    pub rebuild_threshold: usize,
}

/// An exact k-NN index supporting appends.
#[derive(Debug, Clone)]
pub struct DynamicIndex {
    /// All points ever inserted, in id order (id = position).
    points: Vec<Vec<f64>>,
    /// Tree over `points[..indexed]`.
    tree: HybridTree,
    /// Number of points covered by the tree.
    indexed: usize,
    rebuild_threshold: usize,
    rebuilds: usize,
}

impl DynamicIndex {
    /// Builds the index over an initial point set with the default
    /// rebuild threshold.
    ///
    /// # Panics
    ///
    /// Panics on an empty set or ragged dimensionalities (per
    /// [`HybridTree::bulk_load`]).
    pub fn new(points: Vec<Vec<f64>>) -> Self {
        Self::with_rebuild_threshold(points, DEFAULT_REBUILD_THRESHOLD)
    }

    /// Builds with an explicit rebuild threshold (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics when `threshold == 0` or on invalid points.
    pub fn with_rebuild_threshold(points: Vec<Vec<f64>>, threshold: usize) -> Self {
        assert!(threshold > 0, "rebuild threshold must be positive");
        let tree = HybridTree::bulk_load(&points);
        let indexed = points.len();
        DynamicIndex {
            points,
            tree,
            indexed,
            rebuild_threshold: threshold,
            rebuilds: 0,
        }
    }

    /// Restores an index from recovered parts without insert-by-insert
    /// rebuild churn: the tree is bulk-loaded **once** over
    /// `points[..indexed]` and the tail `points[indexed..]` lands
    /// directly in the side buffer — exactly the shape a durable store
    /// recovers (sealed segments + WAL tail).
    ///
    /// A buffer already at or beyond the threshold is left as-is; the
    /// next [`DynamicIndex::insert`] folds it into a rebuild.
    ///
    /// # Panics
    ///
    /// Panics when `threshold == 0`, `indexed == 0`,
    /// `indexed > points.len()`, or on invalid points (per
    /// [`HybridTree::bulk_load`]).
    pub fn from_parts(points: Vec<Vec<f64>>, indexed: usize, threshold: usize) -> Self {
        assert!(threshold > 0, "rebuild threshold must be positive");
        assert!(indexed > 0, "need at least one indexed point");
        assert!(
            indexed <= points.len(),
            "indexed prefix exceeds the point count"
        );
        let tree = HybridTree::bulk_load(&points[..indexed]);
        assert!(
            points.iter().all(|p| p.len() == tree.dim()),
            "buffered points must match the indexed dimensionality"
        );
        DynamicIndex {
            points,
            tree,
            indexed,
            rebuild_threshold: threshold,
            rebuilds: 0,
        }
    }

    /// Total number of points (indexed + buffered).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.tree.dim()
    }

    /// Points currently awaiting the next rebuild.
    pub fn buffered(&self) -> usize {
        self.points.len() - self.indexed
    }

    /// Number of rebuilds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// A point-in-time view of the index's growth state, for operator
    /// metrics (rebuild churn shows up as `rebuilds` climbing while
    /// `buffered` saws between 0 and the threshold).
    pub fn stats(&self) -> DynamicStats {
        DynamicStats {
            len: self.points.len(),
            indexed: self.indexed,
            buffered: self.buffered(),
            rebuilds: self.rebuilds,
            rebuild_threshold: self.rebuild_threshold,
        }
    }

    /// The point with id `id`.
    pub fn point(&self, id: usize) -> &[f64] {
        &self.points[id]
    }

    /// Appends one point, returning its id. Triggers a rebuild when the
    /// buffer reaches the threshold.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn insert(&mut self, point: Vec<f64>) -> usize {
        assert_eq!(point.len(), self.dim(), "point dimensionality mismatch");
        let id = self.points.len();
        self.points.push(point);
        if self.buffered() >= self.rebuild_threshold {
            self.rebuild();
        }
        id
    }

    /// Forces a rebuild (normally automatic).
    pub fn rebuild(&mut self) {
        self.tree = HybridTree::bulk_load(&self.points);
        self.indexed = self.points.len();
        self.rebuilds += 1;
    }

    /// Exact k-NN over indexed + buffered points.
    ///
    /// The buffer is scanned linearly (it is small by construction); its
    /// distance evaluations are charged to the stats but it costs no node
    /// accesses — buffered points live in memory.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or on dimensionality mismatch.
    pub fn knn<Q: QueryDistance>(
        &self,
        query: &Q,
        k: usize,
        cache: Option<&mut NodeCache>,
    ) -> (Vec<Neighbor>, SearchStats) {
        let (mut result, mut stats) = self.tree.knn(query, k, cache);
        for id in self.indexed..self.points.len() {
            stats.distance_evaluations += 1;
            result.push(Neighbor {
                id,
                distance: query.distance(&self.points[id]),
            });
        }
        result.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("non-NaN distances")
                .then_with(|| a.id.cmp(&b.id))
        });
        result.truncate(k);
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::EuclideanQuery;
    use crate::scan::LinearScan;

    fn grid_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .flat_map(|i| (0..n).map(move |j| vec![i as f64, j as f64]))
            .collect()
    }

    #[test]
    fn insert_then_query_is_exact() {
        let mut idx = DynamicIndex::with_rebuild_threshold(grid_points(6), 100);
        let new_id = idx.insert(vec![2.25, 2.25]);
        assert_eq!(new_id, 36);
        let q = EuclideanQuery::new(vec![2.3, 2.3]);
        let (nn, _) = idx.knn(&q, 1, None);
        assert_eq!(nn[0].id, new_id, "freshly inserted point must be found");
    }

    #[test]
    fn matches_scan_after_many_inserts() {
        let mut idx = DynamicIndex::with_rebuild_threshold(grid_points(5), 7);
        let mut all = grid_points(5);
        for i in 0..20 {
            let p = vec![0.3 * i as f64, 4.7 - 0.2 * i as f64];
            idx.insert(p.clone());
            all.push(p);
        }
        assert!(idx.rebuilds() >= 2, "threshold 7 should trigger rebuilds");
        let scan = LinearScan::new(&all);
        let q = EuclideanQuery::new(vec![2.0, 2.0]);
        let (a, _) = idx.knn(&q, 12, None);
        let b = scan.knn(&q, 12);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn ids_are_stable_across_rebuilds() {
        let mut idx = DynamicIndex::with_rebuild_threshold(grid_points(3), 2);
        let a = idx.insert(vec![10.0, 10.0]);
        let b = idx.insert(vec![11.0, 11.0]); // triggers rebuild
        let c = idx.insert(vec![12.0, 12.0]);
        assert_eq!((a, b, c), (9, 10, 11));
        assert_eq!(idx.point(a), &[10.0, 10.0]);
        assert_eq!(idx.point(c), &[12.0, 12.0]);
    }

    #[test]
    fn buffer_accounting() {
        let mut idx = DynamicIndex::with_rebuild_threshold(grid_points(3), 3);
        assert_eq!(idx.buffered(), 0);
        idx.insert(vec![0.5, 0.5]);
        idx.insert(vec![0.6, 0.6]);
        assert_eq!(idx.buffered(), 2);
        idx.insert(vec![0.7, 0.7]); // hits threshold → rebuild
        assert_eq!(idx.buffered(), 0);
        assert_eq!(idx.rebuilds(), 1);
        assert_eq!(idx.len(), 12);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_wrong_dim_insert() {
        let mut idx = DynamicIndex::new(grid_points(2));
        idx.insert(vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_parts_restores_without_rebuilds() {
        let mut all = grid_points(4);
        all.push(vec![7.5, 7.5]);
        all.push(vec![8.5, 8.5]);
        let idx = DynamicIndex::from_parts(all.clone(), 16, 100);
        assert_eq!(idx.len(), 18);
        assert_eq!(idx.buffered(), 2);
        assert_eq!(idx.rebuilds(), 0, "restore is rebuild-free");
        // Queries are exact across both the tree and the restored buffer.
        let q = EuclideanQuery::new(vec![8.0, 8.0]);
        let (nn, _) = idx.knn(&q, 2, None);
        let got: Vec<usize> = nn.iter().map(|n| n.id).collect();
        assert_eq!(got, vec![16, 17]);
        let scan = LinearScan::new(&all);
        let q2 = EuclideanQuery::new(vec![2.2, 1.7]);
        let (a, _) = idx.knn(&q2, 9, None);
        for (x, y) in a.iter().zip(scan.knn(&q2, 9).iter()) {
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn stats_snapshot_tracks_growth() {
        let mut idx = DynamicIndex::with_rebuild_threshold(grid_points(3), 3);
        idx.insert(vec![0.1, 0.1]);
        let s = idx.stats();
        assert_eq!(s.len, 10);
        assert_eq!(s.indexed, 9);
        assert_eq!(s.buffered, 1);
        assert_eq!(s.rebuilds, 0);
        assert_eq!(s.rebuild_threshold, 3);
        idx.insert(vec![0.2, 0.2]);
        idx.insert(vec![0.3, 0.3]); // hits threshold
        let s = idx.stats();
        assert_eq!((s.buffered, s.rebuilds, s.indexed), (0, 1, 12));
    }

    #[test]
    #[should_panic(expected = "indexed prefix exceeds")]
    fn from_parts_rejects_bad_prefix() {
        let _ = DynamicIndex::from_parts(grid_points(2), 9, 10);
    }
}
