//! Cross-iteration node cache — the "multipoint approach" buffer.
//!
//! Chakrabarti, Porkaew & Mehrotra's multipoint query refinement (paper
//! reference \[7\]) observes that consecutive feedback iterations of the same
//! session touch largely-overlapping regions of the index, so it caches
//! "the information of index nodes generated during the previous iterations
//! of the query" and only charges I/O for nodes not yet buffered. Figure 7
//! of the Qcluster paper attributes Qcluster's low execution cost to
//! exactly this reuse.
//!
//! [`NodeCache`] models that buffer at node granularity: the first access
//! to a node in a session is a **miss** (a disk read); subsequent accesses
//! across any number of iterations are **hits**.

/// A per-session cache of index node ids.
///
/// By default the buffer is unbounded (every node read once stays
/// resident — the idealized multipoint-approach accounting). For a
/// realistic memory-bounded buffer pool, construct with
/// [`NodeCache::with_capacity`]: residency is then limited to `capacity`
/// nodes with least-recently-used eviction.
#[derive(Debug, Clone, Default)]
pub struct NodeCache {
    /// Clock value of the last access per node; 0 = not resident.
    last_used: Vec<u64>,
    /// Monotone access clock.
    clock: u64,
    /// Maximum resident nodes (`usize::MAX` = unbounded).
    capacity: usize,
    /// Currently resident node count.
    resident: usize,
    hits: u64,
    misses: u64,
}

impl NodeCache {
    /// An unbounded cache sized for a tree with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self::with_capacity(num_nodes, usize::MAX)
    }

    /// A cache holding at most `capacity` resident nodes (LRU eviction).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(num_nodes: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        NodeCache {
            last_used: vec![0; num_nodes],
            clock: 0,
            capacity,
            resident: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Records an access to `node`; returns `true` on a hit.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range for the tree this cache was
    /// sized for.
    pub fn access(&mut self, node: usize) -> bool {
        assert!(node < self.last_used.len(), "node id out of range");
        self.clock += 1;
        if self.last_used[node] != 0 {
            self.last_used[node] = self.clock;
            self.hits += 1;
            return true;
        }
        // Miss: admit, evicting the LRU resident if at capacity.
        if self.resident >= self.capacity {
            if let Some(victim) = self
                .last_used
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t != 0)
                .min_by_key(|&(_, &t)| t)
                .map(|(i, _)| i)
            {
                self.last_used[victim] = 0;
                self.resident -= 1;
            }
        }
        self.last_used[node] = self.clock;
        self.resident += 1;
        self.misses += 1;
        false
    }

    /// Number of cached nodes.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses (≡ simulated disk reads) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Empties the cache and zeroes the counters (start of a new session).
    pub fn clear(&mut self) {
        self.last_used.iter_mut().for_each(|c| *c = 0);
        self.clock = 0;
        self.resident = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = NodeCache::new(4);
        assert!(!c.access(2));
        assert!(c.access(2));
        assert!(c.access(2));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = NodeCache::new(4);
        c.access(0);
        c.access(0);
        c.clear();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.resident(), 0);
        assert!(!c.access(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut c = NodeCache::new(2);
        c.access(2);
    }

    #[test]
    fn bounded_cache_evicts_lru() {
        let mut c = NodeCache::with_capacity(4, 2);
        assert!(!c.access(0));
        assert!(!c.access(1));
        assert!(c.access(0)); // 0 now most recent; LRU = 1
        assert!(!c.access(2)); // evicts 1
        assert_eq!(c.resident(), 2);
        assert!(c.access(0), "0 must survive");
        assert!(!c.access(1), "1 was evicted");
    }

    #[test]
    fn exact_capacity_boundary_holds_without_eviction() {
        // Fill to exactly `capacity` residents: no eviction may fire, and
        // every filled node must still hit.
        let mut c = NodeCache::with_capacity(5, 3);
        assert!(!c.access(0));
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert_eq!(c.resident(), 3, "exactly at capacity, nothing evicted");
        for node in 0..3 {
            assert!(c.access(node), "node {node} resident at the boundary");
        }
        assert_eq!(c.misses(), 3);
        assert_eq!(c.hits(), 3);

        // One access past capacity evicts exactly one (the LRU), keeping
        // residency pinned at `capacity`.
        assert!(!c.access(3));
        assert_eq!(c.resident(), 3);
    }

    #[test]
    fn re_touch_promotes_residency_across_evictions() {
        let mut c = NodeCache::with_capacity(6, 2);
        assert!(!c.access(0));
        assert!(!c.access(1)); // LRU order: 0, 1
        assert!(c.access(0)); // re-touch 0 → LRU order: 1, 0
        assert!(!c.access(2)); // evicts 1, not the re-touched 0
        assert!(c.access(0), "re-touched node survived the eviction");
        assert!(!c.access(1), "stale node was the victim");
        // The re-admission of 1 just now evicted 2 (0 was re-touched
        // again above): the promotion keeps following recency.
        assert!(c.access(0));
        assert!(!c.access(2));
    }

    #[test]
    fn capacity_one_thrashes() {
        let mut c = NodeCache::with_capacity(3, 1);
        assert!(!c.access(0));
        assert!(!c.access(1));
        assert!(!c.access(0));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut c = NodeCache::new(100);
        for i in 0..100 {
            assert!(!c.access(i));
        }
        for i in 0..100 {
            assert!(c.access(i));
        }
        assert_eq!(c.resident(), 100);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = NodeCache::with_capacity(4, 0);
    }
}
