//! A bulk-loaded, kd-partitioned feature-vector tree ("hybrid tree").
//!
//! The paper indexes the 30,000-image feature database with the hybrid tree
//! of Chakrabarti & Mehrotra \[6\] using 4 KB nodes. The hybrid tree is a
//! kd-tree-style single-dimension-split index whose nodes are treated like
//! disk pages; what the experiments need from it is (a) exact k-NN under
//! pluggable distance functions and (b) a node-granular access count as the
//! I/O proxy. This implementation provides both:
//!
//! - nodes are built by recursive median split on the widest dimension of
//!   the node's bounding box (the hybrid tree also splits on one dimension,
//!   unlike R-trees);
//! - leaf capacity is derived from a configurable **page size in bytes**
//!   (default 4 KB, the paper's setting) and the feature dimensionality;
//! - each node stores its tight bounding box for lower-bound pruning.
//!
//! Nodes live in a flat arena; child links are indices. The tree is
//! immutable after bulk load — the retrieval experiments never insert.

use crate::bbox::BoundingBox;

/// Default page size in bytes (the paper fixes "the node size to 4KB").
pub const DEFAULT_PAGE_BYTES: usize = 4096;

/// One tree node: either an internal node with two children or a leaf
/// holding a contiguous range of the (reordered) point array.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Internal {
        bbox: BoundingBox,
        left: usize,
        right: usize,
    },
    Leaf {
        bbox: BoundingBox,
        /// Range into `HybridTree::order`.
        start: usize,
        end: usize,
    },
}

impl Node {
    pub(crate) fn bbox(&self) -> &BoundingBox {
        match self {
            Node::Internal { bbox, .. } | Node::Leaf { bbox, .. } => bbox,
        }
    }
}

/// An immutable bulk-loaded index over a set of feature vectors.
///
/// Points are identified by their index in the `points` array handed to
/// [`HybridTree::bulk_load`]; k-NN results report these ids.
///
/// ```
/// use qcluster_index::{EuclideanQuery, HybridTree};
///
/// let points = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]];
/// let tree = HybridTree::bulk_load(&points);
/// let (nearest, stats) = tree.knn(&EuclideanQuery::new(vec![0.9, 0.9]), 2, None);
/// assert_eq!(nearest[0].id, 1);
/// assert_eq!(nearest[1].id, 0);
/// assert!(stats.nodes_accessed >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct HybridTree {
    pub(crate) nodes: Vec<Node>,
    /// Permutation of point ids; leaves reference contiguous ranges.
    pub(crate) order: Vec<usize>,
    /// Flat copy of the points in `order`-permuted layout for locality.
    pub(crate) data: Vec<f64>,
    pub(crate) dim: usize,
    pub(crate) root: usize,
    leaf_capacity: usize,
}

impl HybridTree {
    /// Bulk loads a tree over `points` with the default 4 KB page size.
    ///
    /// # Panics
    ///
    /// Panics on an empty point set or inconsistent dimensionalities.
    pub fn bulk_load(points: &[Vec<f64>]) -> Self {
        Self::bulk_load_with_page_size(points, DEFAULT_PAGE_BYTES)
    }

    /// Bulk loads with an explicit page size in bytes.
    ///
    /// The leaf capacity is `page_bytes / (8 * dim)` feature vectors
    /// (8 bytes per `f64`), at least 2.
    ///
    /// # Panics
    ///
    /// Panics on an empty point set or inconsistent dimensionalities.
    pub fn bulk_load_with_page_size(points: &[Vec<f64>], page_bytes: usize) -> Self {
        assert!(!points.is_empty(), "cannot index an empty point set");
        let dim = points[0].len();
        assert!(dim > 0, "points must have at least one dimension");
        assert!(
            points.iter().all(|p| p.len() == dim),
            "all points must share one dimensionality"
        );
        assert!(
            points.iter().all(|p| p.iter().all(|v| v.is_finite())),
            "points must be finite (NaN/inf break distance ordering)"
        );
        let leaf_capacity = (page_bytes / (8 * dim)).max(2);

        let mut order: Vec<usize> = (0..points.len()).collect();
        let mut nodes = Vec::new();
        let root = build(
            points,
            &mut order,
            0,
            points.len(),
            leaf_capacity,
            &mut nodes,
        );

        // Pack the reordered points contiguously.
        let mut data = Vec::with_capacity(points.len() * dim);
        for &id in &order {
            data.extend_from_slice(&points[id]);
        }

        HybridTree {
            nodes,
            order,
            data,
            dim,
            root,
            leaf_capacity,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the tree indexes no points (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of nodes (internal + leaf).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum points per leaf (derived from the page size).
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// The point stored at position `pos` of the internal layout.
    #[inline]
    pub(crate) fn point_at(&self, pos: usize) -> &[f64] {
        &self.data[pos * self.dim..(pos + 1) * self.dim]
    }

    /// The bounding box of the whole data set.
    pub fn root_bbox(&self) -> &BoundingBox {
        self.nodes[self.root].bbox()
    }
}

/// Recursively builds the subtree over `order[start..end]`; returns the
/// arena index of the subtree root.
fn build(
    points: &[Vec<f64>],
    order: &mut [usize],
    start: usize,
    end: usize,
    leaf_capacity: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let bbox = BoundingBox::from_points(order[start..end].iter().map(|&id| points[id].as_slice()));
    if end - start <= leaf_capacity {
        nodes.push(Node::Leaf { bbox, start, end });
        return nodes.len() - 1;
    }
    let (split_dim, extent) = bbox.widest_dim();
    if extent <= 0.0 {
        // All points identical: force a leaf regardless of capacity.
        nodes.push(Node::Leaf { bbox, start, end });
        return nodes.len() - 1;
    }
    let mid = start + (end - start) / 2;
    // Median split on the widest dimension (hybrid-tree style 1-D split).
    order[start..end].select_nth_unstable_by((end - start) / 2, |&a, &b| {
        points[a][split_dim]
            .partial_cmp(&points[b][split_dim])
            .expect("non-NaN coordinates")
    });
    let left = build(points, order, start, mid, leaf_capacity, nodes);
    let right = build(points, order, mid, end, leaf_capacity, nodes);
    nodes.push(Node::Internal { bbox, left, right });
    nodes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .flat_map(|i| (0..n).map(move |j| vec![i as f64, j as f64]))
            .collect()
    }

    #[test]
    fn bulk_load_indexes_all_points() {
        let pts = grid_points(10);
        let t = HybridTree::bulk_load(&pts);
        assert_eq!(t.len(), 100);
        assert_eq!(t.dim(), 2);
        let mut seen = t.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn root_bbox_covers_data() {
        let pts = grid_points(5);
        let t = HybridTree::bulk_load(&pts);
        assert_eq!(t.root_bbox().lo(), &[0.0, 0.0]);
        assert_eq!(t.root_bbox().hi(), &[4.0, 4.0]);
    }

    #[test]
    fn page_size_controls_leaf_capacity() {
        let pts = grid_points(8);
        let t4k = HybridTree::bulk_load_with_page_size(&pts, 4096);
        assert_eq!(t4k.leaf_capacity(), 4096 / 16);
        let small = HybridTree::bulk_load_with_page_size(&pts, 64);
        assert_eq!(small.leaf_capacity(), 4);
        assert!(small.num_nodes() > t4k.num_nodes());
    }

    #[test]
    fn duplicate_points_build_a_leaf() {
        let pts = vec![vec![1.0, 1.0]; 50];
        let t = HybridTree::bulk_load_with_page_size(&pts, 64);
        assert_eq!(t.len(), 50);
        // Zero-extent data collapses into a single leaf.
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    fn single_point_tree() {
        let t = HybridTree::bulk_load(&[vec![3.0, 4.0, 5.0]]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_input_rejected() {
        let _ = HybridTree::bulk_load(&[]);
    }

    #[test]
    #[should_panic(expected = "share one dimensionality")]
    fn ragged_input_rejected() {
        let _ = HybridTree::bulk_load(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_input_rejected() {
        let _ = HybridTree::bulk_load(&[vec![1.0, f64::NAN]]);
    }
}
