//! Brute-force linear scan — the exactness oracle and small-data path.

use crate::distance::QueryDistance;
use crate::knn::{Neighbor, TopK};

/// Points per block when scanning through `distance_batch`: 256 points of
/// 24-d `f64` data is ~48 KiB — enough to amortize per-block dispatch and
/// scratch setup while the block and the query's compiled coefficients
/// stay L1/L2-resident.
pub const SCAN_BLOCK_POINTS: usize = 256;

/// A flat copy of the data set answering k-NN by full scan.
///
/// Used to validate the tree search (they must agree exactly) and for the
/// small in-memory candidate sets inside the relevance-feedback loop where
/// building a tree wouldn't pay off.
#[derive(Debug, Clone)]
pub struct LinearScan {
    data: Vec<f64>,
    dim: usize,
    len: usize,
}

impl LinearScan {
    /// Copies `points` into a contiguous buffer.
    ///
    /// # Panics
    ///
    /// Panics on an empty set or ragged dimensionalities.
    pub fn new(points: &[Vec<f64>]) -> Self {
        assert!(!points.is_empty(), "cannot scan an empty point set");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "all points must share one dimensionality"
        );
        let mut data = Vec::with_capacity(points.len() * dim);
        for p in points {
            data.extend_from_slice(p);
        }
        LinearScan {
            data,
            dim,
            len: points.len(),
        }
    }

    /// Adopts an already-flat row-major buffer without copying — the
    /// segment-load path: a v1 segment's record region *is* this layout,
    /// so a scan is one buffer handoff away from the file bytes.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`, `data` is empty, or `data.len()` is not a
    /// multiple of `dim`.
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(!data.is_empty(), "cannot scan an empty point set");
        assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
        let len = data.len() / dim;
        LinearScan { data, dim, len }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The point with index `id`.
    pub fn point(&self, id: usize) -> &[f64] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// The contiguous row-major block of points `[start, start + count)`.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the scan's length.
    pub fn block(&self, start: usize, count: usize) -> &[f64] {
        assert!(start + count <= self.len, "block out of range");
        &self.data[start * self.dim..(start + count) * self.dim]
    }

    /// Exact k-NN, ties broken by id, ascending distance.
    ///
    /// Scans the corpus in [`SCAN_BLOCK_POINTS`]-sized blocks through
    /// [`QueryDistance::distance_batch`], feeding a bounded top-k heap —
    /// `O(n log k)` selection instead of a full `O(n log n)` sort, with
    /// results (including tie-breaks) identical to sorting every
    /// candidate by `(distance, id)` and truncating.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or the query dimensionality disagrees.
    pub fn knn<Q: QueryDistance + ?Sized>(&self, query: &Q, k: usize) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        assert_eq!(query.dim(), self.dim, "query dimensionality mismatch");
        let mut top = TopK::new(k);
        let mut dists = [0.0f64; SCAN_BLOCK_POINTS];
        let mut start = 0;
        while start < self.len {
            let count = SCAN_BLOCK_POINTS.min(self.len - start);
            query.distance_batch(self.block(start, count), self.dim, &mut dists[..count]);
            for (i, &d) in dists[..count].iter().enumerate() {
                top.offer(start + i, d);
            }
            start += count;
        }
        top.into_sorted()
    }

    /// All points within `radius` of the query (distance ≤ radius).
    pub fn range<Q: QueryDistance + ?Sized>(&self, query: &Q, radius: f64) -> Vec<Neighbor> {
        let mut out = Vec::new();
        let mut dists = [0.0f64; SCAN_BLOCK_POINTS];
        let mut start = 0;
        while start < self.len {
            let count = SCAN_BLOCK_POINTS.min(self.len - start);
            query.distance_batch(self.block(start, count), self.dim, &mut dists[..count]);
            for (i, &d) in dists[..count].iter().enumerate() {
                if d <= radius {
                    out.push(Neighbor {
                        id: start + i,
                        distance: d,
                    });
                }
            }
            start += count;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::EuclideanQuery;

    #[test]
    fn knn_orders_by_distance() {
        let pts = vec![vec![0.0], vec![10.0], vec![3.0], vec![-2.0]];
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(vec![1.0]);
        let nn = scan.knn(&q, 3);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 2);
        assert_eq!(nn[2].id, 3);
    }

    #[test]
    fn range_query_filters_by_radius() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![5.0, 5.0]];
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(vec![0.0, 0.0]);
        let within = scan.range(&q, 1.0);
        assert_eq!(within.len(), 2);
    }

    #[test]
    fn ties_break_by_id() {
        let pts = vec![vec![1.0], vec![-1.0], vec![1.0]];
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(vec![0.0]);
        let nn = scan.knn(&q, 3);
        assert_eq!(nn.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
