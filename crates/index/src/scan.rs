//! Brute-force linear scan — the exactness oracle and small-data path.

use crate::distance::QueryDistance;
use crate::knn::Neighbor;

/// A flat copy of the data set answering k-NN by full scan.
///
/// Used to validate the tree search (they must agree exactly) and for the
/// small in-memory candidate sets inside the relevance-feedback loop where
/// building a tree wouldn't pay off.
#[derive(Debug, Clone)]
pub struct LinearScan {
    data: Vec<f64>,
    dim: usize,
    len: usize,
}

impl LinearScan {
    /// Copies `points` into a contiguous buffer.
    ///
    /// # Panics
    ///
    /// Panics on an empty set or ragged dimensionalities.
    pub fn new(points: &[Vec<f64>]) -> Self {
        assert!(!points.is_empty(), "cannot scan an empty point set");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "all points must share one dimensionality"
        );
        let mut data = Vec::with_capacity(points.len() * dim);
        for p in points {
            data.extend_from_slice(p);
        }
        LinearScan {
            data,
            dim,
            len: points.len(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The point with index `id`.
    pub fn point(&self, id: usize) -> &[f64] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// Exact k-NN by full scan, ties broken by id, ascending distance.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or the query dimensionality disagrees.
    pub fn knn<Q: QueryDistance>(&self, query: &Q, k: usize) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        assert_eq!(query.dim(), self.dim, "query dimensionality mismatch");
        let mut all: Vec<Neighbor> = (0..self.len)
            .map(|id| Neighbor {
                id,
                distance: query.distance(self.point(id)),
            })
            .collect();
        all.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("non-NaN distances")
                .then_with(|| a.id.cmp(&b.id))
        });
        all.truncate(k);
        all
    }

    /// All points within `radius` of the query (distance ≤ radius).
    pub fn range<Q: QueryDistance>(&self, query: &Q, radius: f64) -> Vec<Neighbor> {
        (0..self.len)
            .filter_map(|id| {
                let d = query.distance(self.point(id));
                (d <= radius).then_some(Neighbor { id, distance: d })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::EuclideanQuery;

    #[test]
    fn knn_orders_by_distance() {
        let pts = vec![vec![0.0], vec![10.0], vec![3.0], vec![-2.0]];
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(vec![1.0]);
        let nn = scan.knn(&q, 3);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 2);
        assert_eq!(nn[2].id, 3);
    }

    #[test]
    fn range_query_filters_by_radius() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![5.0, 5.0]];
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(vec![0.0, 0.0]);
        let within = scan.range(&q, 1.0);
        assert_eq!(within.len(), 2);
    }

    #[test]
    fn ties_break_by_id() {
        let pts = vec![vec![1.0], vec![-1.0], vec![1.0]];
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(vec![0.0]);
        let nn = scan.knn(&q, 3);
        assert_eq!(nn.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
