//! Incremental (lazy) nearest-neighbor iteration.
//!
//! The Hjaltason–Samet *incremental* algorithm in its original form: a
//! single priority queue holds both nodes (keyed by their distance lower
//! bound) and points (keyed by their exact distance); popping a point
//! yields the next-nearest neighbor. Unlike the batch
//! [`knn`](crate::tree::HybridTree::knn), the caller does not fix `k` up
//! front — it pulls results until satisfied (e.g. "keep retrieving until
//! 20 relevant images are on screen"), paying only for what it consumes.

use crate::cache::NodeCache;
use crate::distance::QueryDistance;
use crate::knn::{Neighbor, SearchStats};
use crate::tree::{HybridTree, Node};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A queue entry: either an unexpanded node or a concrete point.
#[derive(Debug)]
enum Entry {
    Node { bound: f64, node: usize },
    Point { distance: f64, id: usize },
}

impl Entry {
    fn key(&self) -> f64 {
        match *self {
            Entry::Node { bound, .. } => bound,
            Entry::Point { distance, .. } => distance,
        }
    }

    /// Tie-break: points before nodes at equal key (a point at distance d
    /// is definitely the next neighbor once no node bound is smaller),
    /// then by id/node for determinism.
    fn tie_rank(&self) -> (u8, usize) {
        match *self {
            Entry::Point { id, .. } => (0, id),
            Entry::Node { node, .. } => (1, node),
        }
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (key, tie_rank).
        other
            .key()
            .partial_cmp(&self.key())
            .expect("non-NaN keys")
            .then_with(|| other.tie_rank().cmp(&self.tie_rank()))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A lazy stream of neighbors in ascending distance order.
///
/// Created by [`HybridTree::knn_iter`]; each [`next`](Iterator::next)
/// call performs just enough tree expansion to prove the returned point
/// is the closest remaining one.
pub struct KnnIter<'a, Q: QueryDistance> {
    tree: &'a HybridTree,
    query: &'a Q,
    heap: BinaryHeap<Entry>,
    cache: Option<&'a mut NodeCache>,
    stats: SearchStats,
}

impl<'a, Q: QueryDistance> KnnIter<'a, Q> {
    /// Work counters accumulated so far.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }
}

impl<'a, Q: QueryDistance> Iterator for KnnIter<'a, Q> {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        while let Some(entry) = self.heap.pop() {
            match entry {
                Entry::Point { distance, id } => {
                    return Some(Neighbor { id, distance });
                }
                Entry::Node { node, .. } => {
                    self.stats.nodes_accessed += 1;
                    let hit = self.cache.as_deref_mut().is_some_and(|c| c.access(node));
                    if hit {
                        self.stats.cache_hits += 1;
                    } else {
                        self.stats.disk_reads += 1;
                    }
                    match &self.tree.nodes[node] {
                        Node::Leaf { start, end, .. } => {
                            for pos in *start..*end {
                                let d = self.query.distance(self.tree.point_at(pos));
                                self.stats.distance_evaluations += 1;
                                self.heap.push(Entry::Point {
                                    distance: d,
                                    id: self.tree.order[pos],
                                });
                            }
                        }
                        Node::Internal { left, right, .. } => {
                            for &child in &[*left, *right] {
                                self.heap.push(Entry::Node {
                                    bound: self.query.min_distance(self.tree.nodes[child].bbox()),
                                    node: child,
                                });
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

impl HybridTree {
    /// Starts an incremental nearest-neighbor scan (ascending distance).
    ///
    /// # Panics
    ///
    /// Panics when the query dimensionality disagrees with the tree's.
    pub fn knn_iter<'a, Q: QueryDistance>(
        &'a self,
        query: &'a Q,
        cache: Option<&'a mut NodeCache>,
    ) -> KnnIter<'a, Q> {
        assert_eq!(query.dim(), self.dim(), "query dimensionality mismatch");
        let mut heap = BinaryHeap::new();
        heap.push(Entry::Node {
            bound: query.min_distance(self.nodes[self.root].bbox()),
            node: self.root,
        });
        KnnIter {
            tree: self,
            query,
            heap,
            cache,
            stats: SearchStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::EuclideanQuery;

    fn grid_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .flat_map(|i| (0..n).map(move |j| vec![i as f64, j as f64]))
            .collect()
    }

    #[test]
    fn iterator_matches_batch_knn() {
        let pts = grid_points(15);
        let tree = HybridTree::bulk_load_with_page_size(&pts, 96);
        let q = EuclideanQuery::new(vec![7.3, 2.8]);
        let (batch, _) = tree.knn(&q, 40, None);
        let lazy: Vec<Neighbor> = tree.knn_iter(&q, None).take(40).collect();
        assert_eq!(batch.len(), lazy.len());
        for (a, b) in batch.iter().zip(lazy.iter()) {
            assert!((a.distance - b.distance).abs() < 1e-12);
        }
    }

    #[test]
    fn distances_are_non_decreasing() {
        let pts = grid_points(10);
        let tree = HybridTree::bulk_load_with_page_size(&pts, 64);
        let q = EuclideanQuery::new(vec![4.4, 4.6]);
        let ds: Vec<f64> = tree.knn_iter(&q, None).map(|n| n.distance).collect();
        assert_eq!(ds.len(), 100);
        for w in ds.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn early_stop_touches_fewer_nodes() {
        let pts = grid_points(40);
        let tree = HybridTree::bulk_load_with_page_size(&pts, 256);
        let q = EuclideanQuery::new(vec![1.0, 1.0]);
        let mut iter = tree.knn_iter(&q, None);
        let _first_five: Vec<Neighbor> = iter.by_ref().take(5).collect();
        let early = iter.stats().nodes_accessed;
        let _rest: Vec<Neighbor> = iter.by_ref().collect();
        let full = iter.stats().nodes_accessed;
        assert!(
            early < full / 2,
            "early stop used {early} of {full} node accesses"
        );
    }

    #[test]
    fn exhausts_exactly_once() {
        let pts = grid_points(4);
        let tree = HybridTree::bulk_load(&pts);
        let q = EuclideanQuery::new(vec![0.0, 0.0]);
        let mut iter = tree.knn_iter(&q, None);
        let all: Vec<Neighbor> = iter.by_ref().collect();
        assert_eq!(all.len(), 16);
        assert!(iter.next().is_none());
    }

    #[test]
    fn cache_counts_hits_across_scans() {
        let pts = grid_points(12);
        let tree = HybridTree::bulk_load_with_page_size(&pts, 96);
        let q = EuclideanQuery::new(vec![6.0, 6.0]);
        let mut cache = NodeCache::new(tree.num_nodes());
        let _: Vec<Neighbor> = tree.knn_iter(&q, Some(&mut cache)).take(20).collect();
        let first_misses = cache.misses();
        let _: Vec<Neighbor> = tree.knn_iter(&q, Some(&mut cache)).take(20).collect();
        assert!(cache.hits() > 0);
        assert_eq!(cache.misses(), first_misses, "second scan fully cached");
    }
}
