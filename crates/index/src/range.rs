//! Range queries over the hybrid tree.
//!
//! The paper frames CBIR queries as "a range query or a nearest-neighbor
//! query" (Sec. 1); the retrieval experiments use k-NN, but the Example 3
//! / Fig. 5 semantics ("points … within 1.0 units of either center") is a
//! range query under the aggregate distance. This module adds the exact
//! tree-pruned range search, generic over the same
//! [`QueryDistance`] abstraction.

use crate::distance::QueryDistance;
use crate::knn::{Neighbor, SearchStats};
use crate::tree::{HybridTree, Node};

impl HybridTree {
    /// All points with `distance ≤ radius`, sorted ascending by distance
    /// (ties by id), with search statistics.
    ///
    /// Exact under the lower-bound contract: a subtree is pruned only when
    /// its bounding box's distance lower bound exceeds `radius`.
    ///
    /// # Panics
    ///
    /// Panics when the query dimensionality disagrees with the tree's or
    /// `radius` is negative.
    pub fn range<Q: QueryDistance>(&self, query: &Q, radius: f64) -> (Vec<Neighbor>, SearchStats) {
        assert_eq!(query.dim(), self.dim(), "query dimensionality mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            if query.min_distance(self.nodes[node].bbox()) > radius {
                continue;
            }
            stats.nodes_accessed += 1;
            match &self.nodes[node] {
                Node::Leaf { start, end, .. } => {
                    for pos in *start..*end {
                        let d = query.distance(self.point_at(pos));
                        stats.distance_evaluations += 1;
                        if d <= radius {
                            out.push(Neighbor {
                                id: self.order[pos],
                                distance: d,
                            });
                        }
                    }
                }
                Node::Internal { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        stats.disk_reads = stats.nodes_accessed;
        out.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("non-NaN distances")
                .then_with(|| a.id.cmp(&b.id))
        });
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::EuclideanQuery;
    use crate::scan::LinearScan;

    fn grid_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .flat_map(|i| (0..n).map(move |j| vec![i as f64, j as f64]))
            .collect()
    }

    #[test]
    fn range_matches_scan() {
        let pts = grid_points(12);
        let tree = HybridTree::bulk_load_with_page_size(&pts, 96);
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(vec![5.5, 5.5]);
        let (tree_hits, _) = tree.range(&q, 9.0);
        let mut scan_hits = scan.range(&q, 9.0);
        scan_hits.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap()
                .then_with(|| a.id.cmp(&b.id))
        });
        assert_eq!(tree_hits.len(), scan_hits.len());
        for (a, b) in tree_hits.iter().zip(scan_hits.iter()) {
            assert_eq!(a.id, b.id);
        }
    }

    #[test]
    fn zero_radius_finds_exact_matches_only() {
        let pts = grid_points(5);
        let tree = HybridTree::bulk_load(&pts);
        let q = EuclideanQuery::new(vec![2.0, 3.0]);
        let (hits, _) = tree.range(&q, 0.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(pts[hits[0].id], vec![2.0, 3.0]);
    }

    #[test]
    fn pruning_skips_distant_subtrees() {
        let pts = grid_points(40);
        let tree = HybridTree::bulk_load_with_page_size(&pts, 256);
        let q = EuclideanQuery::new(vec![0.0, 0.0]);
        let (_, stats) = tree.range(&q, 4.0);
        assert!(
            stats.nodes_accessed < tree.num_nodes() as u64 / 2,
            "accessed {} of {}",
            stats.nodes_accessed,
            tree.num_nodes()
        );
    }

    #[test]
    fn empty_result_for_out_of_reach_radius() {
        let pts = grid_points(4);
        let tree = HybridTree::bulk_load(&pts);
        let q = EuclideanQuery::new(vec![100.0, 100.0]);
        let (hits, _) = tree.range(&q, 1.0);
        assert!(hits.is_empty());
    }
}
