//! Axis-aligned bounding boxes for tree nodes.

/// An axis-aligned hyper-rectangle `[lo, hi]` in feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BoundingBox {
    /// An "empty" box ready to be grown with [`BoundingBox::expand`]:
    /// `lo = +∞`, `hi = −∞` per dimension.
    pub fn empty(dim: usize) -> Self {
        assert!(dim > 0, "bounding box needs at least one dimension");
        BoundingBox {
            lo: vec![f64::INFINITY; dim],
            hi: vec![f64::NEG_INFINITY; dim],
        }
    }

    /// A box from explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ or any `lo > hi`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound lengths differ");
        assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "lo must not exceed hi"
        );
        BoundingBox { lo, hi }
    }

    /// The tight box around a set of points.
    ///
    /// # Panics
    ///
    /// Panics on an empty point set.
    pub fn from_points<'a, I>(points: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut iter = points.into_iter();
        let first = iter.next().expect("at least one point required");
        let mut b = BoundingBox {
            lo: first.to_vec(),
            hi: first.to_vec(),
        };
        for p in iter {
            b.expand(p);
        }
        b
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Grows the box (in place) to cover `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p.len() != dim`.
    pub fn expand(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dim(), "point dimension mismatch");
        for i in 0..p.len() {
            if p[i] < self.lo[i] {
                self.lo[i] = p[i];
            }
            if p[i] > self.hi[i] {
                self.hi[i] = p[i];
            }
        }
    }

    /// `true` when `p` lies inside (inclusive).
    pub fn contains(&self, p: &[f64]) -> bool {
        p.len() == self.dim()
            && p.iter()
                .zip(self.lo.iter().zip(self.hi.iter()))
                .all(|(&x, (&l, &h))| x >= l && x <= h)
    }

    /// The point of the box closest to `p` (the clamp of `p` to the box),
    /// written into `out`.
    ///
    /// This is the workhorse of lower-bounding: for any distance that is
    /// non-decreasing in each coordinate's deviation from a center, the
    /// distance to the clamped point lower-bounds the distance to every
    /// point in the box.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    pub fn clamp_point(&self, p: &[f64], out: &mut [f64]) {
        assert_eq!(p.len(), self.dim(), "point dimension mismatch");
        assert_eq!(out.len(), self.dim(), "output dimension mismatch");
        for i in 0..p.len() {
            out[i] = p[i].clamp(self.lo[i], self.hi[i]);
        }
    }

    /// Index and extent of the widest dimension.
    pub fn widest_dim(&self) -> (usize, f64) {
        let mut best = (0, f64::NEG_INFINITY);
        for i in 0..self.dim() {
            let ext = self.hi[i] - self.lo[i];
            if ext > best.1 {
                best = (i, ext);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_is_tight() {
        let pts: Vec<Vec<f64>> = vec![vec![0.0, 5.0], vec![2.0, -1.0], vec![1.0, 3.0]];
        let b = BoundingBox::from_points(pts.iter().map(|p| p.as_slice()));
        assert_eq!(b.lo(), &[0.0, -1.0]);
        assert_eq!(b.hi(), &[2.0, 5.0]);
    }

    #[test]
    fn expand_grows_monotonically() {
        let mut b = BoundingBox::empty(2);
        b.expand(&[1.0, 1.0]);
        assert_eq!(b.lo(), &[1.0, 1.0]);
        b.expand(&[-1.0, 3.0]);
        assert_eq!(b.lo(), &[-1.0, 1.0]);
        assert_eq!(b.hi(), &[1.0, 3.0]);
    }

    #[test]
    fn contains_boundary_inclusive() {
        let b = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(b.contains(&[0.0, 1.0]));
        assert!(b.contains(&[0.5, 0.5]));
        assert!(!b.contains(&[1.5, 0.5]));
        assert!(!b.contains(&[0.5]));
    }

    #[test]
    fn clamp_inside_is_identity() {
        let b = BoundingBox::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let mut out = [0.0; 2];
        b.clamp_point(&[0.3, 0.7], &mut out);
        assert_eq!(out, [0.3, 0.7]);
        b.clamp_point(&[-5.0, 2.0], &mut out);
        assert_eq!(out, [0.0, 1.0]);
    }

    #[test]
    fn widest_dim_finds_extent() {
        let b = BoundingBox::new(vec![0.0, 0.0, 0.0], vec![1.0, 5.0, 2.0]);
        assert_eq!(b.widest_dim(), (1, 5.0));
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn new_rejects_inverted_bounds() {
        let _ = BoundingBox::new(vec![1.0], vec![0.0]);
    }
}
