//! The pluggable distance abstraction for k-NN search.
//!
//! Every retrieval approach in the paper boils down to a distance function
//! over feature space that a best-first tree search must be able to
//! lower-bound over a bounding box:
//!
//! - MARS QPM: weighted Euclidean (diagonal quadratic form),
//! - MindReader: generalized Euclidean (full quadratic form),
//! - MARS QEX: weighted sum of per-representative quadratic forms,
//! - Qcluster: the disjunctive harmonic aggregate of per-cluster quadratic
//!   forms (Eq. 5),
//! - FALCON: the `α`-norm aggregate over all relevant points.
//!
//! All implement [`QueryDistance`]; the tree search is generic over it.

use crate::bbox::BoundingBox;
use crate::quant::{QuantParams, QuantPlan, QuantSpec};
use qcluster_linalg::vecops::TILE_LANES;

/// A distance function a best-first search can prune with.
///
/// Implementations must satisfy the **lower-bound contract**: for every box
/// `b` and every point `x ∈ b`, `min_distance(b) <= distance(x)`. When the
/// contract holds the tree search is exact.
pub trait QueryDistance {
    /// Dimensionality of the feature space this query lives in.
    fn dim(&self) -> usize;

    /// The distance from the query to `x` (smaller = more similar).
    fn distance(&self, x: &[f64]) -> f64;

    /// Evaluates the distance for every point of a contiguous row-major
    /// block: `out[p] = distance(block[p*dim..(p+1)*dim])`.
    ///
    /// The default implementation loops over [`QueryDistance::distance`];
    /// implementations with a cheaper blocked form (fused passes, shared
    /// scratch, unrolled accumulators) override it. Overrides must return
    /// results identical to the scalar path so blocked and per-point scans
    /// rank candidates the same way.
    ///
    /// # Panics
    ///
    /// Panics when `dim != self.dim()` or `block.len() != out.len() * dim`.
    fn distance_batch(&self, block: &[f64], dim: usize, out: &mut [f64]) {
        assert_eq!(dim, self.dim(), "query dimensionality mismatch");
        assert_eq!(block.len(), out.len() * dim, "block/out length mismatch");
        for (p, o) in out.iter_mut().enumerate() {
            *o = self.distance(&block[p * dim..(p + 1) * dim]);
        }
    }

    /// Evaluates the distance for `out.len()` points stored in the
    /// transposed-tile layout (`ceil(out.len()/8)` tiles of
    /// `dim × 8` column-major values, see
    /// [`qcluster_linalg::vecops::transpose_tile`]): the native layout
    /// of [`crate::TileCorpus`] and segment format v2, consumed with no
    /// transpose at scan time.
    ///
    /// The default un-transposes each tile and delegates to
    /// [`QueryDistance::distance_batch`]; tile-kernel overrides must be
    /// bit-for-bit identical to it.
    ///
    /// # Panics
    ///
    /// Panics when `dim != self.dim()` or
    /// `tiles.len() != ceil(out.len()/8) * dim * 8`.
    fn distance_tiles(&self, tiles: &[f64], dim: usize, out: &mut [f64]) {
        assert_eq!(dim, self.dim(), "query dimensionality mismatch");
        let ntiles = out.len().div_ceil(TILE_LANES);
        assert_eq!(
            tiles.len(),
            ntiles * dim * TILE_LANES,
            "tiles/out length mismatch"
        );
        let mut rows = vec![0.0f64; TILE_LANES * dim];
        for (t, chunk) in out.chunks_mut(TILE_LANES).enumerate() {
            let tile = &tiles[t * dim * TILE_LANES..(t + 1) * dim * TILE_LANES];
            let pn = chunk.len();
            qcluster_linalg::vecops::untranspose_tile(tile, dim, &mut rows[..pn * dim]);
            self.distance_batch(&rows[..pn * dim], dim, chunk);
        }
    }

    /// Compiles this query against a corpus' quantization parameters
    /// into a phase-1 lower-bound evaluator for the two-phase scan.
    ///
    /// The default returns `None` (no sound bound available — e.g. full
    /// covariance forms), which makes [`crate::QuantizedScan`] run the
    /// exact path. Implementations returning `Some` must produce
    /// **sound** plans: phase-1 bounds never exceed the exact computed
    /// distance of any point coded under `params`.
    fn quantized_plan(&self, params: &QuantParams) -> Option<QuantPlan> {
        let _ = params;
        None
    }

    /// A lower bound on `distance(x)` over all `x` in `b`.
    fn min_distance(&self, b: &BoundingBox) -> f64;
}

impl<T: QueryDistance + ?Sized> QueryDistance for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn distance(&self, x: &[f64]) -> f64 {
        (**self).distance(x)
    }
    fn distance_batch(&self, block: &[f64], dim: usize, out: &mut [f64]) {
        (**self).distance_batch(block, dim, out)
    }
    fn distance_tiles(&self, tiles: &[f64], dim: usize, out: &mut [f64]) {
        (**self).distance_tiles(tiles, dim, out)
    }
    fn quantized_plan(&self, params: &QuantParams) -> Option<QuantPlan> {
        (**self).quantized_plan(params)
    }
    fn min_distance(&self, b: &BoundingBox) -> f64 {
        (**self).min_distance(b)
    }
}

impl<T: QueryDistance + ?Sized> QueryDistance for Box<T> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn distance(&self, x: &[f64]) -> f64 {
        (**self).distance(x)
    }
    fn distance_batch(&self, block: &[f64], dim: usize, out: &mut [f64]) {
        (**self).distance_batch(block, dim, out)
    }
    fn distance_tiles(&self, tiles: &[f64], dim: usize, out: &mut [f64]) {
        (**self).distance_tiles(tiles, dim, out)
    }
    fn quantized_plan(&self, params: &QuantParams) -> Option<QuantPlan> {
        (**self).quantized_plan(params)
    }
    fn min_distance(&self, b: &BoundingBox) -> f64 {
        (**self).min_distance(b)
    }
}

/// Copies whole tiles through a tile kernel producing `[f64; 8]` per
/// tile into a truncated `out` (the final tile may be padded).
pub(crate) fn tiles_via_kernel<F: FnMut(&[f64]) -> [f64; TILE_LANES]>(
    tiles: &[f64],
    dim: usize,
    out: &mut [f64],
    mut kernel: F,
) {
    let ntiles = out.len().div_ceil(TILE_LANES);
    assert_eq!(
        tiles.len(),
        ntiles * dim * TILE_LANES,
        "tiles/out length mismatch"
    );
    for (t, chunk) in out.chunks_mut(TILE_LANES).enumerate() {
        let d8 = kernel(&tiles[t * dim * TILE_LANES..(t + 1) * dim * TILE_LANES]);
        chunk.copy_from_slice(&d8[..chunk.len()]);
    }
}

/// Plain squared Euclidean distance to a single query point.
#[derive(Debug, Clone)]
pub struct EuclideanQuery {
    center: Vec<f64>,
}

impl EuclideanQuery {
    /// Creates a query centered at `center`.
    pub fn new(center: Vec<f64>) -> Self {
        assert!(!center.is_empty(), "query center must be non-empty");
        EuclideanQuery { center }
    }

    /// The query point.
    pub fn center(&self) -> &[f64] {
        &self.center
    }
}

impl QueryDistance for EuclideanQuery {
    fn dim(&self) -> usize {
        self.center.len()
    }

    fn distance(&self, x: &[f64]) -> f64 {
        qcluster_linalg::vecops::sq_euclidean(x, &self.center)
    }

    fn distance_batch(&self, block: &[f64], dim: usize, out: &mut [f64]) {
        assert_eq!(dim, self.dim(), "query dimensionality mismatch");
        qcluster_linalg::vecops::sq_euclidean_batch(block, dim, &self.center, out);
    }

    fn distance_tiles(&self, tiles: &[f64], dim: usize, out: &mut [f64]) {
        assert_eq!(dim, self.dim(), "query dimensionality mismatch");
        tiles_via_kernel(tiles, dim, out, |tile| {
            qcluster_linalg::vecops::sq_euclidean_tile(tile, &self.center)
        });
    }

    fn quantized_plan(&self, params: &QuantParams) -> Option<QuantPlan> {
        if params.dim() != self.dim() {
            return None;
        }
        QuantPlan::build(
            params,
            &[QuantSpec {
                weights: None,
                center: &self.center,
                mass: 1.0,
            }],
            1.0,
        )
    }

    fn min_distance(&self, b: &BoundingBox) -> f64 {
        // Distance to the clamped point: exact for monotone coordinate-wise
        // distances.
        let mut acc = 0.0;
        for i in 0..self.center.len() {
            let c = self.center[i].clamp(b.lo()[i], b.hi()[i]);
            let d = self.center[i] - c;
            acc += d * d;
        }
        acc
    }
}

/// Weighted squared Euclidean distance — MARS's re-weighted query
/// (a diagonal quadratic form `Σ w_i (x_i − c_i)²` with `w_i ≥ 0`).
#[derive(Debug, Clone)]
pub struct WeightedEuclideanQuery {
    center: Vec<f64>,
    weights: Vec<f64>,
}

impl WeightedEuclideanQuery {
    /// Creates a weighted query.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ, the center is empty, or any weight is
    /// negative (negative weights break the lower-bound contract).
    pub fn new(center: Vec<f64>, weights: Vec<f64>) -> Self {
        assert!(!center.is_empty(), "query center must be non-empty");
        assert_eq!(center.len(), weights.len(), "weight length mismatch");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        WeightedEuclideanQuery { center, weights }
    }

    /// The query point.
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// Per-dimension weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl QueryDistance for WeightedEuclideanQuery {
    fn dim(&self) -> usize {
        self.center.len()
    }

    fn distance(&self, x: &[f64]) -> f64 {
        qcluster_linalg::vecops::weighted_sq_euclidean(x, &self.center, &self.weights)
    }

    fn distance_batch(&self, block: &[f64], dim: usize, out: &mut [f64]) {
        assert_eq!(dim, self.dim(), "query dimensionality mismatch");
        qcluster_linalg::vecops::weighted_sq_euclidean_batch(
            block,
            dim,
            &self.center,
            &self.weights,
            out,
        );
    }

    fn distance_tiles(&self, tiles: &[f64], dim: usize, out: &mut [f64]) {
        assert_eq!(dim, self.dim(), "query dimensionality mismatch");
        tiles_via_kernel(tiles, dim, out, |tile| {
            qcluster_linalg::vecops::weighted_sq_euclidean_tile(tile, &self.center, &self.weights)
        });
    }

    fn quantized_plan(&self, params: &QuantParams) -> Option<QuantPlan> {
        if params.dim() != self.dim() {
            return None;
        }
        QuantPlan::build(
            params,
            &[QuantSpec {
                weights: Some(&self.weights),
                center: &self.center,
                mass: 1.0,
            }],
            1.0,
        )
    }

    fn min_distance(&self, b: &BoundingBox) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.center.len() {
            let c = self.center[i].clamp(b.lo()[i], b.hi()[i]);
            let d = self.center[i] - c;
            acc += self.weights[i] * d * d;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance_and_bound() {
        let q = EuclideanQuery::new(vec![0.0, 0.0]);
        assert_eq!(q.distance(&[3.0, 4.0]), 25.0);
        let b = BoundingBox::new(vec![1.0, 1.0], vec![2.0, 2.0]);
        assert_eq!(q.min_distance(&b), 2.0);
        // Query inside the box: lower bound is zero.
        let b2 = BoundingBox::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        assert_eq!(q.min_distance(&b2), 0.0);
    }

    #[test]
    fn weighted_distance_and_bound() {
        let q = WeightedEuclideanQuery::new(vec![0.0, 0.0], vec![1.0, 100.0]);
        assert_eq!(q.distance(&[1.0, 1.0]), 101.0);
        let b = BoundingBox::new(vec![0.0, 1.0], vec![1.0, 2.0]);
        assert_eq!(q.min_distance(&b), 100.0);
    }

    #[test]
    fn lower_bound_contract_on_grid() {
        let q = WeightedEuclideanQuery::new(vec![0.3, -0.2], vec![2.0, 0.7]);
        let b = BoundingBox::new(vec![-1.0, 0.0], vec![1.0, 1.0]);
        let lb = q.min_distance(&b);
        for i in 0..=10 {
            for j in 0..=10 {
                let x = [-1.0 + 0.2 * i as f64, 0.1 * j as f64];
                assert!(q.distance(&x) >= lb - 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let _ = WeightedEuclideanQuery::new(vec![0.0], vec![-1.0]);
    }
}
