//! Property tests pinning the two-phase quantized scan to the exact
//! linear scan, **bit-for-bit**.
//!
//! The contract under test: for any corpus and any diagonal-form query,
//! `QuantizedScan::two_phase_knn` returns the same neighbor ids in the
//! same order with the same `f64::to_bits` distances as
//! `LinearScan::knn`. Phase 1 may only ever *shrink* the rerank set —
//! never change the answer — and when the certified window is too small
//! the scan must fall back to an exact pass rather than return an
//! approximate top-k.
//!
//! Three corpus shapes stress the bound where it is weakest:
//!
//! - generic random corpora (arbitrary dims, magnitudes up to 1e9);
//! - duplicate-heavy corpora (many exact ties at the same distance, so
//!   the `(distance, id)` tiebreak ordering is load-bearing);
//! - zero-range dimensions (constant columns quantize with `delta = 0`,
//!   exercising the inflation floor of the error bound).
//!
//! CI runs these with `PROPTEST_CASES=256` in the `quantize-equivalence`
//! job; the default is lighter for local `cargo test`.

use proptest::prelude::*;
use qcluster_index::{
    default_rerank_window, EuclideanQuery, LinearScan, QuantizedScan, WeightedEuclideanQuery,
};

/// Asserts the quantized scan answers `query` identically to the exact
/// scan for every `k` in `ks`, at both the default and an oversized
/// rerank window.
fn assert_equivalent<Q: qcluster_index::QueryDistance>(
    points: &[Vec<f64>],
    query: &Q,
    ks: &[usize],
) -> Result<(), TestCaseError> {
    let exact = LinearScan::new(points);
    let quant = QuantizedScan::from_rows(points);
    for &k in ks {
        let want = exact.knn(query, k);
        for window in [None, Some(default_rerank_window(k)), Some(points.len() * 2)] {
            let (got, stats) = quant.two_phase_knn(query, k, window);
            prop_assert_eq!(got.len(), want.len(), "k={} window={:?}", k, window);
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert_eq!(g.id, w.id, "k={} window={:?}", k, window);
                prop_assert_eq!(
                    g.distance.to_bits(),
                    w.distance.to_bits(),
                    "k={} window={:?}",
                    k,
                    window
                );
            }
            // A fallback rescan is allowed (it is how correctness is
            // certified when the window is too tight), but a plan miss
            // is not: these queries are all diagonal-form.
            prop_assert_eq!(stats.plan_misses, 0);
        }
    }
    Ok(())
}

/// Vectors sharing one dimensionality.
fn uniform_points(max_dim: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1..max_dim + 1).prop_flat_map(move |dim| {
        prop::collection::vec(prop::collection::vec(-1.0e9..1.0e9f64, dim), 1..max_n)
    })
}

/// A corpus drawn from a tiny palette of distinct vectors, so most
/// points are exact duplicates and the top-k is decided by id ties.
fn duplicate_heavy_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..5)
        .prop_flat_map(|dim| {
            (
                prop::collection::vec(prop::collection::vec(-100.0..100.0f64, dim), 1..4),
                prop::collection::vec(0usize..4, 8..120),
            )
        })
        .prop_map(|(palette, picks)| {
            picks
                .into_iter()
                .map(|i| palette[i % palette.len()].clone())
                .collect()
        })
}

/// A corpus where a prefix of dimensions is constant (zero quantization
/// range) and the rest vary.
fn zero_range_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..4, 1usize..4)
        .prop_flat_map(|(flat_dims, live_dims)| {
            (
                prop::collection::vec(-1.0e6..1.0e6f64, flat_dims),
                prop::collection::vec(prop::collection::vec(-1.0e6..1.0e6f64, live_dims), 1..150),
            )
        })
        .prop_map(|(constants, live)| {
            live.into_iter()
                .map(|row| {
                    let mut v = constants.clone();
                    v.extend(row);
                    v
                })
                .collect()
        })
}

fn query_center(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e9..1.0e9f64, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Random corpora, plain Euclidean queries: two-phase equals exact
    /// bit-for-bit at every k and window.
    #[test]
    fn two_phase_matches_exact_on_random_corpora(
        points in uniform_points(8, 300),
        seed in any::<u64>(),
    ) {
        let dim = points[0].len();
        let center: Vec<f64> = (0..dim)
            .map(|j| {
                // Derive a deterministic in-range query from the seed.
                let h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(j as u32 * 7);
                ((h % 2_000_001) as f64 - 1_000_000.0) * 1.0e3
            })
            .collect();
        let query = EuclideanQuery::new(center);
        assert_equivalent(&points, &query, &[1, 3, 17])?;
    }

    /// Weighted queries (including zero weights, which collapse whole
    /// dimensions out of the distance) stay exact.
    #[test]
    fn two_phase_matches_exact_for_weighted_queries(
        points in uniform_points(6, 200),
        raw_weights in prop::collection::vec(0.0..10.0f64, 6),
        raw_center in query_center(6),
    ) {
        let dim = points[0].len();
        let query = WeightedEuclideanQuery::new(
            raw_center[..dim].to_vec(),
            raw_weights[..dim].to_vec(),
        );
        assert_equivalent(&points, &query, &[1, 8])?;
    }

    /// Duplicate-heavy corpora: massive distance ties force the
    /// `(distance, id)` ordering through both phases unchanged.
    #[test]
    fn two_phase_preserves_tie_order_on_duplicates(
        points in duplicate_heavy_points(),
        raw_center in query_center(4),
    ) {
        let dim = points[0].len();
        let query = EuclideanQuery::new(raw_center[..dim].to_vec());
        let n = points.len();
        assert_equivalent(&points, &query, &[1, 5, n])?;
    }

    /// Constant dimensions quantize with zero delta; the error bound's
    /// inflation floor must still certify exact results.
    #[test]
    fn two_phase_survives_zero_range_dimensions(
        points in zero_range_points(),
        raw_center in query_center(6),
    ) {
        let dim = points[0].len();
        let query = EuclideanQuery::new(raw_center[..dim].to_vec());
        assert_equivalent(&points, &query, &[1, 4, 23])?;
    }
}
