//! Property tests: the tree search must agree exactly with linear scan
//! for every distance satisfying the lower-bound contract.

use proptest::prelude::*;
use qcluster_index::{EuclideanQuery, HybridTree, LinearScan, NodeCache, WeightedEuclideanQuery};

fn points(dim: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0..100.0f64, dim), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_knn_equals_scan_euclidean(
        pts in points(3, 1..200),
        q in prop::collection::vec(-100.0..100.0f64, 3),
        k in 1usize..20,
    ) {
        let tree = HybridTree::bulk_load_with_page_size(&pts, 128);
        let scan = LinearScan::new(&pts);
        let query = EuclideanQuery::new(q);
        let (a, _) = tree.knn(&query, k, None);
        let b = scan.knn(&query, k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x.distance - y.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn tree_knn_equals_scan_weighted(
        pts in points(4, 1..150),
        q in prop::collection::vec(-50.0..50.0f64, 4),
        w in prop::collection::vec(0.0..10.0f64, 4),
        k in 1usize..10,
    ) {
        let tree = HybridTree::bulk_load_with_page_size(&pts, 96);
        let scan = LinearScan::new(&pts);
        let query = WeightedEuclideanQuery::new(q, w);
        let (a, _) = tree.knn(&query, k, None);
        let b = scan.knn(&query, k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x.distance - y.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn cached_search_returns_identical_results(
        pts in points(3, 10..150),
        q in prop::collection::vec(-50.0..50.0f64, 3),
        k in 1usize..10,
    ) {
        let tree = HybridTree::bulk_load_with_page_size(&pts, 96);
        let query = EuclideanQuery::new(q);
        let (plain, _) = tree.knn(&query, k, None);
        let mut cache = NodeCache::new(tree.num_nodes());
        let (warm1, s1) = tree.knn(&query, k, Some(&mut cache));
        let (warm2, s2) = tree.knn(&query, k, Some(&mut cache));
        // The cache changes accounting, never results.
        prop_assert_eq!(&plain, &warm1);
        prop_assert_eq!(&plain, &warm2);
        prop_assert_eq!(s1.cache_hits, 0);
        prop_assert_eq!(s2.cache_hits, s2.nodes_accessed);
        prop_assert_eq!(s2.disk_reads, 0);
    }

    #[test]
    fn stats_are_consistent(
        pts in points(2, 5..100),
        q in prop::collection::vec(-50.0..50.0f64, 2),
    ) {
        let tree = HybridTree::bulk_load_with_page_size(&pts, 64);
        let query = EuclideanQuery::new(q);
        let (_, s) = tree.knn(&query, 5, None);
        prop_assert!(s.nodes_accessed >= 1);
        prop_assert_eq!(s.disk_reads, s.nodes_accessed - s.cache_hits);
        prop_assert!(s.distance_evaluations <= pts.len() as u64);
    }
}
