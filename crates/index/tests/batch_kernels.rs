//! Property tests for the blocked batch distance kernels: for every
//! query type, [`QueryDistance::distance_batch`] must reproduce the
//! scalar `distance` **bit-for-bit** at every block size (the batch
//! kernels unroll across points, never across dimensions, so each
//! point's accumulation order is unchanged), and the blocked
//! heap-selection [`LinearScan::knn`] must return exactly what the old
//! full `(distance, id)` sort returned — including tie-breaks.

use proptest::prelude::*;
use qcluster_index::{EuclideanQuery, LinearScan, Neighbor, QueryDistance, WeightedEuclideanQuery};

fn points(dim: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0..100.0f64, dim), n)
}

/// Points on a small integer grid: duplicate points — and therefore
/// exact distance ties — are common, exercising the id tie-break.
fn grid_points(dim: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec((-2i32..3i32).prop_map(f64::from), dim),
        n,
    )
}

fn flatten(pts: &[Vec<f64>]) -> Vec<f64> {
    pts.iter().flatten().copied().collect()
}

/// Evaluates `query` over the corpus in blocks of `block_size` via
/// `distance_batch`, returning one distance per point.
fn batch_in_blocks<Q: QueryDistance>(
    query: &Q,
    flat: &[f64],
    dim: usize,
    n: usize,
    block_size: usize,
) -> Vec<f64> {
    let mut out = vec![0.0; n];
    let mut start = 0;
    while start < n {
        let count = block_size.min(n - start);
        query.distance_batch(
            &flat[start * dim..(start + count) * dim],
            dim,
            &mut out[start..start + count],
        );
        start += count;
    }
    out
}

/// The pre-blocking reference: every `(distance, id)` pair, fully
/// sorted, truncated to `k`.
fn full_sort_knn<Q: QueryDistance>(query: &Q, pts: &[Vec<f64>], k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = pts
        .iter()
        .enumerate()
        .map(|(id, p)| Neighbor {
            id,
            distance: query.distance(p),
        })
        .collect();
    all.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("non-NaN distances")
            .then_with(|| a.id.cmp(&b.id))
    });
    all.truncate(k);
    all
}

fn block_sizes(n: usize) -> [usize; 4] {
    [1, 7, 256, n]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn euclidean_batch_matches_scalar_bitwise(
        pts in points(5, 1..300),
        c in prop::collection::vec(-100.0..100.0f64, 5),
    ) {
        let q = EuclideanQuery::new(c);
        let flat = flatten(&pts);
        for bs in block_sizes(pts.len()) {
            let got = batch_in_blocks(&q, &flat, 5, pts.len(), bs);
            for (p, &d) in got.iter().enumerate() {
                prop_assert_eq!(d, q.distance(&pts[p]), "block_size={} p={}", bs, p);
            }
        }
    }

    #[test]
    fn weighted_batch_matches_scalar_bitwise(
        pts in points(4, 1..300),
        c in prop::collection::vec(-50.0..50.0f64, 4),
        w in prop::collection::vec(0.0..10.0f64, 4),
    ) {
        let q = WeightedEuclideanQuery::new(c, w);
        let flat = flatten(&pts);
        for bs in block_sizes(pts.len()) {
            let got = batch_in_blocks(&q, &flat, 4, pts.len(), bs);
            for (p, &d) in got.iter().enumerate() {
                prop_assert_eq!(d, q.distance(&pts[p]), "block_size={} p={}", bs, p);
            }
        }
    }

    #[test]
    fn default_trait_batch_matches_scalar(
        pts in points(3, 1..100),
        c in prop::collection::vec(-50.0..50.0f64, 3),
    ) {
        // A query type without a native batch kernel exercises the
        // trait's default per-point loop.
        #[derive(Clone)]
        struct Manhattan(Vec<f64>);
        impl QueryDistance for Manhattan {
            fn dim(&self) -> usize {
                self.0.len()
            }
            fn distance(&self, x: &[f64]) -> f64 {
                x.iter().zip(&self.0).map(|(a, b)| (a - b).abs()).sum()
            }
            fn min_distance(&self, _b: &qcluster_index::BoundingBox) -> f64 {
                0.0
            }
        }
        let q = Manhattan(c);
        let flat = flatten(&pts);
        for bs in block_sizes(pts.len()) {
            let got = batch_in_blocks(&q, &flat, 3, pts.len(), bs);
            for (p, &d) in got.iter().enumerate() {
                prop_assert_eq!(d, q.distance(&pts[p]));
            }
        }
    }

    #[test]
    fn blocked_heap_knn_equals_full_sort(
        pts in points(3, 1..400),
        c in prop::collection::vec(-100.0..100.0f64, 3),
        k in 1usize..30,
    ) {
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(c);
        let got = scan.knn(&q, k);
        let want = full_sort_knn(&q, &pts, k);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn blocked_heap_knn_breaks_ties_by_id(
        pts in grid_points(2, 1..300),
        c in prop::collection::vec((-2i32..3i32).prop_map(f64::from), 2),
        k in 1usize..40,
    ) {
        // Grid data guarantees duplicate points and exact distance
        // ties; the heap path must pick the same ids as the full sort.
        let scan = LinearScan::new(&pts);
        let q = EuclideanQuery::new(c);
        let got = scan.knn(&q, k);
        let want = full_sort_knn(&q, &pts, k);
        prop_assert_eq!(got, want);
    }
}
