//! Property-based tests for the imaging substrate.

use proptest::prelude::*;
use qcluster_imaging::glcm::{Glcm, GLCM_LEVELS, TEXTURE_DIM};
use qcluster_imaging::moments::{color_moments, COLOR_MOMENT_DIM};
use qcluster_imaging::{hsv_to_rgb, rgb_to_gray, rgb_to_hsv, ImageRgb};

fn arb_pixel() -> impl Strategy<Value = [u8; 3]> {
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b)| [r, g, b])
}

fn arb_image(side: std::ops::Range<usize>) -> impl Strategy<Value = ImageRgb> {
    side.prop_flat_map(|s| {
        prop::collection::vec(arb_pixel(), s * s)
            .prop_map(move |px| ImageRgb::from_pixels(s, s, px))
    })
}

proptest! {
    #[test]
    fn hsv_roundtrip_within_quantization(px in arb_pixel()) {
        let back = hsv_to_rgb(rgb_to_hsv(px));
        for i in 0..3 {
            prop_assert!(
                (back[i] as i32 - px[i] as i32).abs() <= 1,
                "{px:?} -> {back:?}"
            );
        }
    }

    #[test]
    fn hsv_ranges_are_canonical(px in arb_pixel()) {
        let [h, s, v] = rgb_to_hsv(px);
        prop_assert!((0.0..1.0).contains(&h) || h == 0.0);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn gray_is_bounded_by_channel_extremes(px in arb_pixel()) {
        let g = rgb_to_gray(px);
        let min = *px.iter().min().unwrap();
        let max = *px.iter().max().unwrap();
        prop_assert!(g >= min.saturating_sub(1) && g <= max.saturating_add(1));
    }

    #[test]
    fn color_moments_are_finite_and_shaped(img in arb_image(2..12)) {
        let f = color_moments(&img);
        prop_assert_eq!(f.len(), COLOR_MOMENT_DIM);
        prop_assert!(f.iter().all(|x| x.is_finite()));
        // Means and sigmas of unit-range channels stay in range.
        for ch in 0..3 {
            prop_assert!((0.0..=1.0).contains(&f[ch * 3]), "mean out of range");
            prop_assert!((0.0..=0.5 + 1e-9).contains(&f[ch * 3 + 1]), "sigma out of range");
        }
    }

    #[test]
    fn color_moments_are_permutation_invariant(img in arb_image(3..8)) {
        // Moments are pixel statistics: shuffling pixel positions must not
        // change them.
        let mut pixels: Vec<[u8; 3]> = img.pixels().to_vec();
        pixels.reverse();
        let shuffled = ImageRgb::from_pixels(img.width(), img.height(), pixels);
        let a = color_moments(&img);
        let b = color_moments(&shuffled);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn glcm_is_a_symmetric_probability_matrix(img in arb_image(2..12)) {
        let g = Glcm::from_image(&img);
        let mut total = 0.0;
        for i in 0..GLCM_LEVELS {
            for j in 0..GLCM_LEVELS {
                let p = g.get(i, j);
                prop_assert!(p >= 0.0);
                prop_assert!((g.get(j, i) - p).abs() < 1e-15);
                total += p;
            }
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn texture_features_are_finite_and_bounded(img in arb_image(2..12)) {
        let f = Glcm::from_image(&img).features();
        prop_assert_eq!(f.len(), TEXTURE_DIM);
        prop_assert!(f.iter().all(|x| x.is_finite()));
        // energy ∈ (0, 1], entropy ≥ 0, homogeneity ∈ (0, 1], max prob ∈ (0, 1].
        prop_assert!(f[0] > 0.0 && f[0] <= 1.0 + 1e-12);
        prop_assert!(f[2] >= -1e-12);
        prop_assert!(f[3] > 0.0 && f[3] <= 1.0 + 1e-12);
        prop_assert!(f[12] > 0.0 && f[12] <= 1.0 + 1e-12);
        // correlation ∈ [−1, 1].
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&f[4]));
    }

    #[test]
    fn energy_lower_bounds_max_prob_squared(img in arb_image(2..10)) {
        // energy = Σp² ≥ (max p)² and ≤ max p (since Σp = 1).
        let f = Glcm::from_image(&img).features();
        let (energy, max_p) = (f[0], f[12]);
        prop_assert!(energy >= max_p * max_p - 1e-12);
        prop_assert!(energy <= max_p + 1e-12);
    }
}
