//! Procedural synthetic image corpus.
//!
//! Substitutes the paper's proprietary Corel & Mantan collection (30,000
//! images, ~300 categories of ~100 images, hand-labelled by domain
//! professionals). See DESIGN.md §4 for the substitution argument. The key
//! preserved properties:
//!
//! - **Ground-truth partition**: every image belongs to exactly one
//!   category; categories group into super-categories (the paper's
//!   "related categories such as flowers and plants").
//! - **Within-category coherence, between-category separation**: a category
//!   owns a palette (2 anchor HSV colors) and texture parameters; images
//!   jitter around them.
//! - **Multimodality**: a configurable fraction of categories has *two*
//!   disjoint palettes (the paper's Example 1: bird images on light-green
//!   vs. dark-blue backgrounds). Relevant images of such categories land in
//!   disjoint feature-space clusters — the case that motivates disjunctive
//!   queries.
//!
//! Rendering is fully deterministic given the corpus seed.

use crate::color::hsv_to_rgb;
use crate::image::ImageRgb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The spatial texture painted over a category's palette.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TexturePattern {
    /// Sinusoidal stripes with the given spatial frequency (cycles per
    /// image) and orientation in radians.
    Stripes {
        /// Cycles across the image diagonal.
        frequency: f64,
        /// Stripe orientation in radians.
        angle: f64,
    },
    /// Smooth blobs: product of two sinusoids, `frequency` bumps per axis.
    Blobs {
        /// Bumps per axis.
        frequency: f64,
    },
    /// Hard-edged checkerboard with `cells` squares per axis.
    Checker {
        /// Squares per axis.
        cells: usize,
    },
    /// A smooth diagonal gradient (low-frequency texture).
    Gradient,
}

/// One color mode of a category: two anchor HSV colors the texture
/// interpolates between.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaletteMode {
    /// Anchor color at texture value 0 (H, S, V in `[0,1]`).
    pub low: [f64; 3],
    /// Anchor color at texture value 1.
    pub high: [f64; 3],
}

/// Full generative specification of one image category.
#[derive(Debug, Clone)]
pub struct CategorySpec {
    /// Category identifier (index into the corpus).
    pub id: usize,
    /// Super-category identifier; categories sharing it are "related"
    /// (score 1 in the relevance oracle instead of 3).
    pub super_category: usize,
    /// One or two palette modes. Two modes make the category multimodal in
    /// feature space.
    pub modes: Vec<PaletteMode>,
    /// The texture painted over the palette.
    pub pattern: TexturePattern,
    /// Standard deviation of per-pixel value noise.
    pub noise: f64,
}

/// A fully-specified synthetic corpus: category specs plus sizing.
#[derive(Debug, Clone)]
pub struct Corpus {
    specs: Vec<CategorySpec>,
    images_per_category: usize,
    image_size: usize,
    jitter: f64,
    seed: u64,
}

/// Builder for [`Corpus`] — defaults mirror the paper's collection shape
/// scaled down (the benches scale it back up).
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    categories: usize,
    images_per_category: usize,
    image_size: usize,
    categories_per_super: usize,
    multimodal_fraction: f64,
    jitter: f64,
    seed: u64,
}

impl Default for CorpusBuilder {
    fn default() -> Self {
        CorpusBuilder {
            categories: 30,
            images_per_category: 20,
            image_size: 32,
            categories_per_super: 5,
            multimodal_fraction: 0.3,
            jitter: 1.0,
            seed: 0xC0FFEE,
        }
    }
}

impl CorpusBuilder {
    /// Starts from the defaults (30 categories × 20 images of 32×32).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of categories (paper: ~300).
    pub fn categories(mut self, n: usize) -> Self {
        self.categories = n;
        self
    }

    /// Images per category (paper: ~100).
    pub fn images_per_category(mut self, n: usize) -> Self {
        self.images_per_category = n;
        self
    }

    /// Square image side length in pixels.
    pub fn image_size(mut self, n: usize) -> Self {
        self.image_size = n;
        self
    }

    /// How many categories share one super-category.
    pub fn categories_per_super(mut self, n: usize) -> Self {
        self.categories_per_super = n.max(1);
        self
    }

    /// Fraction of categories given two disjoint palettes (Example 1's
    /// "birds on light-green vs dark-blue" situation).
    pub fn multimodal_fraction(mut self, f: f64) -> Self {
        self.multimodal_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Per-image appearance jitter scale (1.0 = default). Real photo
    /// collections have large within-category variation relative to
    /// between-category separation; raising the jitter reproduces the
    /// noisy-feature regime of the paper's Corel data, where an initial
    /// k-NN result is diverse enough to surface several modes of a
    /// category.
    pub fn jitter(mut self, j: f64) -> Self {
        assert!(j >= 0.0, "jitter must be non-negative");
        self.jitter = j;
        self
    }

    /// RNG seed; the corpus is fully deterministic given it.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Generates the category specifications.
    ///
    /// # Panics
    ///
    /// Panics when any sizing parameter is zero.
    pub fn build(self) -> Corpus {
        assert!(self.categories > 0, "need at least one category");
        assert!(self.images_per_category > 0, "need at least one image");
        assert!(self.image_size >= 4, "images must be at least 4x4");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut specs = Vec::with_capacity(self.categories);
        for id in 0..self.categories {
            let super_category = id / self.categories_per_super;
            // Super-categories share a hue neighbourhood so that "related"
            // categories are genuinely closer in color space.
            let super_hue = hash_unit(self.seed, super_category as u64);
            let base_hue = (super_hue + 0.12 * rng.gen::<f64>()).rem_euclid(1.0);

            let multimodal = rng.gen::<f64>() < self.multimodal_fraction;
            let first_mode = random_mode(&mut rng, base_hue);
            let mut modes = vec![first_mode];
            if multimodal {
                // Second mode: the paper's Example 1 ("bird images with a
                // light-green background and ones with a dark-blue
                // background") — the *object* (the `low` palette anchor)
                // is shared between the modes, while the *background*
                // (the `high` anchor) flips to a far-away hue. The shared
                // object component keeps the two modes at moderate
                // distance in feature space, so an initial query centered
                // on one mode surfaces a few images of the other — the
                // regime where a single moved/averaged query point fails
                // and a disjunctive multipoint query wins.
                let alt_hue = (first_mode.high[0] + 0.05 + 0.03 * rng.gen::<f64>()).rem_euclid(1.0);
                modes.push(PaletteMode {
                    low: first_mode.low,
                    high: [alt_hue, first_mode.high[1], first_mode.high[2]],
                });
            }
            let pattern = match rng.gen_range(0..4) {
                0 => TexturePattern::Stripes {
                    frequency: rng.gen_range(2.0..10.0),
                    angle: rng.gen_range(0.0..std::f64::consts::PI),
                },
                1 => TexturePattern::Blobs {
                    frequency: rng.gen_range(1.5..6.0),
                },
                2 => TexturePattern::Checker {
                    cells: rng.gen_range(2..8),
                },
                _ => TexturePattern::Gradient,
            };
            specs.push(CategorySpec {
                id,
                super_category,
                modes,
                pattern,
                noise: rng.gen_range(0.01..0.06),
            });
        }
        Corpus {
            specs,
            images_per_category: self.images_per_category,
            image_size: self.image_size,
            jitter: self.jitter,
            seed: self.seed,
        }
    }
}

fn random_mode(rng: &mut StdRng, hue: f64) -> PaletteMode {
    let sat = rng.gen_range(0.45..0.95);
    let val = rng.gen_range(0.35..0.9);
    // The high anchor shifts hue slightly and contrast in value.
    let hue2 = (hue + rng.gen_range(0.02..0.08)) % 1.0;
    let val2 = f64::min(val + rng.gen_range(0.25..0.45), 1.0);
    PaletteMode {
        low: [hue, sat, val * 0.6],
        high: [hue2, (sat * 0.8).min(1.0), val2],
    }
}

/// Cheap deterministic hash to a unit float (splitmix64 finalizer).
fn hash_unit(seed: u64, x: u64) -> f64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl Corpus {
    /// Number of categories.
    pub fn num_categories(&self) -> usize {
        self.specs.len()
    }

    /// Images per category.
    pub fn images_per_category(&self) -> usize {
        self.images_per_category
    }

    /// Total number of images.
    pub fn len(&self) -> usize {
        self.specs.len() * self.images_per_category
    }

    /// `true` when the corpus holds no images (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Side length of each square image.
    pub fn image_size(&self) -> usize {
        self.image_size
    }

    /// The category specification for `category`.
    ///
    /// # Panics
    ///
    /// Panics when `category` is out of range.
    pub fn spec(&self, category: usize) -> &CategorySpec {
        &self.specs[category]
    }

    /// All category specifications.
    pub fn specs(&self) -> &[CategorySpec] {
        &self.specs
    }

    /// Category of the image with global index `image_id`
    /// (images are numbered category-major).
    pub fn category_of(&self, image_id: usize) -> usize {
        assert!(image_id < self.len(), "image id out of range");
        image_id / self.images_per_category
    }

    /// Super-category of the image with global index `image_id`.
    pub fn super_category_of(&self, image_id: usize) -> usize {
        self.specs[self.category_of(image_id)].super_category
    }

    /// Which palette mode the `index`-th image of `category` was rendered
    /// with (always 0 for unimodal categories). Deterministic — replays
    /// the render's mode draw.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn mode_of(&self, category: usize, index: usize) -> usize {
        assert!(category < self.specs.len(), "category out of range");
        assert!(index < self.images_per_category, "image index out of range");
        let spec = &self.specs[category];
        let mut rng = StdRng::seed_from_u64(self.seed ^ ((category as u64) << 32) ^ index as u64);
        rng.gen_range(0..spec.modes.len())
    }

    /// Renders the `index`-th image of `category` deterministically.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn render(&self, category: usize, index: usize) -> ImageRgb {
        assert!(category < self.specs.len(), "category out of range");
        assert!(index < self.images_per_category, "image index out of range");
        let spec = &self.specs[category];
        let mut rng = StdRng::seed_from_u64(self.seed ^ ((category as u64) << 32) ^ index as u64);
        // Mode choice: multimodal categories alternate between palettes.
        let mode = spec.modes[rng.gen_range(0..spec.modes.len())];
        // Per-image jitter, scaled by the corpus jitter parameter.
        let j = self.jitter;
        let hue_jit = rng.gen_range(-0.03..0.03) * j;
        let sat_jit = rng.gen_range(-0.1..0.1) * j;
        let val_jit = rng.gen_range(-0.1..0.1) * j;
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let freq_jit = 1.0 + rng.gen_range(-0.1..0.1) * j;

        let n = self.image_size;
        let mut img = ImageRgb::new(n, n);
        for y in 0..n {
            for x in 0..n {
                let u = x as f64 / n as f64;
                let v = y as f64 / n as f64;
                let t = pattern_value(spec.pattern, u, v, phase, freq_jit)
                    + rng.gen_range(-1.0..1.0) * spec.noise;
                let t = t.clamp(0.0, 1.0);
                let h = lerp(mode.low[0], mode.high[0], t) + hue_jit;
                let s = (lerp(mode.low[1], mode.high[1], t) + sat_jit).clamp(0.0, 1.0);
                let val = (lerp(mode.low[2], mode.high[2], t) + val_jit).clamp(0.0, 1.0);
                img.set(x, y, hsv_to_rgb([h.rem_euclid(1.0), s, val]));
            }
        }
        img
    }

    /// Renders the image with global index `image_id`.
    pub fn render_by_id(&self, image_id: usize) -> ImageRgb {
        let c = self.category_of(image_id);
        self.render(c, image_id % self.images_per_category)
    }
}

fn pattern_value(pattern: TexturePattern, u: f64, v: f64, phase: f64, freq_jit: f64) -> f64 {
    use std::f64::consts::TAU;
    match pattern {
        TexturePattern::Stripes { frequency, angle } => {
            let proj = u * angle.cos() + v * angle.sin();
            0.5 + 0.5 * (TAU * frequency * freq_jit * proj + phase).sin()
        }
        TexturePattern::Blobs { frequency } => {
            let a = (TAU * frequency * freq_jit * u + phase).sin();
            let b = (TAU * frequency * freq_jit * v + phase * 0.5).sin();
            0.5 + 0.5 * a * b
        }
        TexturePattern::Checker { cells } => {
            let cu = (u * cells as f64) as usize;
            let cv = (v * cells as f64) as usize;
            if (cu + cv).is_multiple_of(2) {
                0.15
            } else {
                0.85
            }
        }
        TexturePattern::Gradient => ((u + v) * 0.5 + 0.1 * (phase.sin())).clamp(0.0, 1.0),
    }
}

#[inline]
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::color_moments;

    fn small_corpus() -> Corpus {
        CorpusBuilder::new()
            .categories(6)
            .images_per_category(4)
            .image_size(16)
            .categories_per_super(3)
            .seed(42)
            .build()
    }

    #[test]
    fn corpus_shape() {
        let c = small_corpus();
        assert_eq!(c.num_categories(), 6);
        assert_eq!(c.len(), 24);
        assert_eq!(c.category_of(0), 0);
        assert_eq!(c.category_of(4), 1);
        assert_eq!(c.category_of(23), 5);
    }

    #[test]
    fn super_categories_group_consecutive() {
        let c = small_corpus();
        assert_eq!(c.spec(0).super_category, c.spec(2).super_category);
        assert_ne!(c.spec(0).super_category, c.spec(3).super_category);
        assert_eq!(c.super_category_of(0), c.super_category_of(11));
    }

    #[test]
    fn rendering_is_deterministic() {
        let c = small_corpus();
        let a = c.render(2, 1);
        let b = c.render(2, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_images_differ() {
        let c = small_corpus();
        assert_ne!(c.render(2, 0), c.render(2, 1));
        assert_ne!(c.render(0, 0), c.render(1, 0));
    }

    #[test]
    fn render_by_id_matches_render() {
        let c = small_corpus();
        assert_eq!(c.render_by_id(9), c.render(2, 1));
    }

    #[test]
    fn within_category_features_are_closer_than_between() {
        // Weak sanity check on the corpus design: average within-category
        // color-moment distance should be below average between-category
        // distance (computed on unimodal categories only).
        let c = CorpusBuilder::new()
            .categories(8)
            .images_per_category(6)
            .image_size(24)
            .multimodal_fraction(0.0)
            .seed(7)
            .build();
        let feats: Vec<Vec<Vec<f64>>> = (0..8)
            .map(|cat| (0..6).map(|i| color_moments(&c.render(cat, i))).collect())
            .collect();
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
        };
        let mut within = 0.0;
        let mut wn = 0;
        let mut between = 0.0;
        let mut bn = 0;
        for c1 in 0..8 {
            for i in 0..6 {
                for c2 in 0..8 {
                    for j in 0..6 {
                        if (c1, i) >= (c2, j) {
                            continue;
                        }
                        let d = dist(&feats[c1][i], &feats[c2][j]);
                        if c1 == c2 {
                            within += d;
                            wn += 1;
                        } else {
                            between += d;
                            bn += 1;
                        }
                    }
                }
            }
        }
        let within = within / wn as f64;
        let between = between / bn as f64;
        assert!(
            within < between,
            "within {within} should be below between {between}"
        );
    }

    #[test]
    fn multimodal_categories_have_two_modes() {
        let c = CorpusBuilder::new()
            .categories(20)
            .multimodal_fraction(1.0)
            .seed(3)
            .build();
        assert!(c.specs().iter().all(|s| s.modes.len() == 2));
        let c = CorpusBuilder::new()
            .categories(20)
            .multimodal_fraction(0.0)
            .seed(3)
            .build();
        assert!(c.specs().iter().all(|s| s.modes.len() == 1));
    }

    #[test]
    #[should_panic(expected = "category out of range")]
    fn render_rejects_bad_category() {
        let _ = small_corpus().render(99, 0);
    }
}
