//! Image substrate and feature extraction for the Qcluster reproduction.
//!
//! The paper evaluates on the Corel & Mantan collection: 30,000 color
//! images hand-classified into ~300 categories of ~100 images each. That
//! collection is proprietary, so this crate substitutes a **procedural
//! synthetic corpus** ([`corpus`]) that preserves the properties the
//! experiments rely on:
//!
//! - a known ground-truth partition into categories and super-categories,
//! - per-category visual coherence (palette + texture parameters) with
//!   per-image jitter,
//! - deliberately **multimodal** categories — e.g. the paper's Example 1
//!   "bird images on a light-green vs. dark-blue background" — which map to
//!   disjoint clusters in feature space and are exactly the queries that
//!   need Qcluster's disjunctive handling.
//!
//! The feature pipeline is the paper's (Sec. 5):
//!
//! - **Color moments** ([`moments`]): mean, standard deviation, and
//!   skewness of each HSV channel (9 dims), PCA-reduced to 3.
//! - **Co-occurrence texture** ([`glcm`]): a gray-level co-occurrence
//!   matrix summarized by 16 Haralick-style statistics (energy, inertia,
//!   entropy, homogeneity, …), PCA-reduced to 4.

#![warn(missing_docs)]
// Indexed loops over multiple parallel buffers are the clearest (and often
// fastest) form for the dense numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]

pub mod color;
pub mod corpus;
pub mod features;
pub mod glcm;
pub mod histogram;
pub mod image;
pub mod layout;
pub mod moments;

pub use color::{hsv_to_rgb, rgb_to_gray, rgb_to_hsv};
pub use corpus::{CategorySpec, Corpus, CorpusBuilder, TexturePattern};
pub use features::{raw_features, FeatureKind, FeaturePipeline, FeatureSet};
pub use image::ImageRgb;
