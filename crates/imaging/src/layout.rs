//! Spatial color layout: per-cell color moments on a grid.
//!
//! Global color moments discard *where* color sits; QBIC-family systems
//! therefore also index a coarse spatial layout. This feature divides the
//! image into a [`GRID`]×[`GRID`] grid and extracts the HSV mean and
//! standard deviation per cell (skewness is too noisy on small cells),
//! giving `GRID² × 6` raw dimensions that the pipeline PCA-reduces. It
//! distinguishes e.g. "dark object on light ground" from its inverse —
//! identical global histograms, different layouts.

use crate::color::rgb_to_hsv;
use crate::image::ImageRgb;
use qcluster_stats::descriptive::{mean, population_std};

/// Grid side length.
pub const GRID: usize = 2;

/// Moments per cell (mean + σ for H, S, V).
pub const CELL_DIM: usize = 6;

/// Total layout feature dimensionality.
pub const LAYOUT_DIM: usize = GRID * GRID * CELL_DIM;

/// Extracts the spatial color-layout vector.
///
/// Cells partition the image as evenly as integer division allows; every
/// pixel belongs to exactly one cell. Degenerate (empty) cells cannot
/// occur because images are at least 1×1 per cell boundary construction —
/// images smaller than the grid put all pixels in the covering cells.
pub fn color_layout(img: &ImageRgb) -> Vec<f64> {
    let w = img.width();
    let h = img.height();
    // Per-cell channel accumulators.
    let mut cells: Vec<[Vec<f64>; 3]> = (0..GRID * GRID)
        .map(|_| [Vec::new(), Vec::new(), Vec::new()])
        .collect();
    for y in 0..h {
        for x in 0..w {
            let cx = (x * GRID / w).min(GRID - 1);
            let cy = (y * GRID / h).min(GRID - 1);
            let cell = &mut cells[cy * GRID + cx];
            let [hh, ss, vv] = rgb_to_hsv(img.get(x, y));
            cell[0].push(hh);
            cell[1].push(ss);
            cell[2].push(vv);
        }
    }
    let mut out = Vec::with_capacity(LAYOUT_DIM);
    for cell in &cells {
        for channel in cell {
            if channel.is_empty() {
                // Image smaller than the grid: empty cells contribute
                // neutral statistics.
                out.push(0.0);
                out.push(0.0);
            } else {
                out.push(mean(channel).expect("non-empty"));
                out.push(population_std(channel).expect("non-empty"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_shape_and_finiteness() {
        let img = ImageRgb::from_pixels(8, 8, vec![[100, 150, 200]; 64]);
        let f = color_layout(&img);
        assert_eq!(f.len(), LAYOUT_DIM);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn layout_distinguishes_mirrored_images() {
        // Left-red/right-blue vs left-blue/right-red: identical global
        // statistics, different layouts.
        let mut a = ImageRgb::new(8, 8);
        let mut b = ImageRgb::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                let (red, blue) = ([255, 0, 0], [0, 0, 255]);
                a.set(x, y, if x < 4 { red } else { blue });
                b.set(x, y, if x < 4 { blue } else { red });
            }
        }
        let fa = color_layout(&a);
        let fb = color_layout(&b);
        let diff: f64 = fa.iter().zip(&fb).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 0.5, "mirrored layouts must differ: {diff}");
        // …whereas global color moments cannot tell them apart.
        let ga = crate::moments::color_moments(&a);
        let gb = crate::moments::color_moments(&b);
        let gdiff: f64 = ga.iter().zip(&gb).map(|(x, y)| (x - y).abs()).sum();
        assert!(gdiff < 1e-5, "global moments are near-identical: {gdiff}");
    }

    #[test]
    fn uniform_image_has_zero_cell_sigma() {
        let img = ImageRgb::from_pixels(4, 4, vec![[50, 100, 150]; 16]);
        let f = color_layout(&img);
        // Odd indices are σ entries.
        for (i, v) in f.iter().enumerate() {
            if i % 2 == 1 {
                assert!(v.abs() < 1e-12, "sigma at {i} should be 0, got {v}");
            }
        }
    }

    #[test]
    fn tiny_images_still_produce_full_vectors() {
        let img = ImageRgb::from_pixels(1, 1, vec![[10, 20, 30]]);
        let f = color_layout(&img);
        assert_eq!(f.len(), LAYOUT_DIM);
        assert!(f.iter().all(|x| x.is_finite()));
    }
}
