//! A minimal RGB raster type.

/// An 8-bit RGB image stored row-major as `[r, g, b]` triples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageRgb {
    width: usize,
    height: usize,
    pixels: Vec<[u8; 3]>,
}

impl ImageRgb {
    /// Creates a black image of the given size.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        ImageRgb {
            width,
            height,
            pixels: vec![[0, 0, 0]; width * height],
        }
    }

    /// Creates an image from an existing pixel buffer.
    ///
    /// # Panics
    ///
    /// Panics when `pixels.len() != width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<[u8; 3]>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        ImageRgb {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// `true` if the image holds no pixels (never true by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        assert!(
            x < self.width && y < self.height,
            "pixel index out of bounds"
        );
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        assert!(
            x < self.width && y < self.height,
            "pixel index out of bounds"
        );
        self.pixels[y * self.width + x] = rgb;
    }

    /// The flat pixel buffer, row-major.
    #[inline]
    pub fn pixels(&self) -> &[[u8; 3]] {
        &self.pixels
    }

    /// Iterates over all pixels row-major.
    pub fn iter(&self) -> impl Iterator<Item = &[u8; 3]> {
        self.pixels.iter()
    }

    /// Writes the image as a binary PPM (P6) — the simplest portable
    /// format every image viewer opens; lets users inspect the synthetic
    /// corpus visually.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_ppm<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "P6\n{} {}\n255", self.width, self.height)?;
        for px in &self.pixels {
            w.write_all(px)?;
        }
        Ok(())
    }

    /// Parses a binary PPM (P6) image previously written by
    /// [`ImageRgb::write_ppm`] (supports the minimal header subset this
    /// library emits: one width/height line and maxval 255).
    ///
    /// # Errors
    ///
    /// `InvalidData` on malformed headers or truncated pixel data.
    pub fn read_ppm<R: std::io::Read>(mut r: R) -> std::io::Result<ImageRgb> {
        use std::io::{Error, ErrorKind};
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        let bad = |m: &str| Error::new(ErrorKind::InvalidData, m.to_string());
        // Header: "P6\n<w> <h>\n255\n" followed by raw RGB bytes.
        let header_end = buf
            .windows(4)
            .position(|w| w == b"255\n")
            .ok_or_else(|| bad("missing maxval"))?
            + 4;
        let header = std::str::from_utf8(&buf[..header_end]).map_err(|_| bad("non-UTF8 header"))?;
        let mut tokens = header.split_ascii_whitespace();
        if tokens.next() != Some("P6") {
            return Err(bad("not a P6 PPM"));
        }
        let width: usize = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad width"))?;
        let height: usize = tokens
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad height"))?;
        if tokens.next() != Some("255") {
            return Err(bad("unsupported maxval"));
        }
        let body = &buf[header_end..];
        if body.len() != width * height * 3 {
            return Err(bad("truncated pixel data"));
        }
        let pixels = body.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
        Ok(ImageRgb::from_pixels(width, height, pixels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = ImageRgb::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.len(), 12);
        assert!(img.iter().all(|&p| p == [0, 0, 0]));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = ImageRgb::new(2, 2);
        img.set(1, 0, [10, 20, 30]);
        assert_eq!(img.get(1, 0), [10, 20, 30]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn from_pixels_layout() {
        let img = ImageRgb::from_pixels(2, 1, vec![[1, 1, 1], [2, 2, 2]]);
        assert_eq!(img.get(0, 0), [1, 1, 1]);
        assert_eq!(img.get(1, 0), [2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = ImageRgb::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_pixels_rejects_bad_len() {
        let _ = ImageRgb::from_pixels(2, 2, vec![[0, 0, 0]]);
    }

    #[test]
    fn ppm_roundtrip() {
        let mut img = ImageRgb::new(3, 2);
        img.set(0, 0, [255, 0, 0]);
        img.set(2, 1, [0, 128, 255]);
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n3 2\n255\n"));
        let back = ImageRgb::read_ppm(buf.as_slice()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn ppm_rejects_garbage() {
        assert!(ImageRgb::read_ppm(&b"P5 2 2 255 xxxx"[..]).is_err());
        assert!(ImageRgb::read_ppm(&b"nonsense"[..]).is_err());
        // Truncated body.
        assert!(ImageRgb::read_ppm(&b"P6\n2 2\n255\nxx"[..]).is_err());
    }
}
