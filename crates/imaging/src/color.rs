//! Color-space conversions: RGB ↔ HSV and RGB → gray.
//!
//! The paper extracts color moments in **HSV space** "because of its
//! perceptual uniformity of color" (Sec. 5), and the co-occurrence texture
//! works on gray levels.

/// Converts an 8-bit RGB triple to HSV with `h ∈ [0, 1)`, `s, v ∈ [0, 1]`.
///
/// Hue is scaled from the conventional degrees/360 to `[0, 1)` so all three
/// channels share a range — this keeps the per-channel moments comparable
/// before PCA. For achromatic pixels (`max == min`) the hue is `0`.
pub fn rgb_to_hsv(rgb: [u8; 3]) -> [f64; 3] {
    let r = rgb[0] as f64 / 255.0;
    let g = rgb[1] as f64 / 255.0;
    let b = rgb[2] as f64 / 255.0;
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let delta = max - min;

    let v = max;
    let s = if max > 0.0 { delta / max } else { 0.0 };
    let h = if delta == 0.0 {
        0.0
    } else if max == r {
        (((g - b) / delta).rem_euclid(6.0)) / 6.0
    } else if max == g {
        ((b - r) / delta + 2.0) / 6.0
    } else {
        ((r - g) / delta + 4.0) / 6.0
    };
    [h, s, v]
}

/// Converts HSV (`h ∈ [0, 1)`, `s, v ∈ [0, 1]`) back to 8-bit RGB.
///
/// Inputs outside the canonical ranges are clamped (hue wraps).
pub fn hsv_to_rgb(hsv: [f64; 3]) -> [u8; 3] {
    let h = hsv[0].rem_euclid(1.0) * 6.0;
    let s = hsv[1].clamp(0.0, 1.0);
    let v = hsv[2].clamp(0.0, 1.0);
    let c = v * s;
    let x = c * (1.0 - ((h % 2.0) - 1.0).abs());
    let m = v - c;
    let (r1, g1, b1) = match h as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    [
        ((r1 + m) * 255.0).round().clamp(0.0, 255.0) as u8,
        ((g1 + m) * 255.0).round().clamp(0.0, 255.0) as u8,
        ((b1 + m) * 255.0).round().clamp(0.0, 255.0) as u8,
    ]
}

/// Luma conversion RGB → gray level 0–255 (ITU-R BT.601 weights).
#[inline]
pub fn rgb_to_gray(rgb: [u8; 3]) -> u8 {
    let y = 0.299 * rgb[0] as f64 + 0.587 * rgb[1] as f64 + 0.114 * rgb[2] as f64;
    y.round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_colors() {
        // Red: h=0, s=1, v=1
        let [h, s, v] = rgb_to_hsv([255, 0, 0]);
        assert!(h.abs() < 1e-12 && (s - 1.0).abs() < 1e-12 && (v - 1.0).abs() < 1e-12);
        // Green: h=1/3
        let [h, _, _] = rgb_to_hsv([0, 255, 0]);
        assert!((h - 1.0 / 3.0).abs() < 1e-12);
        // Blue: h=2/3
        let [h, _, _] = rgb_to_hsv([0, 0, 255]);
        assert!((h - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn grayscale_is_unsaturated() {
        for &g in &[0u8, 37, 128, 255] {
            let [_, s, v] = rgb_to_hsv([g, g, g]);
            assert_eq!(s, 0.0);
            assert!((v - g as f64 / 255.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hsv_roundtrip_all_corners() {
        for &rgb in &[
            [0u8, 0, 0],
            [255, 255, 255],
            [255, 0, 0],
            [0, 255, 0],
            [0, 0, 255],
            [255, 255, 0],
            [0, 255, 255],
            [255, 0, 255],
            [12, 200, 99],
            [240, 13, 77],
        ] {
            let back = hsv_to_rgb(rgb_to_hsv(rgb));
            for i in 0..3 {
                assert!(
                    (back[i] as i32 - rgb[i] as i32).abs() <= 1,
                    "roundtrip failed for {rgb:?} -> {back:?}"
                );
            }
        }
    }

    #[test]
    fn hue_wraps() {
        assert_eq!(hsv_to_rgb([1.25, 1.0, 1.0]), hsv_to_rgb([0.25, 1.0, 1.0]));
    }

    #[test]
    fn gray_weights() {
        assert_eq!(rgb_to_gray([255, 255, 255]), 255);
        assert_eq!(rgb_to_gray([0, 0, 0]), 0);
        // Green dominates luma.
        assert!(rgb_to_gray([0, 255, 0]) > rgb_to_gray([255, 0, 0]));
        assert!(rgb_to_gray([255, 0, 0]) > rgb_to_gray([0, 0, 255]));
    }
}
