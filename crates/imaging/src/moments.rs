//! Color-moment feature extraction (paper Sec. 5).
//!
//! "For each of three color channels, we extract the mean, standard
//! deviation, and skewness" — in HSV space — giving a 9-dimensional raw
//! color feature that the pipeline later reduces to 3 dimensions with PCA.

use crate::color::rgb_to_hsv;
use crate::image::ImageRgb;
use qcluster_stats::descriptive::{mean, population_std, skewness};

/// Dimensionality of the raw color-moment vector (3 moments × 3 channels).
pub const COLOR_MOMENT_DIM: usize = 9;

/// Extracts the 9-dim color-moment vector
/// `[μ_H, σ_H, s_H, μ_S, σ_S, s_S, μ_V, σ_V, s_V]` from an image.
///
/// The skewness entry is the signed cube root of the third central moment,
/// which keeps it on the same scale as μ and σ (see
/// [`qcluster_stats::descriptive::skewness`]).
pub fn color_moments(img: &ImageRgb) -> Vec<f64> {
    let n = img.len();
    let mut h = Vec::with_capacity(n);
    let mut s = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    for &px in img.iter() {
        let [hh, ss, vv] = rgb_to_hsv(px);
        h.push(hh);
        s.push(ss);
        v.push(vv);
    }
    let mut out = Vec::with_capacity(COLOR_MOMENT_DIM);
    for channel in [&h, &s, &v] {
        // Non-empty by ImageRgb construction.
        out.push(mean(channel).expect("non-empty image"));
        out.push(population_std(channel).expect("non-empty image"));
        out.push(skewness(channel).expect("non-empty image"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::hsv_to_rgb;

    fn solid(color: [u8; 3]) -> ImageRgb {
        ImageRgb::from_pixels(4, 4, vec![color; 16])
    }

    #[test]
    fn vector_has_nine_dims() {
        let f = color_moments(&solid([10, 200, 30]));
        assert_eq!(f.len(), COLOR_MOMENT_DIM);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn solid_image_has_zero_spread() {
        let f = color_moments(&solid([10, 200, 30]));
        // σ and skew of every channel are zero for a constant image.
        for ch in 0..3 {
            assert!(f[ch * 3 + 1].abs() < 1e-9, "sigma channel {ch}");
            assert!(f[ch * 3 + 2].abs() < 1e-9, "skew channel {ch}");
        }
    }

    #[test]
    fn mean_value_channel_tracks_brightness() {
        let dark = color_moments(&solid([20, 20, 20]));
        let bright = color_moments(&solid([230, 230, 230]));
        // μ_V is index 6.
        assert!(bright[6] > dark[6]);
    }

    #[test]
    fn hue_mean_distinguishes_green_from_blue() {
        let green = color_moments(&solid(hsv_to_rgb([0.33, 0.9, 0.8])));
        let blue = color_moments(&solid(hsv_to_rgb([0.66, 0.9, 0.3])));
        // μ_H is index 0; green ≈ 0.33, blue ≈ 0.66.
        assert!((green[0] - 0.33).abs() < 0.02);
        assert!((blue[0] - 0.66).abs() < 0.02);
    }

    #[test]
    fn two_tone_image_has_positive_sigma() {
        let mut px = vec![[0u8, 0, 0]; 8];
        px.extend(vec![[255u8, 255, 255]; 8]);
        let img = ImageRgb::from_pixels(4, 4, px);
        let f = color_moments(&img);
        // σ_V (index 7) is 0.5 for a half-black/half-white image.
        assert!((f[7] - 0.5).abs() < 1e-12);
    }
}
