//! HSV color histogram — the classic CBIR color feature.
//!
//! The paper's own experiments use color moments and GLCM texture, but the
//! systems it builds on (QBIC, MARS, VisualSEEk — its references \[10\],
//! \[15\], \[18\]) all index **color histograms**; this module provides the
//! standard quantized-HSV variant so the library covers the family's third
//! canonical feature. Bins: 8 hue × 2 saturation × 2 value = 32, L1
//! normalized. The feature pipeline PCA-reduces it like the others.

use crate::color::rgb_to_hsv;
use crate::image::ImageRgb;

/// Hue bins.
pub const HUE_BINS: usize = 8;
/// Saturation bins.
pub const SAT_BINS: usize = 2;
/// Value bins.
pub const VAL_BINS: usize = 2;
/// Total histogram dimensionality.
pub const HISTOGRAM_DIM: usize = HUE_BINS * SAT_BINS * VAL_BINS;

/// Bin index of one HSV triple.
#[inline]
fn bin(hsv: [f64; 3]) -> usize {
    let h = ((hsv[0] * HUE_BINS as f64) as usize).min(HUE_BINS - 1);
    let s = ((hsv[1] * SAT_BINS as f64) as usize).min(SAT_BINS - 1);
    let v = ((hsv[2] * VAL_BINS as f64) as usize).min(VAL_BINS - 1);
    (h * SAT_BINS + s) * VAL_BINS + v
}

/// The L1-normalized 32-bin HSV histogram of an image.
pub fn color_histogram(img: &ImageRgb) -> Vec<f64> {
    let mut hist = vec![0.0; HISTOGRAM_DIM];
    for &px in img.iter() {
        hist[bin(rgb_to_hsv(px))] += 1.0;
    }
    let inv = 1.0 / img.len() as f64;
    for h in &mut hist {
        *h *= inv;
    }
    hist
}

/// Histogram intersection similarity `Σ min(a_i, b_i)` ∈ [0, 1] — the
/// classic Swain–Ballard matching score (1 = identical distributions).
///
/// # Panics
///
/// Panics when lengths differ.
pub fn histogram_intersection(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "histogram length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x.min(y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::hsv_to_rgb;

    fn solid(color: [u8; 3]) -> ImageRgb {
        ImageRgb::from_pixels(4, 4, vec![color; 16])
    }

    #[test]
    fn histogram_is_normalized() {
        let h = color_histogram(&solid([123, 45, 200]));
        assert_eq!(h.len(), HISTOGRAM_DIM);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(h.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn solid_image_fills_one_bin() {
        let h = color_histogram(&solid([255, 0, 0]));
        assert_eq!(h.iter().filter(|&&v| v > 0.0).count(), 1);
        assert!((h.iter().cloned().fold(0.0_f64, f64::max) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn different_hues_hit_different_bins() {
        let red = color_histogram(&solid(hsv_to_rgb([0.02, 0.9, 0.9])));
        let green = color_histogram(&solid(hsv_to_rgb([0.35, 0.9, 0.9])));
        let r_bin = red.iter().position(|&v| v > 0.0).unwrap();
        let g_bin = green.iter().position(|&v| v > 0.0).unwrap();
        assert_ne!(r_bin, g_bin);
    }

    #[test]
    fn intersection_identity_and_disjoint() {
        let a = color_histogram(&solid([255, 0, 0]));
        let b = color_histogram(&solid([0, 0, 255]));
        assert!((histogram_intersection(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(histogram_intersection(&a, &b), 0.0);
    }

    #[test]
    fn two_tone_image_splits_mass() {
        let mut px = vec![[255u8, 0, 0]; 8];
        px.extend(vec![[0u8, 0, 255]; 8]);
        let h = color_histogram(&ImageRgb::from_pixels(4, 4, px));
        let nonzero: Vec<f64> = h.iter().cloned().filter(|&v| v > 0.0).collect();
        assert_eq!(nonzero.len(), 2);
        assert!(nonzero.iter().all(|&v| (v - 0.5).abs() < 1e-12));
    }
}
