//! End-to-end feature pipeline: render → extract → PCA-reduce → normalize.
//!
//! Mirrors the paper's setup (Sec. 5): color moments are extracted in HSV
//! and "reduce\[d\] … to three using the principal component analysis"; the
//! 16-element co-occurrence texture vector is reduced to four. The PCA is
//! fitted on the whole corpus (the database side knows its own data), and
//! each reduced dimension is standardized to unit variance so that no
//! single principal axis dominates the initial (identity-weighted) query.

use crate::corpus::Corpus;
use crate::glcm::texture_features;
use crate::moments::color_moments;
use qcluster_linalg::{Matrix, Pca};

/// Which visual feature to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// HSV color moments: 9 raw dims → 3 after PCA (paper Sec. 5).
    ColorMoments,
    /// GLCM texture statistics: 16 raw dims → 4 after PCA (paper Sec. 5).
    CooccurrenceTexture,
    /// Quantized HSV color histogram: 32 raw dims → 6 after PCA — the
    /// classic QBIC/MARS color feature (see [`crate::histogram`]).
    ColorHistogram,
    /// Spatial color layout: 2×2 grid of per-cell HSV mean/σ, 24 raw dims
    /// → 6 after PCA (see [`crate::layout`]).
    ColorLayout,
}

impl FeatureKind {
    /// Raw (pre-PCA) dimensionality.
    pub fn raw_dim(self) -> usize {
        match self {
            FeatureKind::ColorMoments => crate::moments::COLOR_MOMENT_DIM,
            FeatureKind::CooccurrenceTexture => crate::glcm::TEXTURE_DIM,
            FeatureKind::ColorHistogram => crate::histogram::HISTOGRAM_DIM,
            FeatureKind::ColorLayout => crate::layout::LAYOUT_DIM,
        }
    }

    /// Reduced dimensionality used by the retrieval experiments.
    pub fn reduced_dim(self) -> usize {
        match self {
            FeatureKind::ColorMoments => 3,
            FeatureKind::CooccurrenceTexture => 4,
            FeatureKind::ColorHistogram => 6,
            FeatureKind::ColorLayout => 6,
        }
    }
}

/// Extracts the raw (pre-PCA) feature vector of `kind` from one image —
/// the per-image step of [`FeatureSet::build`], exposed for pipelines
/// that stream images from disk instead of rendering a whole [`Corpus`]
/// in memory.
pub fn raw_features(kind: FeatureKind, img: &crate::image::ImageRgb) -> Vec<f64> {
    match kind {
        FeatureKind::ColorMoments => color_moments(img),
        FeatureKind::CooccurrenceTexture => texture_features(img),
        FeatureKind::ColorHistogram => crate::histogram::color_histogram(img),
        FeatureKind::ColorLayout => crate::layout::color_layout(img),
    }
}

/// A fitted pipeline: the PCA model plus per-component scale factors.
#[derive(Debug, Clone)]
pub struct FeaturePipeline {
    kind: FeatureKind,
    pca: Pca,
    /// 1/σ of each retained principal component over the training corpus.
    inv_scale: Vec<f64>,
}

impl FeaturePipeline {
    /// Fits the pipeline on raw feature rows (one image per row).
    ///
    /// # Errors
    ///
    /// Propagates PCA fitting errors (fewer than two images).
    pub fn fit(kind: FeatureKind, raw: &Matrix) -> qcluster_linalg::Result<Self> {
        let pca = Pca::fit(raw)?;
        let k = kind.reduced_dim().min(raw.cols());
        let inv_scale = pca.eigenvalues()[..k]
            .iter()
            .map(|&l| if l > 1e-12 { 1.0 / l.sqrt() } else { 1.0 })
            .collect();
        Ok(FeaturePipeline {
            kind,
            pca,
            inv_scale,
        })
    }

    /// The feature kind this pipeline was fitted for.
    pub fn kind(&self) -> FeatureKind {
        self.kind
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.inv_scale.len()
    }

    /// Fraction of raw-feature variance retained by the kept components.
    pub fn retained_variance(&self) -> f64 {
        self.pca.retained_variance(self.dim())
    }

    /// Projects one raw feature vector to the reduced, standardized space.
    pub fn transform(&self, raw: &[f64]) -> Vec<f64> {
        let mut z = self.pca.transform(raw, self.dim());
        for (zi, &s) in z.iter_mut().zip(self.inv_scale.iter()) {
            *zi *= s;
        }
        z
    }
}

/// The reduced feature vectors of an entire corpus, plus ground truth.
#[derive(Debug, Clone)]
pub struct FeatureSet {
    kind: FeatureKind,
    /// One reduced feature vector per image, indexed by global image id.
    vectors: Vec<Vec<f64>>,
    /// Category of each image.
    categories: Vec<usize>,
    /// Super-category of each image.
    super_categories: Vec<usize>,
    pipeline: FeaturePipeline,
}

impl FeatureSet {
    /// Renders every image of `corpus`, extracts `kind` features, fits the
    /// PCA pipeline, and returns the reduced vectors with ground truth.
    ///
    /// This is the expensive corpus-preparation step; the result should be
    /// built once and shared across experiments.
    ///
    /// # Errors
    ///
    /// Propagates PCA fitting errors.
    pub fn build(corpus: &Corpus, kind: FeatureKind) -> qcluster_linalg::Result<Self> {
        let n = corpus.len();
        let p = kind.raw_dim();

        // Rendering + extraction dominates corpus preparation and is
        // embarrassingly parallel (each image is independent); fan out
        // over the available cores with scoped threads.
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
            .min(n.max(1));
        let chunk = n.div_ceil(threads);
        let extract = |id: usize| -> Vec<f64> { raw_features(kind, &corpus.render_by_id(id)) };
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
        if threads <= 1 || n < 64 {
            rows.extend((0..n).map(extract));
        } else {
            let mut parts: Vec<Vec<Vec<f64>>> = Vec::with_capacity(threads);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .step_by(chunk)
                    .map(|start| {
                        let end = (start + chunk).min(n);
                        scope.spawn(move |_| (start..end).map(extract).collect::<Vec<_>>())
                    })
                    .collect();
                for h in handles {
                    parts.push(h.join().expect("extraction thread panicked"));
                }
            })
            .expect("thread scope");
            rows.extend(parts.into_iter().flatten());
        }

        let mut raw = Matrix::zeros(n, p);
        let mut categories = Vec::with_capacity(n);
        let mut super_categories = Vec::with_capacity(n);
        for (id, f) in rows.iter().enumerate() {
            raw.row_mut(id).copy_from_slice(f);
            categories.push(corpus.category_of(id));
            super_categories.push(corpus.super_category_of(id));
        }
        let pipeline = FeaturePipeline::fit(kind, &raw)?;
        let vectors = (0..n).map(|id| pipeline.transform(raw.row(id))).collect();
        Ok(FeatureSet {
            kind,
            vectors,
            categories,
            super_categories,
            pipeline,
        })
    }

    /// The feature kind.
    pub fn kind(&self) -> FeatureKind {
        self.kind
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Reduced dimensionality.
    pub fn dim(&self) -> usize {
        self.pipeline.dim()
    }

    /// The reduced feature vector of image `id`.
    pub fn vector(&self, id: usize) -> &[f64] {
        &self.vectors[id]
    }

    /// All reduced feature vectors, indexed by image id.
    pub fn vectors(&self) -> &[Vec<f64>] {
        &self.vectors
    }

    /// Category label of image `id`.
    pub fn category(&self, id: usize) -> usize {
        self.categories[id]
    }

    /// Super-category label of image `id`.
    pub fn super_category(&self, id: usize) -> usize {
        self.super_categories[id]
    }

    /// The fitted pipeline (e.g. to transform query images not in the
    /// corpus).
    pub fn pipeline(&self) -> &FeaturePipeline {
        &self.pipeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    fn tiny_corpus() -> Corpus {
        CorpusBuilder::new()
            .categories(4)
            .images_per_category(5)
            .image_size(16)
            .seed(11)
            .build()
    }

    #[test]
    fn color_feature_set_shape() {
        let fs = FeatureSet::build(&tiny_corpus(), FeatureKind::ColorMoments).unwrap();
        assert_eq!(fs.len(), 20);
        assert_eq!(fs.dim(), 3);
        assert!(fs.vectors().iter().all(|v| v.len() == 3));
        assert_eq!(fs.category(0), 0);
        assert_eq!(fs.category(19), 3);
    }

    #[test]
    fn texture_feature_set_shape() {
        let fs = FeatureSet::build(&tiny_corpus(), FeatureKind::CooccurrenceTexture).unwrap();
        assert_eq!(fs.dim(), 4);
        assert!(fs.vectors().iter().all(|v| v.iter().all(|x| x.is_finite())));
    }

    #[test]
    fn histogram_feature_set_shape() {
        let fs = FeatureSet::build(&tiny_corpus(), FeatureKind::ColorHistogram).unwrap();
        assert_eq!(fs.dim(), 6);
        assert!(fs.vectors().iter().all(|v| v.iter().all(|x| x.is_finite())));
    }

    #[test]
    fn layout_feature_set_shape() {
        let fs = FeatureSet::build(&tiny_corpus(), FeatureKind::ColorLayout).unwrap();
        assert_eq!(fs.dim(), 6);
        assert!(fs.vectors().iter().all(|v| v.iter().all(|x| x.is_finite())));
    }

    #[test]
    fn pipeline_retains_most_variance() {
        let fs = FeatureSet::build(&tiny_corpus(), FeatureKind::ColorMoments).unwrap();
        // The paper targets 1−ε ≥ 0.85; our synthetic corpus should be
        // comfortably above one-half with 3 of 9 components.
        assert!(
            fs.pipeline().retained_variance() > 0.5,
            "retained {}",
            fs.pipeline().retained_variance()
        );
    }

    #[test]
    fn reduced_components_are_standardized() {
        let fs = FeatureSet::build(&tiny_corpus(), FeatureKind::ColorMoments).unwrap();
        let n = fs.len() as f64;
        for d in 0..fs.dim() {
            let mean: f64 = fs.vectors().iter().map(|v| v[d]).sum::<f64>() / n;
            let var: f64 = fs
                .vectors()
                .iter()
                .map(|v| (v[d] - mean) * (v[d] - mean))
                .sum::<f64>()
                / (n - 1.0);
            assert!(mean.abs() < 1e-9, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 1e-6, "dim {d} variance {var}");
        }
    }

    #[test]
    fn transform_matches_precomputed_vectors() {
        let corpus = tiny_corpus();
        let fs = FeatureSet::build(&corpus, FeatureKind::ColorMoments).unwrap();
        let raw = crate::moments::color_moments(&corpus.render_by_id(7));
        let z = fs.pipeline().transform(&raw);
        for (a, b) in z.iter().zip(fs.vector(7).iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
