//! Gray-level co-occurrence matrix (GLCM) texture features (paper Sec. 5).
//!
//! "The (i, j)th element of \[the\] co-occurrence matrix is built by counting
//! the number of pixels, the gray-level of which is i and the gray-level of
//! its adjacent pixel is j … Texture feature values are derived by weighting
//! each of the co-occurrence matrix elements and then summing these weighted
//! values … a vector of the texture feature whose 16 elements are energy,
//! inertia, entropy, homogeneity, etc." The raw 16-dim vector is later
//! PCA-reduced to 4 dims.
//!
//! We quantize the 0–255 gray range to [`GLCM_LEVELS`] bins before counting:
//! a full 256×256 matrix is overwhelmingly sparse for small images and
//! quantization is the standard practice (Haralick's original proposal
//! already worked on quantized levels). The co-occurrence counts are
//! accumulated symmetrically over the four canonical offsets (→, ↓, ↘, ↙)
//! and normalized to a joint probability matrix.

use crate::color::rgb_to_gray;
use crate::image::ImageRgb;

/// Number of quantized gray levels used for the co-occurrence matrix.
pub const GLCM_LEVELS: usize = 32;

/// Dimensionality of the texture feature vector.
pub const TEXTURE_DIM: usize = 16;

/// A normalized gray-level co-occurrence matrix.
#[derive(Debug, Clone)]
pub struct Glcm {
    /// `GLCM_LEVELS × GLCM_LEVELS` joint probabilities, row-major.
    p: Vec<f64>,
}

impl Glcm {
    /// Builds the symmetric, normalized GLCM of an image over the four
    /// canonical unit offsets.
    pub fn from_image(img: &ImageRgb) -> Glcm {
        let w = img.width();
        let h = img.height();
        // Quantize once.
        let mut gray = vec![0usize; w * h];
        for y in 0..h {
            for x in 0..w {
                gray[y * w + x] = (rgb_to_gray(img.get(x, y)) as usize * GLCM_LEVELS) / 256;
            }
        }
        let mut counts = vec![0u64; GLCM_LEVELS * GLCM_LEVELS];
        let offsets: [(isize, isize); 4] = [(1, 0), (0, 1), (1, 1), (1, -1)];
        for y in 0..h as isize {
            for x in 0..w as isize {
                let a = gray[y as usize * w + x as usize];
                for &(dx, dy) in &offsets {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx < 0 || ny < 0 || nx >= w as isize || ny >= h as isize {
                        continue;
                    }
                    let b = gray[ny as usize * w + nx as usize];
                    // Symmetric accumulation.
                    counts[a * GLCM_LEVELS + b] += 1;
                    counts[b * GLCM_LEVELS + a] += 1;
                }
            }
        }
        let total: u64 = counts.iter().sum();
        let norm = if total > 0 { 1.0 / total as f64 } else { 0.0 };
        Glcm {
            p: counts.iter().map(|&c| c as f64 * norm).collect(),
        }
    }

    /// Joint probability `P(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.p[i * GLCM_LEVELS + j]
    }

    /// Computes the 16-element texture feature vector.
    ///
    /// Features (indices):
    /// 0 energy (angular second moment), 1 inertia (contrast), 2 entropy,
    /// 3 homogeneity (inverse difference moment), 4 correlation,
    /// 5 variance (sum of squares), 6 sum average, 7 sum variance,
    /// 8 sum entropy, 9 difference average, 10 difference variance,
    /// 11 difference entropy, 12 maximum probability, 13 cluster shade,
    /// 14 cluster prominence, 15 dissimilarity.
    pub fn features(&self) -> Vec<f64> {
        let g = GLCM_LEVELS;
        // Marginals.
        let mut px = vec![0.0; g];
        let mut py = vec![0.0; g];
        for i in 0..g {
            for j in 0..g {
                let p = self.get(i, j);
                px[i] += p;
                py[j] += p;
            }
        }
        let mean_x: f64 = px.iter().enumerate().map(|(i, &p)| i as f64 * p).sum();
        let mean_y: f64 = py.iter().enumerate().map(|(j, &p)| j as f64 * p).sum();
        let var_x: f64 = px
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as f64 - mean_x).powi(2) * p)
            .sum();
        let var_y: f64 = py
            .iter()
            .enumerate()
            .map(|(j, &p)| (j as f64 - mean_y).powi(2) * p)
            .sum();

        // p_{x+y}(k), k = 0..2g−2 and p_{x−y}(k), k = 0..g−1.
        let mut p_sum = vec![0.0; 2 * g - 1];
        let mut p_diff = vec![0.0; g];

        let mut energy = 0.0;
        let mut inertia = 0.0;
        let mut entropy = 0.0;
        let mut homogeneity = 0.0;
        let mut correlation_acc = 0.0;
        let mut variance = 0.0;
        let mut max_prob = 0.0_f64;
        let mut shade = 0.0;
        let mut prominence = 0.0;
        let mut dissimilarity = 0.0;

        for i in 0..g {
            for j in 0..g {
                let p = self.get(i, j);
                if p == 0.0 {
                    continue;
                }
                let (fi, fj) = (i as f64, j as f64);
                let d = fi - fj;
                energy += p * p;
                inertia += d * d * p;
                entropy -= p * p.ln();
                homogeneity += p / (1.0 + d * d);
                correlation_acc += fi * fj * p;
                variance += (fi - mean_x).powi(2) * p;
                max_prob = max_prob.max(p);
                let c = fi + fj - mean_x - mean_y;
                shade += c.powi(3) * p;
                prominence += c.powi(4) * p;
                dissimilarity += d.abs() * p;
                p_sum[i + j] += p;
                p_diff[i.abs_diff(j)] += p;
            }
        }
        let correlation = if var_x > 0.0 && var_y > 0.0 {
            (correlation_acc - mean_x * mean_y) / (var_x.sqrt() * var_y.sqrt())
        } else {
            0.0
        };

        let sum_avg: f64 = p_sum.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        let sum_var: f64 = p_sum
            .iter()
            .enumerate()
            .map(|(k, &p)| (k as f64 - sum_avg).powi(2) * p)
            .sum();
        let sum_entropy: f64 = -p_sum
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>();
        let diff_avg: f64 = p_diff.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        let diff_var: f64 = p_diff
            .iter()
            .enumerate()
            .map(|(k, &p)| (k as f64 - diff_avg).powi(2) * p)
            .sum();
        let diff_entropy: f64 = -p_diff
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>();

        vec![
            energy,
            inertia,
            entropy,
            homogeneity,
            correlation,
            variance,
            sum_avg,
            sum_var,
            sum_entropy,
            diff_avg,
            diff_var,
            diff_entropy,
            max_prob,
            shade,
            prominence,
            dissimilarity,
        ]
    }
}

/// Convenience: GLCM texture features straight from an image.
pub fn texture_features(img: &ImageRgb) -> Vec<f64> {
    Glcm::from_image(img).features()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid(v: u8) -> ImageRgb {
        ImageRgb::from_pixels(8, 8, vec![[v, v, v]; 64])
    }

    fn checkerboard() -> ImageRgb {
        let mut img = ImageRgb::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                let v = if (x + y) % 2 == 0 { 0 } else { 255 };
                img.set(x, y, [v, v, v]);
            }
        }
        img
    }

    #[test]
    fn glcm_is_normalized_probability() {
        for img in [solid(100), checkerboard()] {
            let glcm = Glcm::from_image(&img);
            let total: f64 = (0..GLCM_LEVELS)
                .flat_map(|i| (0..GLCM_LEVELS).map(move |j| (i, j)))
                .map(|(i, j)| glcm.get(i, j))
                .sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn glcm_is_symmetric() {
        let glcm = Glcm::from_image(&checkerboard());
        for i in 0..GLCM_LEVELS {
            for j in 0..GLCM_LEVELS {
                assert_eq!(glcm.get(i, j), glcm.get(j, i));
            }
        }
    }

    #[test]
    fn feature_vector_has_sixteen_dims() {
        let f = texture_features(&checkerboard());
        assert_eq!(f.len(), TEXTURE_DIM);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn solid_image_is_maximally_ordered() {
        let f = texture_features(&solid(128));
        // energy = 1 (all mass on one cell), inertia = 0, entropy = 0.
        assert!((f[0] - 1.0).abs() < 1e-12, "energy {}", f[0]);
        assert_eq!(f[1], 0.0, "inertia");
        assert!(f[2].abs() < 1e-12, "entropy {}", f[2]);
        assert!((f[3] - 1.0).abs() < 1e-12, "homogeneity {}", f[3]);
        assert!((f[12] - 1.0).abs() < 1e-12, "max prob {}", f[12]);
    }

    #[test]
    fn checkerboard_has_high_contrast() {
        let fc = texture_features(&checkerboard());
        let fs = texture_features(&solid(128));
        assert!(fc[1] > fs[1], "inertia should rise with contrast");
        assert!(fc[2] > fs[2], "entropy should rise with disorder");
        assert!(fc[0] < fs[0], "energy should fall with disorder");
        assert!(fc[15] > fs[15], "dissimilarity should rise with contrast");
    }

    #[test]
    fn gradient_vs_checkerboard_texture_differs() {
        let mut grad = ImageRgb::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                let v = (x * 8) as u8;
                grad.set(x, y, [v, v, v]);
            }
        }
        let fg = texture_features(&grad);
        let fc = texture_features(&checkerboard());
        // A smooth gradient has far lower contrast than a checkerboard.
        assert!(fg[1] < fc[1]);
        // And higher homogeneity.
        assert!(fg[3] > fc[3]);
    }

    #[test]
    fn correlation_bounded() {
        for img in [solid(10), checkerboard()] {
            let f = texture_features(&img);
            assert!(f[4] >= -1.0 - 1e-9 && f[4] <= 1.0 + 1e-9, "corr {}", f[4]);
        }
    }
}
