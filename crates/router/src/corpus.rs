//! A deterministic synthetic corpus shared by the cluster node binary,
//! the chaos tests, and the demo: every node materializes its slice
//! from the **global** id, so a partitioned cluster and a single node
//! holding `0..total` agree on every vector byte-for-byte.

/// SplitMix64: tiny, stateless, and good enough for synthetic feature
/// vectors (no external RNG crate on this path).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The feature vector of global corpus id `id`: `dim` components,
/// each uniform in `[0, 100)` and exactly representable decisions
/// aside, fully determined by `(id, component)`.
pub fn synthetic_point(id: usize, dim: usize) -> Vec<f64> {
    (0..dim)
        .map(|j| {
            let bits = splitmix64((id as u64) << 20 | j as u64);
            (bits >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        })
        .collect()
}

/// The synthetic vectors for global ids `base..base + count`.
pub fn synthetic_slice(base: usize, count: usize, dim: usize) -> Vec<Vec<f64>> {
    (base..base + count)
        .map(|id| synthetic_point(id, dim))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_agree_with_the_whole() {
        let whole = synthetic_slice(0, 30, 4);
        let left = synthetic_slice(0, 10, 4);
        let right = synthetic_slice(10, 20, 4);
        for (i, v) in left.iter().enumerate() {
            assert_eq!(v, &whole[i]);
        }
        for (i, v) in right.iter().enumerate() {
            assert_eq!(v, &whole[10 + i]);
        }
        for v in &whole {
            assert!(v.iter().all(|c| c.is_finite() && (0.0..100.0).contains(c)));
        }
    }
}
