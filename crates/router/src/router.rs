//! The scatter–gather router: one process fronting N `qcluster-net`
//! node processes.
//!
//! Every query fans out to one replica per partition over framed TCP,
//! the partial top-k lists come back with node-local ids, and the
//! router remaps them onto the global id space (`global = id_base +
//! local`) before k-way-merging with the same `(distance, id)`
//! tie-break the in-process executor uses — so a healthy cluster is
//! bit-for-bit equal to a single node holding the whole corpus.
//!
//! ## Degradation
//!
//! Nodes degrade exactly the way the executor degrades shards: a
//! per-node deadline bounds each leg, a per-node circuit breaker trips
//! after consecutive failures and skips the node (degraded coverage)
//! until a cooldown elapses, then half-opens with a single probe.
//! Every missing leg is attributed with a typed [`NodeFailureKind`],
//! and responses carry `nodes_ok / nodes_total` cluster coverage next
//! to the per-node `shards_ok / shards_total`.
//!
//! ## Replication
//!
//! Partitions may be replicated. The router ships the leader's WAL to
//! followers over the replication frame kind (`Fetch` from the
//! follower's committed record offset on the leader, `Apply` on the
//! follower — idempotent, so a torn exchange is simply re-driven). An
//! acked ingest is one that reached a **majority** of the partition's
//! replicas, so killing the leader loses nothing: promotion probes the
//! surviving replicas' replication status and elects the one with the
//! highest committed total. [`ReadPreference::StaleOk`] additionally
//! lets queries fall back to a follower whose known replication lag is
//! within a bound when the leader's breaker is open.
//!
//! ## Consensus: terms, leases, fencing
//!
//! Each partition carries a monotonic **term**, persisted node-side
//! next to the WAL. Promotion is a term/vote handshake: the router
//! probes replica terms, bids `max + 1`, and leads only after a
//! **majority** of the partition's replicas grant the vote — so two
//! routers contending over the same nodes cannot both win a term.
//! Every replication ship (and the empty fence probe preceding each
//! ingest) carries `(term, lease_ms)`; a follower that has acknowledged
//! a higher term rejects the ship with a typed `StaleTerm`, fencing
//! zombie leaders and never-elected second routers. Leadership is
//! **lease-based**: each accepted fenced ship renews the follower's
//! leader lease, and while any lease is unexpired the follower refuses
//! competing votes — an actively-shipping leader cannot be deposed,
//! a dead one is deposable one lease window after its last renewal.
//!
//! Replica reads are **read-your-writes** per session: the router
//! tracks each session's feed rounds and acked ingest totals, and a
//! query leg only goes to a replica at-or-past the session's marks
//! (falling back to the leader, counted in
//! `ClusterGauges::ryw_leader_fallbacks`).
//!
//! [`Router::start_anti_entropy`] spawns a background thread that
//! renews leases and streams catch-up chunks to lagging or rejoining
//! followers **off the ingest path** (inline catch-up is bounded by
//! [`RouterConfig::max_inline_lag`]).
//!
//! ## Failpoints
//!
//! `router.node` (any leg) and `router.node.<p>` (partition `p`)
//! inject faults before a leg is dispatched: `error:<msg>` /
//! `panic:<msg>` fail the leg, `sleep:<ms>` delays it, and
//! `partial:<n>` truncates the leg's neighbor list to `n` entries.
//! `router.lease.expire` (any action) makes the router treat its
//! leader lease as lapsed before an ingest: it must re-win its term
//! via a fresh election before shipping again.

use crate::map::ShardMap;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use qcluster_failpoint as failpoint;
use qcluster_index::{merge_top_k, Neighbor};
use qcluster_net::{Client, ClientConfig, ReplReply, ReplRequest};
use qcluster_service::{
    ClusterGauges, FeedPointDto, MetricsSnapshot, NeighborDto, Request, Response, SearchStatsDto,
};
use std::collections::HashMap;
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which replica of a partition serves queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPreference {
    /// Always the current leader (linearizable with respect to acked
    /// ingests). A leg whose leader breaker is open fails as
    /// [`NodeFailureKind::BreakerOpen`].
    LeaderOnly,
    /// Leader normally, but when the leader's breaker is open, fall
    /// back to a follower whose router-observed replication lag (in
    /// committed records) is at most `max_lag`.
    StaleOk {
        /// Largest acceptable records-behind-leader for a fallback read.
        max_lag: u64,
    },
}

/// Tunables for [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-leg reply deadline: how long one node may take to answer
    /// before the leg is attributed [`NodeFailureKind::Timeout`].
    pub node_deadline: Duration,
    /// Consecutive leg failures that trip one node's circuit breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-opening.
    pub breaker_cooldown: Duration,
    /// Transport tunables for the per-node connections.
    pub client: ClientConfig,
    /// Records per replication `Fetch` round.
    pub replication_batch: u32,
    /// Replica selection for query legs.
    pub read_preference: ReadPreference,
    /// Relevance score assigned when a feed omits explicit scores
    /// (matches the single-node service default).
    pub default_score: f64,
    /// How long a follower honors a leader lease (and a vote lease)
    /// after granting it. An actively-shipping leader renews within
    /// this window; failover after a leader death waits at most one
    /// window.
    pub lease_duration: Duration,
    /// Pause between retried vote rounds while an election is refused
    /// (typically because a prior leader's lease has not lapsed yet).
    pub election_backoff: Duration,
    /// Total time one [`Router::promote`] may spend retrying vote
    /// rounds before reporting [`RouterError::ElectionLost`]. Must
    /// cover at least one `lease_duration` or a dead leader's lease
    /// can never be outwaited.
    pub election_timeout: Duration,
    /// Largest records-behind-target a follower may be and still be
    /// caught up inline during an ingest ack. A follower further
    /// behind (e.g. rejoining after a kill) is left to the
    /// anti-entropy thread so it cannot stall every ingest.
    pub max_inline_lag: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            node_deadline: Duration::from_secs(5),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            client: ClientConfig::default(),
            replication_batch: 256,
            read_preference: ReadPreference::LeaderOnly,
            default_score: 3.0,
            lease_duration: Duration::from_millis(1_500),
            election_backoff: Duration::from_millis(100),
            election_timeout: Duration::from_secs(4),
            max_inline_lag: 4_096,
        }
    }
}

/// Why one node leg contributed nothing to a scatter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeFailureKind {
    /// Dial, socket, or frame failure reaching the node.
    Transport(String),
    /// The node answered with an error (or an injected fault fired).
    Remote(String),
    /// The node had not answered when the per-node deadline elapsed.
    Timeout,
    /// The node's circuit breaker was open; the leg was never sent.
    BreakerOpen,
    /// The node rejected a replication ship or fence probe because it
    /// has acknowledged a higher term — this router's leadership is
    /// fenced out. Carries the node's current term.
    StaleTerm(u64),
}

impl fmt::Display for NodeFailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeFailureKind::Transport(msg) => write!(f, "transport: {msg}"),
            NodeFailureKind::Remote(msg) => write!(f, "remote: {msg}"),
            NodeFailureKind::Timeout => write!(f, "timeout"),
            NodeFailureKind::BreakerOpen => write!(f, "breaker open"),
            NodeFailureKind::StaleTerm(current) => {
                write!(f, "stale term (node at term {current})")
            }
        }
    }
}

/// One node's failure in a scatter, attributed to its partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFailure {
    /// Partition index within the shard map.
    pub partition: usize,
    /// The failing node's address.
    pub addr: SocketAddr,
    /// What went wrong.
    pub kind: NodeFailureKind,
}

/// A router-level error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterError {
    /// The session id is unknown to this router.
    UnknownSession(u64),
    /// Every leg the operation depended on failed.
    Unavailable(Vec<NodeFailure>),
    /// An acked write could not reach a majority of a partition's
    /// replicas.
    NoQuorum {
        /// The partition that fell short.
        partition: usize,
        /// Replicas holding the write (leader included).
        copies: usize,
        /// Replicas in the partition.
        replicas: usize,
    },
    /// A node answered something structurally impossible.
    Protocol(String),
    /// The request was malformed before any leg was dispatched.
    InvalidRequest(String),
    /// A term/vote election did not reach a majority within the
    /// election timeout — another router holds the partition (or its
    /// lease has not lapsed). `term` is the highest term observed.
    ElectionLost {
        /// The contested partition.
        partition: usize,
        /// Highest term seen during the failed rounds.
        term: u64,
    },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::UnknownSession(id) => write!(f, "unknown router session {id}"),
            RouterError::Unavailable(failures) => {
                write!(f, "no node answered ({} failures:", failures.len())?;
                for failure in failures {
                    write!(
                        f,
                        " [p{} {} {}]",
                        failure.partition, failure.addr, failure.kind
                    )?;
                }
                write!(f, ")")
            }
            RouterError::NoQuorum {
                partition,
                copies,
                replicas,
            } => write!(
                f,
                "partition {partition}: write reached {copies} of {replicas} replicas (no majority)"
            ),
            RouterError::Protocol(msg) => write!(f, "protocol: {msg}"),
            RouterError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            RouterError::ElectionLost { partition, term } => write!(
                f,
                "partition {partition}: election lost (highest term observed {term})"
            ),
        }
    }
}

impl std::error::Error for RouterError {}

/// The outcome of one scattered query.
#[derive(Debug, Clone)]
pub struct ScatterReport {
    /// The merged [`Response::Neighbors`] with cluster coverage filled
    /// in (`nodes_ok` / `nodes_total`).
    pub response: Response,
    /// Typed attribution for every missing leg.
    pub failures: Vec<NodeFailure>,
}

/// Circuit-breaker state for one node (same state machine as the
/// executor's per-shard breaker: closed → open after `threshold`
/// consecutive failures → one half-open probe after the cooldown).
#[derive(Debug, Default)]
struct BreakerInner {
    consecutive_failures: u32,
    open_until: Option<Instant>,
    probing: bool,
}

#[derive(Debug, Default)]
struct NodeBreaker {
    state: Mutex<BreakerInner>,
}

impl NodeBreaker {
    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether a leg for this node may be dispatched now; in the open
    /// state this admits exactly one half-open probe per cooldown.
    fn admit(&self, now: Instant) -> bool {
        let mut s = self.lock();
        match s.open_until {
            None => true,
            Some(until) if now < until => false,
            Some(_) if s.probing => false,
            Some(_) => {
                s.probing = true;
                true
            }
        }
    }

    /// Whether the breaker is currently closed (read-only: does not
    /// consume the half-open probe). Used by replica selection.
    fn is_closed(&self, now: Instant) -> bool {
        let s = self.lock();
        match s.open_until {
            None => true,
            Some(until) => now >= until && !s.probing,
        }
    }

    fn record_success(&self) {
        let mut s = self.lock();
        s.consecutive_failures = 0;
        s.open_until = None;
        s.probing = false;
    }

    /// Returns `true` when this failure tripped (or re-tripped) the
    /// breaker.
    fn record_failure(&self, now: Instant, threshold: u32, cooldown: Duration) -> bool {
        let mut s = self.lock();
        s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        let trip = s.probing || s.consecutive_failures >= threshold;
        s.probing = false;
        if trip {
            s.open_until = Some(now + cooldown);
        }
        trip
    }
}

/// Work for one node's connection-owning worker thread.
enum NodeJob {
    Call {
        request: Request,
        reply: Sender<Result<Response, String>>,
    },
    Repl {
        payload: Vec<u8>,
        reply: Sender<Result<Vec<u8>, String>>,
    },
}

/// One replica's connection worker plus router-side health state.
struct NodeHandle {
    addr: SocketAddr,
    tx: Sender<NodeJob>,
    breaker: NodeBreaker,
    /// Committed record count the router last observed on this node
    /// (via ingest acks, replication replies, and status probes) —
    /// the basis for stale-bounded replica selection.
    known_total: AtomicU64,
}

struct PartitionState {
    id_base: usize,
    replicas: Vec<NodeHandle>,
    /// Index of the current leader within `replicas` (promotion moves it).
    leader: AtomicUsize,
    /// The replication term this router leads the partition at (0 =
    /// never elected: ships go out unfenced, accepted only by nodes
    /// that have themselves never seen a fenced leader).
    term: AtomicU64,
}

/// Router-side cluster counters, mirrored into
/// [`MetricsSnapshot::cluster`] by [`Router::stats`].
#[derive(Debug, Default)]
struct Counters {
    node_failures: AtomicU64,
    node_timeouts: AtomicU64,
    node_breaker_skips: AtomicU64,
    node_breaker_trips: AtomicU64,
    degraded_responses: AtomicU64,
    promotions: AtomicU64,
    replication_records_shipped: AtomicU64,
    replication_records_applied: AtomicU64,
    stale_reads: AtomicU64,
    elections_won: AtomicU64,
    elections_lost: AtomicU64,
    fenced_stale_ships: AtomicU64,
    anti_entropy_chunks_shipped: AtomicU64,
    ryw_leader_fallbacks: AtomicU64,
}

/// One dispatched (or pre-failed) scatter leg awaiting collection.
struct Leg {
    partition: usize,
    replica: usize,
    rx: Option<Receiver<Result<Response, String>>>,
    /// Failure decided at dispatch time (breaker open, injected fault,
    /// dead worker) — no reply to wait for.
    early: Option<NodeFailureKind>,
    /// Injected `partial:<n>` cap on this leg's neighbor list.
    partial: Option<usize>,
}

/// Router-side state of one user session: the per-node session ids
/// backing it plus its read-your-writes marks.
#[derive(Debug, Clone, Default)]
struct SessionState {
    /// Per-node session ids, keyed by `(partition, replica)`.
    bindings: HashMap<(usize, usize), u64>,
    /// Feedback rounds accepted for this session so far.
    feed_round: u64,
    /// Latest feed round each replica acknowledged. A replica behind
    /// the session's `feed_round` must not serve its queries — it
    /// would answer from a pre-feed retrieval state.
    feed_acked: HashMap<(usize, usize), u64>,
    /// Per-partition committed totals this session observed through
    /// acked ingests: its read floor for corpus visibility.
    ingest_marks: HashMap<usize, u64>,
}

impl SessionState {
    /// Whether `replica` of `partition` (whose router-observed
    /// committed total is `known_total`) satisfies this session's
    /// read-your-writes marks.
    fn ryw_ok(&self, partition: usize, replica: usize, known_total: u64) -> bool {
        let feed_ok = self.feed_round == 0
            || self.feed_acked.get(&(partition, replica)) == Some(&self.feed_round);
        let ingest_ok = self
            .ingest_marks
            .get(&partition)
            .is_none_or(|&mark| known_total >= mark);
        feed_ok && ingest_ok
    }
}

/// Per-replica outcome of a [`Router::sync_partition`] pass: each
/// follower's index paired with its post-sync committed total, or the
/// failure that kept it behind.
pub type SyncOutcome = Vec<(usize, Result<u64, NodeFailure>)>;

/// A multi-node scatter–gather front for a cluster of `qcluster-net`
/// node processes: shard-mapped queries, per-node degradation, and
/// majority-acked WAL-shipping replication with leader promotion.
pub struct Router {
    map: ShardMap,
    config: RouterConfig,
    partitions: Vec<PartitionState>,
    sessions: Mutex<HashMap<u64, SessionState>>,
    next_session: AtomicU64,
    counters: Counters,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Stops and joins the [`Router::start_anti_entropy`] thread on drop.
pub struct AntiEntropyHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Drop for AntiEntropyHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The body of one node worker: owns the (lazily dialed) client for a
/// single node and serializes all router traffic to it.
fn node_worker(addr: SocketAddr, config: ClientConfig, rx: Receiver<NodeJob>) {
    let mut client: Option<Client> = None;
    while let Ok(job) = rx.recv() {
        match job {
            NodeJob::Call { request, reply } => {
                let result = with_client(&mut client, addr, &config, |c| {
                    c.call(&request).map_err(|e| e.to_string())
                });
                let _ = reply.send(result);
            }
            NodeJob::Repl { payload, reply } => {
                let result = with_client(&mut client, addr, &config, |c| {
                    c.repl_call(&payload).map_err(|e| e.to_string())
                });
                let _ = reply.send(result);
            }
        }
    }
}

fn with_client<T>(
    slot: &mut Option<Client>,
    addr: SocketAddr,
    config: &ClientConfig,
    op: impl FnOnce(&mut Client) -> Result<T, String>,
) -> Result<T, String> {
    if slot.is_none() {
        match Client::connect(addr, config.clone()) {
            Ok(c) => *slot = Some(c),
            Err(e) => return Err(format!("connect {addr}: {e}")),
        }
    }
    let result = op(slot.as_mut().expect("just connected"));
    if result.is_err() {
        // Drop the connection: the next job redials with backoff.
        *slot = None;
    }
    result
}

impl Router {
    /// Builds a router over `map`, spawning one connection worker per
    /// replica (connections are dialed lazily on first use, so nodes
    /// may come up after the router).
    ///
    /// # Errors
    ///
    /// [`RouterError::InvalidRequest`] when the OS refuses a worker
    /// thread.
    pub fn new(map: ShardMap, config: RouterConfig) -> Result<Router, RouterError> {
        let mut partitions = Vec::with_capacity(map.num_partitions());
        let mut workers = Vec::with_capacity(map.num_nodes());
        for (p, partition) in map.partitions().iter().enumerate() {
            let mut replicas = Vec::with_capacity(partition.replicas.len());
            for (r, &addr) in partition.replicas.iter().enumerate() {
                let (tx, rx) = channel::unbounded::<NodeJob>();
                let client = config.client.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("qrouter-node-{p}-{r}"))
                    .spawn(move || node_worker(addr, client, rx))
                    .map_err(|e| {
                        RouterError::InvalidRequest(format!("node worker {p}.{r}: {e}"))
                    })?;
                workers.push(handle);
                replicas.push(NodeHandle {
                    addr,
                    tx,
                    breaker: NodeBreaker::default(),
                    known_total: AtomicU64::new(0),
                });
            }
            partitions.push(PartitionState {
                id_base: partition.id_base,
                replicas,
                leader: AtomicUsize::new(0),
                term: AtomicU64::new(0),
            });
        }
        Ok(Router {
            map,
            config,
            partitions,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            counters: Counters::default(),
            workers: Mutex::new(workers),
        })
    }

    /// The topology this router serves.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The current leader replica index of `partition`.
    pub fn leader_of(&self, partition: usize) -> usize {
        self.partitions[partition].leader.load(Ordering::Acquire)
    }

    /// The replication term this router leads `partition` at (0 =
    /// never elected, unfenced legacy mode).
    pub fn term_of(&self, partition: usize) -> u64 {
        self.partitions[partition].term.load(Ordering::Acquire)
    }

    /// The `(term, lease_ms)` pair stamped on this router's fenced
    /// ships for `partition`.
    fn fence_params(&self, partition: usize) -> (u64, u64) {
        let term = self.partitions[partition].term.load(Ordering::Acquire);
        let lease_ms = self.config.lease_duration.as_millis() as u64;
        (term, lease_ms)
    }

    // ------------------------------------------------------------------
    // Leg dispatch / collection
    // ------------------------------------------------------------------

    fn note_failure(&self, partition: usize, replica: usize, kind: &NodeFailureKind) {
        let node = &self.partitions[partition].replicas[replica];
        match kind {
            NodeFailureKind::BreakerOpen => {
                self.counters
                    .node_breaker_skips
                    .fetch_add(1, Ordering::Relaxed);
                return; // skipping is not a health observation
            }
            NodeFailureKind::StaleTerm(_) => {
                // The node is healthy — the *router* is deposed.
                // Counted at the fence site, never held against the
                // node's breaker.
                return;
            }
            NodeFailureKind::Timeout => {
                self.counters.node_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            NodeFailureKind::Transport(_) | NodeFailureKind::Remote(_) => {
                self.counters.node_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        if node.breaker.record_failure(
            Instant::now(),
            self.config.breaker_threshold,
            self.config.breaker_cooldown,
        ) {
            self.counters
                .node_breaker_trips
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts one leg: breaker admission, failpoint evaluation, then a
    /// job on the node's worker. Never blocks on the network.
    fn dispatch_leg(&self, partition: usize, replica: usize, request: Request) -> Leg {
        let node = &self.partitions[partition].replicas[replica];
        let mut leg = Leg {
            partition,
            replica,
            rx: None,
            early: None,
            partial: None,
        };
        if !node.breaker.admit(Instant::now()) {
            self.note_failure(partition, replica, &NodeFailureKind::BreakerOpen);
            leg.early = Some(NodeFailureKind::BreakerOpen);
            return leg;
        }
        // Failpoints: the partition-specific name wins over the generic
        // one; formatting only happens while any failpoint is armed.
        if failpoint::active() {
            let action = failpoint::evaluate_sleepy(&format!("router.node.{partition}"))
                .or_else(|| failpoint::evaluate_sleepy("router.node"));
            match action {
                Some(failpoint::Action::Error(msg)) | Some(failpoint::Action::Panic(msg)) => {
                    let kind = NodeFailureKind::Remote(format!(
                        "injected failure on partition {partition}: {msg}"
                    ));
                    self.note_failure(partition, replica, &kind);
                    leg.early = Some(kind);
                    return leg;
                }
                Some(failpoint::Action::Partial(n)) => leg.partial = Some(n),
                Some(failpoint::Action::Sleep(_)) | None => {}
            }
        }
        let (reply_tx, reply_rx) = channel::unbounded();
        if node
            .tx
            .send(NodeJob::Call {
                request,
                reply: reply_tx,
            })
            .is_err()
        {
            let kind = NodeFailureKind::Transport("node worker exited".into());
            self.note_failure(partition, replica, &kind);
            leg.early = Some(kind);
            return leg;
        }
        leg.rx = Some(reply_rx);
        leg
    }

    /// Waits for one leg's reply until `deadline`, recording breaker
    /// and counter outcomes.
    fn collect_leg(&self, leg: &mut Leg, deadline: Instant) -> Result<Response, NodeFailureKind> {
        if let Some(kind) = leg.early.take() {
            return Err(kind);
        }
        let rx = leg.rx.take().expect("dispatched leg has a receiver");
        let node = &self.partitions[leg.partition].replicas[leg.replica];
        let wait = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(wait) {
            Ok(Ok(Response::Error(e))) => {
                let kind = NodeFailureKind::Remote(e.to_string());
                self.note_failure(leg.partition, leg.replica, &kind);
                Err(kind)
            }
            Ok(Ok(response)) => {
                node.breaker.record_success();
                Ok(response)
            }
            Ok(Err(msg)) => {
                let kind = NodeFailureKind::Transport(msg);
                self.note_failure(leg.partition, leg.replica, &kind);
                Err(kind)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                self.note_failure(leg.partition, leg.replica, &NodeFailureKind::Timeout);
                Err(NodeFailureKind::Timeout)
            }
        }
    }

    /// One synchronous call to a specific replica (dispatch + collect
    /// under a fresh per-node deadline).
    fn call_replica(
        &self,
        partition: usize,
        replica: usize,
        request: Request,
    ) -> Result<Response, NodeFailureKind> {
        let mut leg = self.dispatch_leg(partition, replica, request);
        self.collect_leg(&mut leg, Instant::now() + self.config.node_deadline)
    }

    fn failure(&self, partition: usize, replica: usize, kind: NodeFailureKind) -> NodeFailure {
        NodeFailure {
            partition,
            addr: self.partitions[partition].replicas[replica].addr,
            kind,
        }
    }

    /// Picks the replica serving a query leg for `partition` per the
    /// configured [`ReadPreference`], constrained by the session's
    /// read-your-writes marks: a replica behind the session's latest
    /// feed round or acked ingest total never serves its queries.
    fn read_replica(&self, partition: usize, sess: &SessionState) -> usize {
        let part = &self.partitions[partition];
        let leader = part.leader.load(Ordering::Acquire);
        let now = Instant::now();
        let known = |r: usize| part.replicas[r].known_total.load(Ordering::Acquire);
        if let ReadPreference::StaleOk { max_lag } = self.config.read_preference {
            if !part.replicas[leader].breaker.is_closed(now) {
                let leader_total = known(leader);
                let mut ryw_blocked = false;
                for (r, node) in part.replicas.iter().enumerate() {
                    if r == leader || !node.breaker.is_closed(now) {
                        continue;
                    }
                    if leader_total.saturating_sub(known(r)) > max_lag {
                        continue;
                    }
                    if sess.ryw_ok(partition, r, known(r)) {
                        self.counters.stale_reads.fetch_add(1, Ordering::Relaxed);
                        return r;
                    }
                    ryw_blocked = true;
                }
                if ryw_blocked {
                    // A lag-bounded follower existed but sat behind
                    // this session's marks: read-your-writes wins over
                    // the stale-read preference.
                    self.counters
                        .ryw_leader_fallbacks
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if sess.ryw_ok(partition, leader, known(leader)) {
            return leader;
        }
        // The leader itself is behind the session (it missed a feed
        // broadcast another replica acked): any replica satisfying the
        // marks serves, else degrade to the leader.
        (0..part.replicas.len())
            .find(|&r| r != leader && sess.ryw_ok(partition, r, known(r)))
            .unwrap_or(leader)
    }

    // ------------------------------------------------------------------
    // Sessions
    // ------------------------------------------------------------------

    /// Opens a session on every replica of every partition (followers
    /// included, so failover and stale reads keep the session state)
    /// and returns the router-level session id.
    ///
    /// # Errors
    ///
    /// [`RouterError::Unavailable`] when any partition has *zero*
    /// replicas with the session — such a cluster could never answer.
    pub fn create_session(&self, engine: Option<&str>) -> Result<u64, RouterError> {
        let deadline = Instant::now() + self.config.node_deadline;
        let mut legs = Vec::new();
        for (p, part) in self.partitions.iter().enumerate() {
            for r in 0..part.replicas.len() {
                legs.push(self.dispatch_leg(
                    p,
                    r,
                    Request::CreateSession {
                        engine: engine.map(str::to_string),
                    },
                ));
            }
        }
        let mut sids: HashMap<(usize, usize), u64> = HashMap::new();
        let mut failures = Vec::new();
        for mut leg in legs {
            let (p, r) = (leg.partition, leg.replica);
            match self.collect_leg(&mut leg, deadline) {
                Ok(Response::SessionCreated { session }) => {
                    sids.insert((p, r), session);
                }
                Ok(other) => failures.push(self.failure(
                    p,
                    r,
                    NodeFailureKind::Remote(format!("unexpected response: {other:?}")),
                )),
                Err(kind) => failures.push(self.failure(p, r, kind)),
            }
        }
        for p in 0..self.partitions.len() {
            if !sids.keys().any(|&(sp, _)| sp == p) {
                return Err(RouterError::Unavailable(failures));
            }
        }
        let session = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                session,
                SessionState {
                    bindings: sids,
                    ..SessionState::default()
                },
            );
        Ok(session)
    }

    /// Closes `session` on every replica that holds it.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownSession`] when the router never issued
    /// `session` (node-side close failures are best-effort ignored —
    /// node sessions also expire by idle TTL).
    pub fn close_session(&self, session: u64) -> Result<(), RouterError> {
        let state = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&session)
            .ok_or(RouterError::UnknownSession(session))?;
        let deadline = Instant::now() + self.config.node_deadline;
        let mut legs = Vec::new();
        for (&(p, r), &sid) in &state.bindings {
            legs.push(self.dispatch_leg(p, r, Request::CloseSession { session: sid }));
        }
        for mut leg in legs {
            let _ = self.collect_leg(&mut leg, deadline);
        }
        Ok(())
    }

    fn session_state(&self, session: u64) -> Result<SessionState, RouterError> {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&session)
            .cloned()
            .ok_or(RouterError::UnknownSession(session))
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Scatters one k-NN round to one replica per partition and merges
    /// the partial top-k lists (ids remapped to the global space,
    /// ties by `(distance, id)` — identical to the executor's shard
    /// merge). Missing legs degrade the response instead of failing it;
    /// `nodes_ok / nodes_total` on the returned [`Response::Neighbors`]
    /// carry the coverage.
    ///
    /// # Errors
    ///
    /// - [`RouterError::UnknownSession`] for a session this router
    ///   never issued.
    /// - [`RouterError::Unavailable`] when *zero* partitions answered.
    pub fn query(
        &self,
        session: u64,
        k: usize,
        vector: Option<Vec<f64>>,
        deadline_ms: Option<u64>,
    ) -> Result<ScatterReport, RouterError> {
        let sess = self.session_state(session)?;
        let deadline = Instant::now() + self.config.node_deadline;
        let nodes_total = self.partitions.len();
        let mut failures: Vec<NodeFailure> = Vec::new();
        let mut legs = Vec::new();
        for p in 0..self.partitions.len() {
            let r = self.read_replica(p, &sess);
            let Some(&sid) = sess.bindings.get(&(p, r)) else {
                failures.push(self.failure(
                    p,
                    r,
                    NodeFailureKind::Remote("replica holds no session state".into()),
                ));
                continue;
            };
            legs.push(self.dispatch_leg(
                p,
                r,
                Request::Query {
                    session: sid,
                    k,
                    vector: vector.clone(),
                    deadline_ms,
                },
            ));
        }
        let mut lists: Vec<Vec<Neighbor>> = Vec::with_capacity(legs.len());
        let mut stats = SearchStatsDto {
            nodes_accessed: 0,
            cache_hits: 0,
            disk_reads: 0,
            distance_evaluations: 0,
        };
        let (mut shards_ok, mut shards_total, mut nodes_ok) = (0usize, 0usize, 0usize);
        for mut leg in legs {
            let (p, r) = (leg.partition, leg.replica);
            let partial = leg.partial;
            match self.collect_leg(&mut leg, deadline) {
                Ok(Response::Neighbors {
                    neighbors,
                    stats: leg_stats,
                    shards_ok: leg_shards_ok,
                    shards_total: leg_shards_total,
                    ..
                }) => {
                    let id_base = self.partitions[p].id_base;
                    let mut list: Vec<Neighbor> = neighbors
                        .into_iter()
                        .map(|n| Neighbor {
                            id: id_base + n.id,
                            distance: n.distance,
                        })
                        .collect();
                    if let Some(cap) = partial {
                        list.truncate(cap);
                    }
                    lists.push(list);
                    stats.nodes_accessed += leg_stats.nodes_accessed;
                    stats.cache_hits += leg_stats.cache_hits;
                    stats.disk_reads += leg_stats.disk_reads;
                    stats.distance_evaluations += leg_stats.distance_evaluations;
                    shards_ok += leg_shards_ok;
                    shards_total += leg_shards_total;
                    nodes_ok += 1;
                }
                Ok(other) => {
                    let kind = NodeFailureKind::Remote(format!("unexpected response: {other:?}"));
                    self.note_failure(p, r, &kind);
                    failures.push(self.failure(p, r, kind));
                }
                Err(kind) => failures.push(self.failure(p, r, kind)),
            }
        }
        if nodes_ok == 0 {
            return Err(RouterError::Unavailable(failures));
        }
        let degraded = nodes_ok < nodes_total || shards_ok < shards_total;
        if degraded {
            self.counters
                .degraded_responses
                .fetch_add(1, Ordering::Relaxed);
        }
        let neighbors: Vec<NeighborDto> = merge_top_k(lists, k)
            .into_iter()
            .map(NeighborDto::from)
            .collect();
        failures.sort_by_key(|f| f.partition);
        Ok(ScatterReport {
            response: Response::Neighbors {
                session,
                neighbors,
                stats,
                shards_ok,
                shards_total,
                nodes_ok,
                nodes_total,
                degraded,
            },
            failures,
        })
    }

    // ------------------------------------------------------------------
    // Feedback
    // ------------------------------------------------------------------

    /// Marks global corpus ids as relevant: resolves each id's vector
    /// from its owning partition's leader, then broadcasts the explicit
    /// `(id, vector, score)` triples to every replica holding the
    /// session (so refined queries agree across replicas and survive
    /// failover).
    ///
    /// # Errors
    ///
    /// - [`RouterError::UnknownSession`] / [`RouterError::InvalidRequest`]
    ///   for bad inputs.
    /// - [`RouterError::Unavailable`] when a vector's owner partition
    ///   could not resolve it, or when any partition ends up with zero
    ///   replicas that accepted the feed.
    pub fn feed(
        &self,
        session: u64,
        relevant_ids: &[usize],
        scores: Option<&[f64]>,
    ) -> Result<Response, RouterError> {
        if relevant_ids.is_empty() {
            return Err(RouterError::InvalidRequest("empty feedback".into()));
        }
        if let Some(scores) = scores {
            if scores.len() != relevant_ids.len() {
                return Err(RouterError::InvalidRequest(format!(
                    "{} ids but {} scores",
                    relevant_ids.len(),
                    scores.len()
                )));
            }
        }
        let sess = self.session_state(session)?;

        // Resolve vectors partition by partition (local id = global -
        // id_base), preserving the caller's input order in `points`.
        let mut by_owner: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, &id) in relevant_ids.iter().enumerate() {
            by_owner.entry(self.map.owner(id)).or_default().push(i);
        }
        let mut points: Vec<Option<FeedPointDto>> = vec![None; relevant_ids.len()];
        let mut owners: Vec<(usize, Vec<usize>)> = by_owner.into_iter().collect();
        owners.sort_by_key(|(p, _)| *p);
        for (p, indices) in owners {
            let id_base = self.partitions[p].id_base;
            let leader = self.partitions[p].leader.load(Ordering::Acquire);
            let local_ids: Vec<usize> =
                indices.iter().map(|&i| relevant_ids[i] - id_base).collect();
            let response = self
                .call_replica(p, leader, Request::FetchVectors { ids: local_ids })
                .map_err(|kind| RouterError::Unavailable(vec![self.failure(p, leader, kind)]))?;
            let Response::Vectors { vectors } = response else {
                return Err(RouterError::Protocol(format!(
                    "partition {p} answered FetchVectors with something else"
                )));
            };
            if vectors.len() != indices.len() {
                return Err(RouterError::Protocol(format!(
                    "partition {p} resolved {} of {} vectors",
                    vectors.len(),
                    indices.len()
                )));
            }
            for (&i, vector) in indices.iter().zip(vectors) {
                points[i] = Some(FeedPointDto {
                    id: relevant_ids[i],
                    vector,
                    score: scores.map_or(self.config.default_score, |s| s[i]),
                });
            }
        }
        let points: Vec<FeedPointDto> = points
            .into_iter()
            .map(|p| p.expect("every id resolved by its owner"))
            .collect();

        // Broadcast to every replica holding the session.
        let deadline = Instant::now() + self.config.node_deadline;
        let mut legs = Vec::new();
        for (&(p, r), &sid) in &sess.bindings {
            legs.push(self.dispatch_leg(
                p,
                r,
                Request::FeedPoints {
                    session: sid,
                    points: points.clone(),
                },
            ));
        }
        let mut accepted: Option<Response> = None;
        let mut ok_partitions: Vec<bool> = vec![false; self.partitions.len()];
        let mut acked_replicas: Vec<(usize, usize)> = Vec::new();
        let mut failures = Vec::new();
        for mut leg in legs {
            let (p, r) = (leg.partition, leg.replica);
            match self.collect_leg(&mut leg, deadline) {
                Ok(Response::FeedAccepted {
                    iteration,
                    clusters,
                    ..
                }) => {
                    ok_partitions[p] = true;
                    acked_replicas.push((p, r));
                    accepted.get_or_insert(Response::FeedAccepted {
                        session,
                        iteration,
                        clusters,
                    });
                }
                Ok(other) => failures.push(self.failure(
                    p,
                    r,
                    NodeFailureKind::Remote(format!("unexpected response: {other:?}")),
                )),
                Err(kind) => failures.push(self.failure(p, r, kind)),
            }
        }
        if !ok_partitions.iter().all(|&ok| ok) {
            return Err(RouterError::Unavailable(failures));
        }
        // Advance the session's read-your-writes feed mark: from here
        // on, only replicas that acked this round serve its queries.
        {
            let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(state) = sessions.get_mut(&session) {
                state.feed_round += 1;
                let round = state.feed_round;
                for &(p, r) in &acked_replicas {
                    state.feed_acked.insert((p, r), round);
                }
            }
        }
        Ok(accepted.expect("all partitions accepted"))
    }

    // ------------------------------------------------------------------
    // Ingest + replication
    // ------------------------------------------------------------------

    /// Durably ingests one vector into the cluster: the write lands on
    /// the ingest partition's leader, then the leader's WAL is shipped
    /// to the partition's followers, and the ingest is acked only once
    /// a **majority** of replicas hold it — so a subsequently killed
    /// leader cannot lose an acked write. A leader failure triggers
    /// one promotion + retry before giving up.
    ///
    /// Returns the assigned **global** id and the number of replicas
    /// holding the record at ack time.
    ///
    /// # Errors
    ///
    /// - [`RouterError::Unavailable`] when no replica can take the write.
    /// - [`RouterError::NoQuorum`] when the write landed but could not
    ///   reach a majority (the record may survive; the caller must not
    ///   treat it as acked).
    pub fn ingest(&self, vector: Vec<f64>) -> Result<(usize, usize), RouterError> {
        self.ingest_inner(None, vector)
    }

    /// [`Router::ingest`] attributed to a session: on ack, the
    /// session's per-partition ingest mark advances to the new
    /// committed total, so its subsequent queries are only served by
    /// replicas that already hold the write (read-your-writes).
    ///
    /// # Errors
    ///
    /// As [`Router::ingest`], plus [`RouterError::UnknownSession`].
    pub fn ingest_for_session(
        &self,
        session: u64,
        vector: Vec<f64>,
    ) -> Result<(usize, usize), RouterError> {
        self.session_state(session)?;
        self.ingest_inner(Some(session), vector)
    }

    fn ingest_inner(
        &self,
        session: Option<u64>,
        vector: Vec<f64>,
    ) -> Result<(usize, usize), RouterError> {
        let p = self.map.ingest_partition();
        let part = &self.partitions[p];
        let mut leader = part.leader.load(Ordering::Acquire);
        if failpoint::active()
            && part.term.load(Ordering::Acquire) > 0
            && failpoint::evaluate_sleepy("router.lease.expire").is_some()
        {
            // Injected lease expiry: this router must re-win its term
            // before it may ship again.
            self.elect(p)?;
        }
        // Fence before writing: an empty fenced Apply confirms no
        // other router has won a newer term (and renews the lease). A
        // StaleTerm here means this router is deposed — promotion must
        // not retry its way around the fence.
        let attempt = |leader: usize| -> Result<Response, NodeFailureKind> {
            self.fence_replica(p, leader)?;
            self.call_replica(
                p,
                leader,
                Request::Ingest {
                    vector: vector.clone(),
                },
            )
        };
        let response = match attempt(leader) {
            Ok(response) => response,
            Err(kind @ NodeFailureKind::StaleTerm(_)) => {
                return Err(RouterError::Unavailable(
                    vec![self.failure(p, leader, kind)],
                ));
            }
            Err(first_kind) => {
                // One promotion + retry: a dead leader must not stall
                // ingest while healthy followers hold the data.
                let first = self.failure(p, leader, first_kind);
                leader = self
                    .promote(p)
                    .map_err(|_| RouterError::Unavailable(vec![first.clone()]))?;
                attempt(leader).map_err(|kind| {
                    RouterError::Unavailable(vec![first, self.failure(p, leader, kind)])
                })?
            }
        };
        let Response::Ingested { id, total } = response else {
            return Err(RouterError::Protocol(
                "ingest answered with something else".into(),
            ));
        };
        part.replicas[leader]
            .known_total
            .store(total as u64, Ordering::Release);

        let mut copies = 1usize;
        for r in 0..part.replicas.len() {
            if r == leader {
                continue;
            }
            if self.catch_up(p, leader, r, total as u64).is_ok() {
                copies += 1;
            }
        }
        let majority = part.replicas.len() / 2 + 1;
        if copies < majority {
            return Err(RouterError::NoQuorum {
                partition: p,
                copies,
                replicas: part.replicas.len(),
            });
        }
        if let Some(session) = session {
            let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(state) = sessions.get_mut(&session) {
                let mark = state.ingest_marks.entry(p).or_insert(0);
                *mark = (*mark).max(total as u64);
            }
        }
        Ok((part.id_base + id, copies))
    }

    /// Confirms this router still leads `partition` on `replica` by
    /// sending an empty fenced `Apply` — a pure fence probe that also
    /// renews the replica's leader lease.
    fn fence_replica(&self, partition: usize, replica: usize) -> Result<(), NodeFailureKind> {
        let (term, lease_ms) = self.fence_params(partition);
        match self.repl_exchange(
            partition,
            replica,
            &ReplRequest::Apply {
                term,
                lease_ms,
                frames: Vec::new(),
            },
        )? {
            ReplReply::Applied { total, .. } => {
                self.partitions[partition].replicas[replica]
                    .known_total
                    .store(total, Ordering::Release);
                Ok(())
            }
            ReplReply::StaleTerm { current } => {
                self.counters
                    .fenced_stale_ships
                    .fetch_add(1, Ordering::Relaxed);
                Err(NodeFailureKind::StaleTerm(current))
            }
            _ => Err(NodeFailureKind::Remote(
                "fence probe answered with something else".into(),
            )),
        }
    }

    /// One replication exchange with a specific replica. Replication
    /// traffic bypasses the circuit breakers on purpose: status probes
    /// must work while a node's query breaker is open, or promotion
    /// could never examine a recovering follower.
    fn repl_exchange(
        &self,
        partition: usize,
        replica: usize,
        request: &ReplRequest,
    ) -> Result<ReplReply, NodeFailureKind> {
        let node = &self.partitions[partition].replicas[replica];
        let (reply_tx, reply_rx) = channel::unbounded();
        if node
            .tx
            .send(NodeJob::Repl {
                payload: request.encode(),
                reply: reply_tx,
            })
            .is_err()
        {
            return Err(NodeFailureKind::Transport("node worker exited".into()));
        }
        match reply_rx.recv_timeout(self.config.node_deadline) {
            Ok(Ok(bytes)) => match ReplReply::decode(&bytes) {
                Ok(ReplReply::Err { msg }) => Err(NodeFailureKind::Remote(msg)),
                Ok(reply) => Ok(reply),
                Err(e) => Err(NodeFailureKind::Transport(format!(
                    "replication reply did not parse: {e}"
                ))),
            },
            Ok(Err(msg)) => Err(NodeFailureKind::Transport(msg)),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                Err(NodeFailureKind::Timeout)
            }
        }
    }

    /// Ships the leader's committed records to one follower until the
    /// follower's total reaches `target`, bounded by
    /// [`RouterConfig::max_inline_lag`] (a follower further behind is
    /// left to anti-entropy so it cannot stall the ingest ack path).
    fn catch_up(
        &self,
        partition: usize,
        leader: usize,
        follower: usize,
        target: u64,
    ) -> Result<u64, NodeFailureKind> {
        self.catch_up_inner(
            partition,
            leader,
            follower,
            target,
            Some(self.config.max_inline_lag),
            false,
        )
    }

    /// The catch-up loop proper. Apply is idempotent on the follower,
    /// so a torn exchange is safely re-driven from the follower's
    /// authoritative status. Every `Apply` carries this router's
    /// `(term, lease_ms)`; a `StaleTerm` rejection stops the stream —
    /// this router has been fenced out by a newer leader.
    fn catch_up_inner(
        &self,
        partition: usize,
        leader: usize,
        follower: usize,
        target: u64,
        max_lag: Option<u64>,
        anti_entropy: bool,
    ) -> Result<u64, NodeFailureKind> {
        let (term, lease_ms) = self.fence_params(partition);
        let ReplReply::Status { total, .. } =
            self.repl_exchange(partition, follower, &ReplRequest::Status)?
        else {
            return Err(NodeFailureKind::Remote(
                "status probe answered with something else".into(),
            ));
        };
        let mut follower_total = total;
        if let Some(max_lag) = max_lag {
            let lag = target.saturating_sub(follower_total);
            if lag > max_lag {
                return Err(NodeFailureKind::Remote(format!(
                    "follower {lag} records behind (inline cap {max_lag}); left to anti-entropy"
                )));
            }
        }
        while follower_total < target {
            let batch = self.config.replication_batch.max(1);
            let ReplReply::Chunk {
                total: leader_total,
                frames,
            } = self.repl_exchange(
                partition,
                leader,
                &ReplRequest::Fetch {
                    from: follower_total,
                    max: batch,
                },
            )?
            else {
                return Err(NodeFailureKind::Remote(
                    "fetch answered with something else".into(),
                ));
            };
            let shipped = leader_total
                .min(follower_total + u64::from(batch))
                .saturating_sub(follower_total);
            if shipped == 0 || frames.is_empty() {
                return Err(NodeFailureKind::Remote(format!(
                    "leader has {leader_total} records but shipped none from {follower_total}"
                )));
            }
            self.counters
                .replication_records_shipped
                .fetch_add(shipped, Ordering::Relaxed);
            let (total, applied) = match self.repl_exchange(
                partition,
                follower,
                &ReplRequest::Apply {
                    term,
                    lease_ms,
                    frames,
                },
            )? {
                ReplReply::Applied { total, applied } => (total, applied),
                ReplReply::StaleTerm { current } => {
                    self.counters
                        .fenced_stale_ships
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(NodeFailureKind::StaleTerm(current));
                }
                _ => {
                    return Err(NodeFailureKind::Remote(
                        "apply answered with something else".into(),
                    ));
                }
            };
            self.counters
                .replication_records_applied
                .fetch_add(applied, Ordering::Relaxed);
            if anti_entropy {
                self.counters
                    .anti_entropy_chunks_shipped
                    .fetch_add(1, Ordering::Relaxed);
            }
            if total <= follower_total {
                return Err(NodeFailureKind::Remote(format!(
                    "follower stuck at {total} records"
                )));
            }
            follower_total = total;
        }
        self.partitions[partition].replicas[follower]
            .known_total
            .store(follower_total, Ordering::Release);
        Ok(follower_total)
    }

    /// Brings every follower of `partition` up to the current leader's
    /// committed total, returning the per-replica totals observed.
    /// Useful after a cold start and as a periodic anti-entropy pass.
    ///
    /// # Errors
    ///
    /// [`RouterError::Unavailable`] when the leader's status cannot be
    /// read; per-follower failures are reported in the result vector.
    pub fn sync_partition(&self, partition: usize) -> Result<SyncOutcome, RouterError> {
        let part = &self.partitions[partition];
        let leader = part.leader.load(Ordering::Acquire);
        let ReplReply::Status { total, .. } = self
            .repl_exchange(partition, leader, &ReplRequest::Status)
            .map_err(|kind| {
                RouterError::Unavailable(vec![self.failure(partition, leader, kind)])
            })?
        else {
            return Err(RouterError::Protocol(
                "leader status answered with something else".into(),
            ));
        };
        part.replicas[leader]
            .known_total
            .store(total, Ordering::Release);
        let mut results = Vec::new();
        for r in 0..part.replicas.len() {
            if r == leader {
                continue;
            }
            let outcome = self
                .catch_up_inner(partition, leader, r, total, None, false)
                .map_err(|kind| self.failure(partition, r, kind));
            results.push((r, outcome));
        }
        Ok(results)
    }

    /// Spawns the background anti-entropy thread: every `interval` it
    /// renews this router's leader leases (while it holds a term) and
    /// streams unbounded catch-up to every lagging or rejoining
    /// follower, off the ingest path. Chunks shipped this way are
    /// counted in `ClusterGauges::anti_entropy_chunks_shipped`.
    /// Dropping the returned handle stops and joins the thread.
    ///
    /// # Panics
    ///
    /// Panics when the OS refuses the thread.
    pub fn start_anti_entropy(self: &Arc<Self>, interval: Duration) -> AntiEntropyHandle {
        let router = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("qrouter-anti-entropy".into())
            .spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    for p in 0..router.partitions.len() {
                        router.anti_entropy_pass(p);
                    }
                    // Sleep in slices so a drop of the handle is prompt.
                    let mut slept = Duration::ZERO;
                    while slept < interval && !flag.load(Ordering::SeqCst) {
                        let step = Duration::from_millis(20).min(interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                }
            })
            .expect("spawn anti-entropy thread");
        AntiEntropyHandle {
            stop,
            join: Some(join),
        }
    }

    /// One anti-entropy round for `partition`: lease renewal on every
    /// reachable replica (while this router holds a term), then
    /// unbounded catch-up streaming to every follower behind the
    /// leader. Failures are tolerated — the next round retries.
    fn anti_entropy_pass(&self, partition: usize) {
        let part = &self.partitions[partition];
        if part.term.load(Ordering::Acquire) > 0 {
            for r in 0..part.replicas.len() {
                let _ = self.fence_replica(partition, r);
            }
        }
        let leader = part.leader.load(Ordering::Acquire);
        let Ok(ReplReply::Status { total, .. }) =
            self.repl_exchange(partition, leader, &ReplRequest::Status)
        else {
            return;
        };
        part.replicas[leader]
            .known_total
            .store(total, Ordering::Release);
        for r in 0..part.replicas.len() {
            if r != leader {
                let _ = self.catch_up_inner(partition, leader, r, total, None, true);
            }
        }
    }

    /// Replication status `(total, durable)` of one replica, straight
    /// from the node.
    ///
    /// # Errors
    ///
    /// [`RouterError::Unavailable`] when the replica cannot be reached.
    pub fn replica_status(
        &self,
        partition: usize,
        replica: usize,
    ) -> Result<(u64, u64), RouterError> {
        match self.repl_exchange(partition, replica, &ReplRequest::Status) {
            Ok(ReplReply::Status { total, durable, .. }) => {
                self.partitions[partition].replicas[replica]
                    .known_total
                    .store(total, Ordering::Release);
                Ok((total, durable))
            }
            Ok(_) => Err(RouterError::Protocol(
                "status probe answered with something else".into(),
            )),
            Err(kind) => Err(RouterError::Unavailable(vec![
                self.failure(partition, replica, kind)
            ])),
        }
    }

    /// Consensus position `(term, leased)` of one replica, straight
    /// from the node: the highest term it has acknowledged and whether
    /// a leader lease is currently unexpired on it.
    ///
    /// # Errors
    ///
    /// [`RouterError::Unavailable`] when the replica cannot be reached.
    pub fn replica_consensus(
        &self,
        partition: usize,
        replica: usize,
    ) -> Result<(u64, bool), RouterError> {
        match self.repl_exchange(partition, replica, &ReplRequest::Status) {
            Ok(ReplReply::Status { term, leased, .. }) => Ok((term, leased)),
            Ok(_) => Err(RouterError::Protocol(
                "status probe answered with something else".into(),
            )),
            Err(kind) => Err(RouterError::Unavailable(vec![
                self.failure(partition, replica, kind)
            ])),
        }
    }

    /// Runs one term/vote election for `partition`: probes every
    /// replica's acknowledged term, bids `max + 1`, and wins only when
    /// a **majority** of the partition's replicas grant the vote. Vote
    /// rounds are retried (with [`RouterConfig::election_backoff`]
    /// pauses) until [`RouterConfig::election_timeout`] elapses, so a
    /// dead leader's lease can be outwaited. Returns the won term.
    ///
    /// # Errors
    ///
    /// [`RouterError::ElectionLost`] when no round reached a majority
    /// within the timeout.
    fn elect(&self, partition: usize) -> Result<u64, RouterError> {
        let part = &self.partitions[partition];
        let lease_ms = self.config.lease_duration.as_millis() as u64;
        let majority = part.replicas.len() / 2 + 1;
        let deadline = Instant::now() + self.config.election_timeout;
        let mut observed = part.term.load(Ordering::Acquire);
        loop {
            // The bid must exceed every term already granted anywhere
            // in the partition, or no node can vote for it.
            for r in 0..part.replicas.len() {
                if let Ok(ReplReply::Status { total, term, .. }) =
                    self.repl_exchange(partition, r, &ReplRequest::Status)
                {
                    part.replicas[r].known_total.store(total, Ordering::Release);
                    observed = observed.max(term);
                }
            }
            let candidate = observed + 1;
            let mut grants = 0usize;
            for r in 0..part.replicas.len() {
                match self.repl_exchange(
                    partition,
                    r,
                    &ReplRequest::Vote {
                        term: candidate,
                        lease_ms,
                    },
                ) {
                    Ok(ReplReply::Vote { granted: true, .. }) => grants += 1,
                    Ok(ReplReply::Vote {
                        granted: false,
                        term,
                    }) => {
                        observed = observed.max(term);
                    }
                    Ok(_) | Err(_) => {}
                }
            }
            if grants >= majority {
                part.term.store(candidate, Ordering::Release);
                self.counters.elections_won.fetch_add(1, Ordering::Relaxed);
                return Ok(candidate);
            }
            observed = observed.max(candidate);
            if Instant::now() >= deadline {
                self.counters.elections_lost.fetch_add(1, Ordering::Relaxed);
                return Err(RouterError::ElectionLost {
                    partition,
                    term: observed,
                });
            }
            std::thread::sleep(self.config.election_backoff);
        }
    }

    /// Explicitly assumes leadership of `partition` without moving its
    /// data leader: wins a fresh term from a majority of the replicas,
    /// then fences (and leases) every reachable replica at that term.
    /// This is how a standby or replacement router takes over a
    /// partition; any previously-shipping router is fenced out with
    /// `StaleTerm` from its next ship onward.
    ///
    /// # Errors
    ///
    /// [`RouterError::ElectionLost`] when a majority refuses the vote
    /// (another router holds the term or an unexpired lease).
    pub fn acquire(&self, partition: usize) -> Result<u64, RouterError> {
        let term = self.elect(partition)?;
        let part = &self.partitions[partition];
        for r in 0..part.replicas.len() {
            let _ = self.fence_replica(partition, r);
        }
        Ok(term)
    }

    /// Promotes the most caught-up reachable replica of `partition`
    /// (excluding the current leader) to leader, returning its index.
    /// Promotion is an election, not local bookkeeping: the router
    /// first wins a fresh term from a majority of the partition's
    /// replicas (see [`Router::replica_consensus`]), so two routers
    /// racing a promotion over the same nodes cannot both succeed —
    /// the loser's subsequent ships are fenced with `StaleTerm`.
    ///
    /// # Errors
    ///
    /// - [`RouterError::ElectionLost`] when another router holds the
    ///   term (or an unexpired lease) — the partition keeps its
    ///   current leader.
    /// - [`RouterError::Unavailable`] when the term was won but no
    ///   other replica answers a status probe.
    pub fn promote(&self, partition: usize) -> Result<usize, RouterError> {
        self.elect(partition)?;
        let part = &self.partitions[partition];
        let current = part.leader.load(Ordering::Acquire);
        let mut best: Option<(usize, u64)> = None;
        let mut failures = Vec::new();
        for r in 0..part.replicas.len() {
            if r == current {
                continue;
            }
            match self.repl_exchange(partition, r, &ReplRequest::Status) {
                Ok(ReplReply::Status { total, .. }) => {
                    part.replicas[r].known_total.store(total, Ordering::Release);
                    if best.is_none_or(|(_, t)| total > t) {
                        best = Some((r, total));
                    }
                }
                Ok(_) => failures.push(self.failure(
                    partition,
                    r,
                    NodeFailureKind::Remote("status probe answered with something else".into()),
                )),
                Err(kind) => failures.push(self.failure(partition, r, kind)),
            }
        }
        let Some((winner, _)) = best else {
            return Err(RouterError::Unavailable(failures));
        };
        part.leader.store(winner, Ordering::Release);
        part.replicas[winner].breaker.record_success();
        self.counters.promotions.fetch_add(1, Ordering::Relaxed);
        Ok(winner)
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// The router's own cluster counters, as the gauge struct the
    /// metrics snapshot embeds.
    pub fn cluster_gauges(&self) -> ClusterGauges {
        ClusterGauges {
            nodes_total: self.map.num_nodes() as u64,
            node_failures: self.counters.node_failures.load(Ordering::Relaxed),
            node_timeouts: self.counters.node_timeouts.load(Ordering::Relaxed),
            node_breaker_skips: self.counters.node_breaker_skips.load(Ordering::Relaxed),
            node_breaker_trips: self.counters.node_breaker_trips.load(Ordering::Relaxed),
            degraded_responses: self.counters.degraded_responses.load(Ordering::Relaxed),
            promotions: self.counters.promotions.load(Ordering::Relaxed),
            replication_records_shipped: self
                .counters
                .replication_records_shipped
                .load(Ordering::Relaxed),
            replication_records_applied: self
                .counters
                .replication_records_applied
                .load(Ordering::Relaxed),
            stale_reads: self.counters.stale_reads.load(Ordering::Relaxed),
            terms: self
                .partitions
                .iter()
                .map(|p| p.term.load(Ordering::Relaxed))
                .collect(),
            elections_won: self.counters.elections_won.load(Ordering::Relaxed),
            elections_lost: self.counters.elections_lost.load(Ordering::Relaxed),
            fenced_stale_ships: self.counters.fenced_stale_ships.load(Ordering::Relaxed),
            anti_entropy_chunks_shipped: self
                .counters
                .anti_entropy_chunks_shipped
                .load(Ordering::Relaxed),
            ryw_leader_fallbacks: self.counters.ryw_leader_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Cluster-wide metrics: every reachable partition leader's
    /// snapshot absorbed into one (counters summed, quantiles bounded
    /// by the per-node maxima), with [`MetricsSnapshot::cluster`]
    /// replaced by this router's own counters.
    ///
    /// # Errors
    ///
    /// [`RouterError::Unavailable`] when no node answered.
    pub fn stats(&self) -> Result<MetricsSnapshot, RouterError> {
        let deadline = Instant::now() + self.config.node_deadline;
        let mut legs = Vec::new();
        for (p, part) in self.partitions.iter().enumerate() {
            let leader = part.leader.load(Ordering::Acquire);
            legs.push(self.dispatch_leg(p, leader, Request::Stats));
        }
        let mut merged: Option<MetricsSnapshot> = None;
        let mut failures = Vec::new();
        for mut leg in legs {
            let (p, r) = (leg.partition, leg.replica);
            match self.collect_leg(&mut leg, deadline) {
                Ok(Response::Stats(snapshot)) => match merged.as_mut() {
                    None => merged = Some(*snapshot),
                    Some(agg) => agg.absorb(&snapshot),
                },
                Ok(other) => failures.push(self.failure(
                    p,
                    r,
                    NodeFailureKind::Remote(format!("unexpected response: {other:?}")),
                )),
                Err(kind) => failures.push(self.failure(p, r, kind)),
            }
        }
        let mut snapshot = merged.ok_or(RouterError::Unavailable(failures))?;
        snapshot.cluster = self.cluster_gauges();
        Ok(snapshot)
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        // Dropping the partitions drops every job sender; workers see
        // the closed channel and exit (bounded by the client timeouts
        // if one is mid-call).
        self.partitions.clear();
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}
