//! The shard map: which node processes own which contiguous slice of
//! the global id space, and which replicas hold copies of each slice.
//!
//! A cluster splits the corpus into **partitions** — contiguous,
//! disjoint global-id ranges, exactly like the in-process
//! `ShardedCorpus` splits a corpus into shards. Every partition is
//! served by one or more **replicas** (node processes speaking the
//! `qcluster-net` framed protocol); replica 0 starts as the leader and
//! the router promotes a follower when the leader fails.
//!
//! Each node indexes its slice under *node-local* ids `0..len`; the
//! router translates `global = id_base + local` when merging results
//! and `local = global - id_base` when resolving feedback vectors.

use std::fmt;
use std::net::SocketAddr;

/// A configuration or topology error from the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapError(pub String);

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard map: {}", self.0)
    }
}

impl std::error::Error for MapError {}

/// One contiguous global-id slice and the nodes replicating it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// First global id owned by this partition. The slice extends to
    /// the next partition's `id_base` (the last partition is unbounded
    /// above and therefore also owns live ingests).
    pub id_base: usize,
    /// Node addresses replicating this slice. Index 0 is the initial
    /// leader; the router may promote another replica on failure.
    pub replicas: Vec<SocketAddr>,
}

/// The cluster topology: partitions sorted by `id_base`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    partitions: Vec<Partition>,
}

impl ShardMap {
    /// Validates and builds a map.
    ///
    /// # Errors
    ///
    /// [`MapError`] when `partitions` is empty, a partition has no
    /// replicas, the first `id_base` is not zero, or bases are not
    /// strictly increasing.
    pub fn new(partitions: Vec<Partition>) -> Result<ShardMap, MapError> {
        if partitions.is_empty() {
            return Err(MapError("at least one partition required".into()));
        }
        if partitions[0].id_base != 0 {
            return Err(MapError(format!(
                "first partition must start at id 0, got {}",
                partitions[0].id_base
            )));
        }
        for (i, p) in partitions.iter().enumerate() {
            if p.replicas.is_empty() {
                return Err(MapError(format!("partition {i} has no replicas")));
            }
            if i > 0 && p.id_base <= partitions[i - 1].id_base {
                return Err(MapError(format!(
                    "partition bases must be strictly increasing ({} then {})",
                    partitions[i - 1].id_base,
                    p.id_base
                )));
            }
        }
        Ok(ShardMap { partitions })
    }

    /// Convenience: `n` single-replica partitions over a corpus of
    /// `total` ids, split as evenly as contiguous ranges allow (the
    /// same arithmetic `ShardedCorpus` uses for shards).
    ///
    /// # Errors
    ///
    /// [`MapError`] when `addrs` is empty or `total < addrs.len()`.
    pub fn even(addrs: &[SocketAddr], total: usize) -> Result<ShardMap, MapError> {
        if addrs.is_empty() {
            return Err(MapError("at least one node address required".into()));
        }
        if total < addrs.len() {
            return Err(MapError(format!(
                "{total} ids cannot cover {} partitions",
                addrs.len()
            )));
        }
        let n = addrs.len();
        let base_len = total / n;
        let remainder = total % n;
        let mut partitions = Vec::with_capacity(n);
        let mut id_base = 0usize;
        for (i, &addr) in addrs.iter().enumerate() {
            partitions.push(Partition {
                id_base,
                replicas: vec![addr],
            });
            id_base += base_len + usize::from(i < remainder);
        }
        ShardMap::new(partitions)
    }

    /// The partitions, sorted by `id_base`.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Partition count.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total node processes across all partitions.
    pub fn num_nodes(&self) -> usize {
        self.partitions.iter().map(|p| p.replicas.len()).sum()
    }

    /// Index of the partition owning global id `id` (the last partition
    /// is unbounded above, so every id has an owner).
    pub fn owner(&self, id: usize) -> usize {
        match self.partitions.binary_search_by(|p| p.id_base.cmp(&id)) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// The partition taking live ingests (the last one: its slice is
    /// unbounded above, so freshly assigned ids stay contiguous).
    pub fn ingest_partition(&self) -> usize {
        self.partitions.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        assert!(ShardMap::new(vec![]).is_err());
        assert!(ShardMap::new(vec![Partition {
            id_base: 0,
            replicas: vec![],
        }])
        .is_err());
        assert!(ShardMap::new(vec![Partition {
            id_base: 5,
            replicas: vec![addr(1)],
        }])
        .is_err());
        assert!(ShardMap::new(vec![
            Partition {
                id_base: 0,
                replicas: vec![addr(1)],
            },
            Partition {
                id_base: 0,
                replicas: vec![addr(2)],
            },
        ])
        .is_err());
    }

    #[test]
    fn even_split_matches_sharded_corpus_arithmetic() {
        let map = ShardMap::even(&[addr(1), addr(2), addr(3)], 10).unwrap();
        let bases: Vec<usize> = map.partitions().iter().map(|p| p.id_base).collect();
        // 10 over 3: lengths 4, 3, 3 -> bases 0, 4, 7.
        assert_eq!(bases, vec![0, 4, 7]);
        assert_eq!(map.num_nodes(), 3);
        assert_eq!(map.ingest_partition(), 2);
    }

    #[test]
    fn owner_maps_every_id_to_its_slice() {
        let map = ShardMap::even(&[addr(1), addr(2), addr(3)], 10).unwrap();
        for id in 0..4 {
            assert_eq!(map.owner(id), 0, "id {id}");
        }
        for id in 4..7 {
            assert_eq!(map.owner(id), 1, "id {id}");
        }
        for id in 7..20 {
            assert_eq!(map.owner(id), 2, "id {id} (last partition unbounded)");
        }
    }

    #[test]
    fn even_rejects_degenerate_shapes() {
        // Zero ids can never cover a partition, however many nodes.
        assert!(ShardMap::even(&[addr(1)], 0).is_err());
        assert!(ShardMap::even(&[addr(1), addr(2)], 0).is_err());
        // Fewer ids than nodes would leave an empty partition.
        assert!(ShardMap::even(&[addr(1), addr(2), addr(3)], 2).is_err());
        // No nodes at all.
        assert!(ShardMap::even(&[], 7).is_err());
    }

    proptest::proptest! {
        /// `even` over any valid `(nodes, total)` shape produces the
        /// same contiguous even split `ShardedCorpus` uses: slice
        /// lengths `total / n` with the remainder spread one-per-slice
        /// from the front, bases strictly increasing from 0.
        #[test]
        fn even_split_pins_sharded_corpus_arithmetic(
            n in 1usize..32,
            extra in 0usize..512,
        ) {
            let total = n + extra; // always >= n, so always valid
            let addrs: Vec<SocketAddr> = (0..n).map(|i| addr(1000 + i as u16)).collect();
            let map = ShardMap::even(&addrs, total).unwrap();
            proptest::prop_assert_eq!(map.num_partitions(), n);
            proptest::prop_assert_eq!(map.num_nodes(), n);
            let bases: Vec<usize> = map.partitions().iter().map(|p| p.id_base).collect();
            proptest::prop_assert_eq!(bases[0], 0);
            let (base_len, remainder) = (total / n, total % n);
            let mut expected_base = 0usize;
            for (i, p) in map.partitions().iter().enumerate() {
                proptest::prop_assert_eq!(p.id_base, expected_base, "partition {}", i);
                proptest::prop_assert_eq!(p.replicas.len(), 1);
                expected_base += base_len + usize::from(i < remainder);
            }
            // The slices exactly tile [0, total).
            proptest::prop_assert_eq!(expected_base, total);
        }

        /// A single node owns everything: one partition at base 0, and
        /// `owner` sends every id (bounded or not) to it.
        #[test]
        fn single_node_owns_all_ids(total in 1usize..10_000, probe in 0usize..100_000) {
            let map = ShardMap::even(&[addr(9)], total).unwrap();
            proptest::prop_assert_eq!(map.num_partitions(), 1);
            proptest::prop_assert_eq!(map.partitions()[0].id_base, 0);
            proptest::prop_assert_eq!(map.ingest_partition(), 0);
            proptest::prop_assert_eq!(map.owner(probe), 0);
        }

        /// Underfull shapes (`total < num_nodes`, including zero) are
        /// rejected, never silently producing an empty partition.
        #[test]
        fn underfull_shapes_are_rejected(n in 1usize..32, total in 0usize..32) {
            let addrs: Vec<SocketAddr> = (0..n).map(|i| addr(2000 + i as u16)).collect();
            let result = ShardMap::even(&addrs, total);
            if total < n {
                proptest::prop_assert!(result.is_err());
            } else {
                proptest::prop_assert!(result.is_ok());
            }
        }

        /// `owner` agrees with the slice layout: for every id inside
        /// the corpus, the owning partition's range contains it.
        #[test]
        fn owner_matches_slice_layout(n in 1usize..16, extra in 0usize..256) {
            let total = n + extra;
            let addrs: Vec<SocketAddr> = (0..n).map(|i| addr(3000 + i as u16)).collect();
            let map = ShardMap::even(&addrs, total).unwrap();
            let parts = map.partitions();
            for id in 0..total {
                let owner = map.owner(id);
                proptest::prop_assert!(parts[owner].id_base <= id);
                if owner + 1 < parts.len() {
                    proptest::prop_assert!(id < parts[owner + 1].id_base);
                }
            }
        }
    }
}
