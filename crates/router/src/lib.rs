//! # qcluster-router
//!
//! A multi-node scatter–gather cluster front for qcluster: the
//! single-process service (`qcluster-service` behind `qcluster-net`)
//! scaled out to N node processes, each owning a contiguous slice of
//! the global id space.
//!
//! - [`ShardMap`] — the topology: partitions (`id_base` + replica
//!   addresses), global↔local id arithmetic, ingest ownership.
//! - [`Router`] — scatter–gather queries with per-node deadlines,
//!   circuit breakers, and typed failure attribution
//!   ([`NodeFailureKind`]); session/feedback broadcast; majority-acked
//!   ingest with WAL-shipping replication, follower catch-up, leader
//!   promotion, and stale-bounded replica reads
//!   ([`ReadPreference::StaleOk`]).
//!
//! The router degrades per-node exactly the way the in-process
//! executor degrades per-shard: a healthy cluster answers bit-for-bit
//! identically to a single node holding the whole corpus, and a
//! partial cluster answers exactly over the surviving partitions with
//! `nodes_ok / nodes_total` coverage on the wire.

#![warn(missing_docs)]

pub mod corpus;
pub mod map;
pub mod router;

pub use corpus::{synthetic_point, synthetic_slice};
pub use map::{MapError, Partition, ShardMap};
pub use router::{
    AntiEntropyHandle, NodeFailure, NodeFailureKind, ReadPreference, Router, RouterConfig,
    RouterError, ScatterReport, SyncOutcome,
};
