//! A cluster node process: one `qcluster-service` over a slice of the
//! deterministic synthetic corpus, served on framed TCP.
//!
//! ```text
//! qcluster-node --addr 127.0.0.1:0 --count 400 --dim 8 --base 0 [--dir /path] [--shards 2]
//! ```
//!
//! The node indexes global ids `base..base + count` under node-local
//! ids `0..count` (the router adds `base` back when merging). With
//! `--dir` the service is durable: live ingests WAL-append and the
//! node accepts replication `Apply` frames. On startup the node prints
//! `READY <addr>` on stdout — the chaos tests parse it to learn the
//! bound port — then serves until killed.

use qcluster_net::{Server, ServerConfig};
use qcluster_router::synthetic_slice;
use qcluster_service::{Service, ServiceConfig, StoreConfig};
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    addr: String,
    count: usize,
    dim: usize,
    base: usize,
    dir: Option<PathBuf>,
    shards: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        count: 400,
        dim: 8,
        base: 0,
        dir: None,
        shards: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value()?,
            "--count" => {
                args.count = value()?.parse().map_err(|e| format!("--count: {e}"))?;
            }
            "--dim" => args.dim = value()?.parse().map_err(|e| format!("--dim: {e}"))?,
            "--base" => args.base = value()?.parse().map_err(|e| format!("--base: {e}"))?,
            "--dir" => args.dir = Some(PathBuf::from(value()?)),
            "--shards" => {
                args.shards = value()?.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.count == 0 || args.dim == 0 {
        return Err("--count and --dim must be positive".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("qcluster-node: {msg}");
            eprintln!(
                "usage: qcluster-node --addr HOST:PORT --count N --dim D --base B \
                 [--dir PATH] [--shards S]"
            );
            std::process::exit(2);
        }
    };
    let points = synthetic_slice(args.base, args.count, args.dim);
    let config = ServiceConfig {
        num_shards: args.shards,
        ..ServiceConfig::default()
    };
    let service = match &args.dir {
        Some(dir) => Service::open_durable(dir, &points, config, StoreConfig::default()),
        None => Service::new(&points, config),
    };
    let service = match service {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("qcluster-node: service failed to start: {e}");
            std::process::exit(1);
        }
    };
    let server = match Server::bind(&args.addr, service, ServerConfig::default()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("qcluster-node: bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    // The chaos tests parse this line to learn the bound port.
    println!("READY {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // Serve until killed (the chaos tests SIGKILL this process).
    loop {
        std::thread::park();
    }
}
