//! Cluster chaos: real node *processes* killed with SIGKILL.
//!
//! - `kill_one_node_mid_query_storm_degrades_exactly`: 3 partitions ×
//!   1 replica; one node is SIGKILLed mid-storm; every later answer is
//!   degraded (`nodes_ok = 2/3`) but **exact** over the surviving
//!   partitions, and the failure is attributed.
//! - `leader_kill_loses_no_acked_ingest`: 1 partition × 3 durable
//!   replicas; an ingest storm is majority-acked via WAL shipping; the
//!   leader is SIGKILLed; the router promotes the most caught-up
//!   follower and every acked ingest is still readable.

use qcluster_index::{merge_top_k, EuclideanQuery, LinearScan, Neighbor};
use qcluster_net::{Client, ClientConfig};
use qcluster_router::{
    synthetic_point, synthetic_slice, Partition, Router, RouterConfig, ShardMap,
};
use qcluster_service::{Request, Response};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct NodeProc {
    child: Child,
    addr: SocketAddr,
    /// Durable directory to clean up, when the node had one.
    dir: Option<PathBuf>,
}

impl NodeProc {
    fn spawn(base: usize, count: usize, dim: usize, dir: Option<&Path>) -> NodeProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_qcluster-node"));
        cmd.args([
            "--addr",
            "127.0.0.1:0",
            "--count",
            &count.to_string(),
            "--dim",
            &dim.to_string(),
            "--base",
            &base.to_string(),
        ]);
        if let Some(dir) = dir {
            cmd.arg("--dir").arg(dir);
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn qcluster-node");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("node READY line");
        let addr = line
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("unexpected node banner: {line:?}"))
            .parse()
            .expect("node address");
        NodeProc {
            child,
            addr,
            dir: dir.map(Path::to_path_buf),
        }
    }

    /// SIGKILL: the node gets no chance to flush or say goodbye.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for NodeProc {
    fn drop(&mut self) {
        self.kill();
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qcluster-chaos-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    std::fs::create_dir_all(&dir).expect("chaos temp dir");
    dir
}

/// Generous on a 1-core CI box; dead-node legs still fail fast because
/// a SIGKILLed peer resets the connection.
fn chaos_router_config() -> RouterConfig {
    RouterConfig {
        node_deadline: Duration::from_secs(30),
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
        client: ClientConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(30),
            max_connect_attempts: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            ..ClientConfig::default()
        },
        replication_batch: 16,
        ..RouterConfig::default()
    }
}

fn reference_knn(slices: &[(usize, Vec<Vec<f64>>)], query: &[f64], k: usize) -> Vec<Neighbor> {
    let lists: Vec<Vec<Neighbor>> = slices
        .iter()
        .map(|(id_base, points)| {
            LinearScan::new(points)
                .knn(&EuclideanQuery::new(query.to_vec()), k)
                .into_iter()
                .map(|n| Neighbor {
                    id: id_base + n.id,
                    distance: n.distance,
                })
                .collect()
        })
        .collect();
    merge_top_k(lists, k)
}

fn assert_bit_for_bit(got: &[qcluster_service::NeighborDto], want: &[Neighbor], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: result length");
    for (a, b) in got.iter().zip(want.iter()) {
        assert_eq!(a.id, b.id, "{label}");
        assert_eq!(
            a.distance.to_bits(),
            b.distance.to_bits(),
            "{label}: id {}",
            a.id
        );
    }
}

#[test]
fn kill_one_node_mid_query_storm_degrades_exactly() {
    let (dim, count) = (6usize, 100usize);
    let bases = [0usize, count, 2 * count];
    let mut nodes: Vec<NodeProc> = bases
        .iter()
        .map(|&base| NodeProc::spawn(base, count, dim, None))
        .collect();
    let map = ShardMap::new(
        nodes
            .iter()
            .zip(bases)
            .map(|(node, id_base)| Partition {
                id_base,
                replicas: vec![node.addr],
            })
            .collect(),
    )
    .unwrap();
    let router = Router::new(map, chaos_router_config()).unwrap();
    let session = router.create_session(None).unwrap();

    let slices: Vec<(usize, Vec<Vec<f64>>)> = bases
        .iter()
        .map(|&base| (base, synthetic_slice(base, count, dim)))
        .collect();
    let survivors: Vec<(usize, Vec<Vec<f64>>)> = vec![slices[0].clone(), slices[2].clone()];
    let query_vec = |round: usize| synthetic_point(90_000 + round, dim);
    let k = 12;

    // Healthy storm: full coverage, bit-for-bit vs the whole corpus.
    for round in 0..8 {
        let q = query_vec(round);
        let report = router.query(session, k, Some(q.clone()), None).unwrap();
        let Response::Neighbors {
            neighbors,
            nodes_ok,
            nodes_total,
            degraded,
            ..
        } = report.response
        else {
            panic!("round {round}: expected neighbors")
        };
        assert_eq!((nodes_ok, nodes_total), (3, 3), "healthy round {round}");
        assert!(!degraded, "healthy round {round}");
        assert_bit_for_bit(
            &neighbors,
            &reference_knn(&slices, &q, k),
            &format!("healthy round {round}"),
        );
    }

    // SIGKILL the middle partition's only node mid-storm.
    nodes[1].kill();

    let mut degraded_rounds = 0usize;
    for round in 8..28 {
        let q = query_vec(round);
        let report = router
            .query(session, k, Some(q.clone()), None)
            .expect("degraded, not failed");
        let Response::Neighbors {
            neighbors,
            nodes_ok,
            nodes_total,
            degraded,
            ..
        } = report.response
        else {
            panic!("round {round}: expected neighbors")
        };
        assert_eq!(nodes_total, 3, "round {round}");
        assert_eq!(nodes_ok, 2, "round {round}: exactly the survivors answer");
        assert!(degraded, "round {round}");
        degraded_rounds += 1;
        // Every failure is attributed to partition 1 with a typed kind.
        assert!(
            !report.failures.is_empty() && report.failures.iter().all(|f| f.partition == 1),
            "round {round}: {:?}",
            report.failures
        );
        // Degraded but *correct*: exact over the surviving partitions.
        assert_bit_for_bit(
            &neighbors,
            &reference_knn(&survivors, &q, k),
            &format!("degraded round {round}"),
        );
    }
    assert_eq!(degraded_rounds, 20);

    let gauges = router.cluster_gauges();
    assert_eq!(gauges.nodes_total, 3);
    assert_eq!(gauges.degraded_responses, 20);
    assert!(
        gauges.node_failures + gauges.node_timeouts > 0,
        "the dead node must be attributed: {gauges:?}"
    );
    assert!(
        gauges.node_breaker_trips >= 1,
        "sustained failures must trip the breaker: {gauges:?}"
    );
}

#[test]
fn leader_kill_loses_no_acked_ingest() {
    let (dim, count) = (5usize, 60usize);
    let dirs: Vec<PathBuf> = (0..3).map(|i| fresh_dir(&format!("repl{i}"))).collect();
    let mut nodes: Vec<NodeProc> = dirs
        .iter()
        .map(|dir| NodeProc::spawn(0, count, dim, Some(dir)))
        .collect();
    let map = ShardMap::new(vec![Partition {
        id_base: 0,
        replicas: nodes.iter().map(|n| n.addr).collect(),
    }])
    .unwrap();
    let router = Router::new(map, chaos_router_config()).unwrap();

    // Ingest storm: every ack requires a majority of replicas.
    let ingest_vec = |i: usize| synthetic_point(500_000 + i, dim);
    let mut acked: Vec<(usize, Vec<f64>)> = Vec::new();
    for i in 0..20 {
        let v = ingest_vec(i);
        let (global_id, copies) = router.ingest(v.clone()).unwrap();
        assert_eq!(copies, 3, "ingest {i}: all replicas up, all must hold it");
        assert_eq!(global_id, count + i, "ingest ids stay contiguous");
        acked.push((global_id, v));
    }

    // SIGKILL the leader. Every ingest above was acked.
    let old_leader = router.leader_of(0);
    assert_eq!(old_leader, 0);
    nodes[old_leader].kill();

    // The next ingest fails over: promotion elects the most caught-up
    // follower, the write lands there, and the surviving follower still
    // gives it a majority (2 of 3).
    for i in 20..26 {
        let v = ingest_vec(i);
        let (global_id, copies) = router.ingest(v.clone()).unwrap();
        assert_eq!(copies, 2, "ingest {i}: majority without the dead leader");
        assert_eq!(global_id, count + i);
        acked.push((global_id, v));
    }
    let new_leader = router.leader_of(0);
    assert_ne!(new_leader, old_leader, "promotion must have happened");
    assert_eq!(router.cluster_gauges().promotions, 1);

    // Zero acked-ingest loss: every acked record is on the new leader,
    // byte-for-byte.
    let (total, durable) = router.replica_status(0, new_leader).unwrap();
    assert_eq!(total, (count + acked.len()) as u64);
    assert_eq!(durable, total, "durable node: everything committed");
    let mut client = Client::connect(nodes[new_leader].addr, ClientConfig::default()).unwrap();
    let ids: Vec<usize> = acked.iter().map(|(id, _)| *id).collect();
    let Response::Vectors { vectors } = client
        .call(&Request::FetchVectors { ids })
        .expect("new leader serves acked records")
    else {
        panic!("expected vectors")
    };
    assert_eq!(vectors.len(), acked.len());
    for ((id, want), got) in acked.iter().zip(&vectors) {
        assert_eq!(got, want, "acked ingest {id} must survive the leader kill");
    }

    // Replication bookkeeping: records were shipped and applied.
    let gauges = router.cluster_gauges();
    assert!(
        gauges.replication_records_shipped >= acked.len() as u64,
        "{gauges:?}"
    );
    assert!(
        gauges.replication_records_applied >= acked.len() as u64,
        "{gauges:?}"
    );
}
