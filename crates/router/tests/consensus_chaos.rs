//! Consensus chaos: term fencing, lease-based leadership, and
//! anti-entropy catch-up exercised against real node *processes*.
//!
//! - `split_brain_promotion_converges_and_fences_the_loser`: one
//!   3-replica durable partition; router B takes the term over from
//!   router A (A's next ship is fenced with `StaleTerm`); the leader
//!   node is SIGKILLed and both routers race `promote` — exactly one
//!   wins while the other reports `ElectionLost`; every acked ingest
//!   survives byte-for-byte; the killed node is respawned on its old
//!   address and catches up via the background anti-entropy thread
//!   without blocking a concurrent ingest stream.
//! - `lease_expiry_failpoint_forces_reelection`: the
//!   `router.lease.expire` failpoint makes the router re-win its term
//!   before shipping; disarmed, the term is untouched.
//!
//! Both tests hold the failpoint `test_lock` so an armed failpoint in
//! one cannot leak into the other (the registry is process-global).

use qcluster_failpoint as failpoint;
use qcluster_net::{Client, ClientConfig};
use qcluster_router::{
    synthetic_point, NodeFailureKind, Partition, Router, RouterConfig, RouterError, ShardMap,
};
use qcluster_service::{Request, Response};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct NodeProc {
    child: Child,
    addr: SocketAddr,
    /// Durable directory to clean up, when the node had one.
    dir: Option<PathBuf>,
}

impl NodeProc {
    fn spawn(base: usize, count: usize, dim: usize, dir: Option<&Path>) -> NodeProc {
        NodeProc::spawn_at("127.0.0.1:0", base, count, dim, dir)
    }

    /// Spawns on an explicit address — a rejoining node must come back
    /// on the same port the shard map knows it by.
    fn spawn_at(addr: &str, base: usize, count: usize, dim: usize, dir: Option<&Path>) -> NodeProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_qcluster-node"));
        cmd.args([
            "--addr",
            addr,
            "--count",
            &count.to_string(),
            "--dim",
            &dim.to_string(),
            "--base",
            &base.to_string(),
        ]);
        if let Some(dir) = dir {
            cmd.arg("--dir").arg(dir);
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn qcluster-node");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("node READY line");
        let addr = line
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("unexpected node banner: {line:?}"))
            .parse()
            .expect("node address");
        NodeProc {
            child,
            addr,
            dir: dir.map(Path::to_path_buf),
        }
    }

    /// SIGKILL: the node gets no chance to flush or say goodbye.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for NodeProc {
    fn drop(&mut self) {
        self.kill();
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qcluster-consensus-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    std::fs::create_dir_all(&dir).expect("consensus temp dir");
    dir
}

/// Short leases so deposition and failover fit in a test run; generous
/// transport deadlines so a 1-core CI box never times a live node out.
fn consensus_config(backoff: Duration, timeout: Duration) -> RouterConfig {
    RouterConfig {
        node_deadline: Duration::from_secs(30),
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
        client: ClientConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(30),
            max_connect_attempts: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            ..ClientConfig::default()
        },
        replication_batch: 4,
        lease_duration: Duration::from_millis(400),
        election_backoff: backoff,
        election_timeout: timeout,
        max_inline_lag: 8,
        ..RouterConfig::default()
    }
}

fn fetch_all(addr: SocketAddr, acked: &[(usize, Vec<f64>)], label: &str) {
    let mut client = Client::connect(addr, ClientConfig::default()).unwrap();
    let ids: Vec<usize> = acked.iter().map(|(id, _)| *id).collect();
    let Response::Vectors { vectors } = client
        .call(&Request::FetchVectors { ids })
        .unwrap_or_else(|e| panic!("{label}: fetch acked records: {e}"))
    else {
        panic!("{label}: expected vectors")
    };
    assert_eq!(vectors.len(), acked.len(), "{label}");
    for ((id, want), got) in acked.iter().zip(&vectors) {
        assert_eq!(got, want, "{label}: acked ingest {id} must survive");
    }
}

#[test]
fn split_brain_promotion_converges_and_fences_the_loser() {
    // Serialize against the failpoint test below: every consensus path
    // here must run bit-for-bit clean with failpoints disarmed.
    let _serial = failpoint::test_lock();
    let (dim, count) = (5usize, 60usize);
    let dirs: Vec<PathBuf> = (0..3).map(|i| fresh_dir(&format!("sb{i}"))).collect();
    let mut nodes: Vec<NodeProc> = dirs
        .iter()
        .map(|dir| NodeProc::spawn(0, count, dim, Some(dir)))
        .collect();
    let map = ShardMap::new(vec![Partition {
        id_base: 0,
        replicas: nodes.iter().map(|n| n.addr).collect(),
    }])
    .unwrap();
    // Two routers over the *same* partition: A polls elections fast, B
    // slowly, so the post-kill race converges quickly either way.
    let router_a = Arc::new(
        Router::new(
            map.clone(),
            consensus_config(Duration::from_millis(40), Duration::from_millis(2_000)),
        )
        .unwrap(),
    );
    let router_b = Arc::new(
        Router::new(
            map,
            consensus_config(Duration::from_millis(150), Duration::from_millis(2_000)),
        )
        .unwrap(),
    );

    // Router A takes the partition: term 1, every replica leased.
    assert_eq!(router_a.acquire(0).unwrap(), 1);
    assert_eq!(router_a.term_of(0), 1);
    for r in 0..3 {
        let (term, leased) = router_a.replica_consensus(0, r).unwrap();
        assert_eq!(term, 1, "replica {r} fenced at A's term");
        assert!(leased, "replica {r} holds A's lease");
    }

    let ingest_vec = |i: usize| synthetic_point(500_000 + i, dim);
    let mut acked: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut seq = 0usize;
    for _ in 0..12 {
        let v = ingest_vec(seq);
        let (global_id, copies) = router_a.ingest(v.clone()).unwrap();
        assert_eq!(copies, 3, "all replicas up, all must hold it");
        assert_eq!(global_id, count + seq, "ingest ids stay contiguous");
        acked.push((global_id, v));
        seq += 1;
    }

    // A goes quiet past its lease; router B takes over at term 2. A is
    // now a zombie leader: its very next ship (the fence probe in
    // front of the ingest) is rejected with a typed StaleTerm — no
    // promotion retry writes around the fence.
    std::thread::sleep(Duration::from_millis(650));
    assert_eq!(router_b.acquire(0).unwrap(), 2);
    match router_a.ingest(ingest_vec(9_999)).unwrap_err() {
        RouterError::Unavailable(failures) => assert!(
            failures
                .iter()
                .any(|f| matches!(f.kind, NodeFailureKind::StaleTerm(t) if t >= 2)),
            "zombie ship must be fenced with StaleTerm: {failures:?}"
        ),
        other => panic!("zombie ship must be fenced, got: {other}"),
    }
    assert!(router_a.cluster_gauges().fenced_stale_ships >= 1);
    assert_eq!(
        router_a.cluster_gauges().terms,
        vec![1],
        "the deposed router still believes its old term"
    );

    // B (the rightful leader) keeps ingesting.
    for _ in 0..6 {
        let v = ingest_vec(seq);
        let (global_id, copies) = router_b.ingest(v.clone()).unwrap();
        assert_eq!(copies, 3);
        assert_eq!(global_id, count + seq);
        acked.push((global_id, v));
        seq += 1;
    }

    // SIGKILL the data leader, then race both routers' promotions over
    // the survivors. Exactly one may win; the winner immediately
    // ingests under load (each fenced ship renews its leases) for
    // longer than the loser's election timeout, so the loser can never
    // sneak a term in behind it.
    assert_eq!(router_a.leader_of(0), 0);
    assert_eq!(router_b.leader_of(0), 0);
    nodes[0].kill();
    let barrier = Arc::new(Barrier::new(2));
    let race = |router: Arc<Router>, barrier: Arc<Barrier>, seed: usize| {
        std::thread::spawn(move || {
            barrier.wait();
            let won = router.promote(0);
            let mut acked: Vec<(usize, Vec<f64>)> = Vec::new();
            if won.is_ok() {
                let start = Instant::now();
                let mut i = 0usize;
                while start.elapsed() < Duration::from_millis(2_600) {
                    let v = synthetic_point(seed + i, dim);
                    let (global_id, copies) =
                        router.ingest(v.clone()).expect("winner ingests under load");
                    assert!(copies >= 2, "majority without the dead leader");
                    acked.push((global_id, v));
                    i += 1;
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
            (won, acked)
        })
    };
    let handle_a = race(Arc::clone(&router_a), Arc::clone(&barrier), 700_000);
    let handle_b = race(Arc::clone(&router_b), Arc::clone(&barrier), 800_000);
    let (outcome_a, race_acked_a) = handle_a.join().unwrap();
    let (outcome_b, race_acked_b) = handle_b.join().unwrap();

    let wins = usize::from(outcome_a.is_ok()) + usize::from(outcome_b.is_ok());
    assert_eq!(
        wins, 1,
        "exactly one router may win the race: A={outcome_a:?} B={outcome_b:?}"
    );
    let (winner, loser, loser_outcome) = if outcome_a.is_ok() {
        (&router_a, &router_b, outcome_b)
    } else {
        (&router_b, &router_a, outcome_a)
    };
    assert!(
        matches!(
            loser_outcome,
            Err(RouterError::ElectionLost { partition: 0, .. })
        ),
        "the loser must report a lost election: {loser_outcome:?}"
    );
    assert!(loser.cluster_gauges().elections_lost >= 1);
    assert_eq!(winner.cluster_gauges().promotions, 1);
    assert!(
        winner.term_of(0) >= 3,
        "the race was won past both prior terms: {}",
        winner.term_of(0)
    );
    for (global_id, v) in race_acked_a.into_iter().chain(race_acked_b) {
        assert_eq!(global_id, count + seq, "ids stay contiguous under load");
        acked.push((global_id, v));
        seq += 1;
    }

    // Zero acked-ingest loss: everything — including the writes acked
    // *during* the contested promotion — reads back byte-for-byte from
    // the winner's new leader.
    let leader = winner.leader_of(0);
    assert_ne!(leader, 0, "the dead node cannot lead");
    let (total, durable) = winner.replica_status(0, leader).unwrap();
    assert_eq!(total, (count + acked.len()) as u64);
    assert_eq!(durable, total, "durable node: everything committed");
    fetch_all(nodes[leader].addr, &acked, "winner's leader");

    // Respawn the killed node on its old address over its old
    // directory: it rejoins far behind `max_inline_lag`, so the ingest
    // path skips it and the background anti-entropy thread streams the
    // backlog while a concurrent ingest stream keeps acking.
    let old_addr = nodes[0].addr;
    nodes[0].dir = None; // the respawned process owns the directory now
    nodes[0] = NodeProc::spawn_at(&old_addr.to_string(), 0, count, dim, Some(&dirs[0]));
    assert_eq!(nodes[0].addr, old_addr, "rejoin must keep the old address");
    let anti_entropy = winner.start_anti_entropy(Duration::from_millis(40));
    for i in 0..12 {
        let v = synthetic_point(900_000 + i, dim);
        let (global_id, copies) = winner
            .ingest(v.clone())
            .expect("ingest concurrent with anti-entropy catch-up");
        assert!(copies >= 2, "catch-up must not block the ingest stream");
        assert_eq!(global_id, count + seq);
        acked.push((global_id, v));
        seq += 1;
        std::thread::sleep(Duration::from_millis(20));
    }
    let target = (count + acked.len()) as u64;
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok((total, durable)) = winner.replica_status(0, 0) {
            if total == target {
                assert_eq!(durable, target, "rejoined node commits durably");
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "anti-entropy never caught the rejoined node up to {target}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(anti_entropy);
    let gauges = winner.cluster_gauges();
    assert!(
        gauges.anti_entropy_chunks_shipped >= 1,
        "the backlog must have been shipped off the ingest path: {gauges:?}"
    );
    let (term, _) = winner.replica_consensus(0, 0).unwrap();
    assert_eq!(
        term,
        winner.term_of(0),
        "anti-entropy lease renewal brings the rejoined node onto the winner's term"
    );

    // With the node caught up, the next ingest takes it inline again —
    // and the recovered replica serves every acked record
    // byte-for-byte, proving the anti-entropy stream shipped exactly
    // the WAL.
    let v = ingest_vec(seq);
    let (global_id, copies) = winner.ingest(v.clone()).unwrap();
    assert_eq!(copies, 3, "rejoined node is back in the write path");
    assert_eq!(global_id, count + seq);
    acked.push((global_id, v));
    fetch_all(nodes[0].addr, &acked, "rejoined node");
}

#[test]
fn lease_expiry_failpoint_forces_reelection() {
    let _serial = failpoint::test_lock();
    let (dim, count) = (4usize, 24usize);
    let dir = fresh_dir("lease");
    let node = NodeProc::spawn(0, count, dim, Some(&dir));
    let map = ShardMap::new(vec![Partition {
        id_base: 0,
        replicas: vec![node.addr],
    }])
    .unwrap();
    let router = Router::new(
        map,
        consensus_config(Duration::from_millis(40), Duration::from_millis(2_000)),
    )
    .unwrap();
    assert_eq!(router.acquire(0).unwrap(), 1);
    // Disarmed: shipping never re-elects.
    router.ingest(synthetic_point(1, dim)).unwrap();
    assert_eq!(router.term_of(0), 1);
    {
        let _armed = failpoint::scoped_counted(
            "router.lease.expire",
            failpoint::Action::Error("lease expired".into()),
            0,
            Some(1),
        );
        // The injected expiry forces a re-election before the ship:
        // the router must outwait its own old lease (each refused
        // round bumps the candidate term), then wins and the ingest
        // proceeds fenced at the new term.
        router.ingest(synthetic_point(2, dim)).unwrap();
        assert!(
            router.term_of(0) >= 2,
            "re-election must have bumped the term: {}",
            router.term_of(0)
        );
        assert!(failpoint::hits("router.lease.expire") >= 1);
    }
    // Spent and disarmed: the term is stable again.
    let new_term = router.term_of(0);
    router.ingest(synthetic_point(3, dim)).unwrap();
    assert_eq!(router.term_of(0), new_term);
    let gauges = router.cluster_gauges();
    assert_eq!(gauges.elections_won, 2, "acquire + forced re-election");
    assert_eq!(gauges.terms, vec![new_term]);
}
