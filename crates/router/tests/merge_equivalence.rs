//! Satellite property: the router's partitioned merge is **bit-for-bit**
//! equal to the single-node answer — ids, order, and distance bits —
//! including duplicate-distance id tie-breaks across partition
//! boundaries.
//!
//! The property runs over the router's merge path in-process (partition
//! the corpus at random cuts, search each slice under node-local ids,
//! remap `global = id_base + local`, k-way-merge); the end-to-end test
//! below drives the same property through real `qcluster-net` node
//! processes behind a [`Router`].

use proptest::prelude::*;
use qcluster_index::{merge_top_k, EuclideanQuery, LinearScan, Neighbor};

fn knn(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<Neighbor> {
    LinearScan::new(points).knn(&EuclideanQuery::new(query.to_vec()), k)
}

/// Integer-grid corpora force duplicate points and duplicate distances,
/// so the `(distance, id)` tie-break is exercised constantly.
fn grid_points(dim: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec((0i8..4).prop_map(f64::from), dim), n)
}

proptest! {
    #[test]
    fn partitioned_merge_is_bit_for_bit_single_node(
        pts in grid_points(2, 4..80),
        raw_cuts in prop::collection::vec(0usize..1000, 0..4),
        raw_query in prop::collection::vec(0i8..4, 2),
        k in 1usize..25,
    ) {
        let query: Vec<f64> = raw_query.into_iter().map(f64::from).collect();
        let single = knn(&pts, &query, k);

        // Random partition cuts: dedup and clamp into (0, len).
        let mut cuts: Vec<usize> = raw_cuts
            .into_iter()
            .map(|c| 1 + c % (pts.len().max(2) - 1))
            .collect();
        cuts.push(0);
        cuts.push(pts.len());
        cuts.sort_unstable();
        cuts.dedup();

        let mut lists: Vec<Vec<Neighbor>> = Vec::new();
        for window in cuts.windows(2) {
            let (id_base, end) = (window[0], window[1]);
            let local = knn(&pts[id_base..end], &query, k);
            lists.push(
                local
                    .into_iter()
                    .map(|n| Neighbor { id: id_base + n.id, distance: n.distance })
                    .collect(),
            );
        }
        let merged = merge_top_k(lists, k);

        prop_assert_eq!(merged.len(), single.len());
        for (a, b) in merged.iter().zip(single.iter()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }
}

mod end_to_end {
    use qcluster_net::{ClientConfig, Server, ServerConfig};
    use qcluster_router::{Partition, ReadPreference, Router, RouterConfig, ShardMap};
    use qcluster_service::{dispatch, Request, Response, Service, ServiceConfig, ShardKind};
    use std::net::SocketAddr;
    use std::sync::Arc;
    use std::time::Duration;

    fn grid_corpus(total: usize, dim: usize) -> Vec<Vec<f64>> {
        // Deliberately collision-heavy: every coordinate is one of four
        // values, so duplicate distances cross partition boundaries.
        (0..total)
            .map(|i| (0..dim).map(|j| ((i / (j + 1)) % 4) as f64).collect())
            .collect()
    }

    fn node_service(points: &[Vec<f64>]) -> Arc<Service> {
        Arc::new(
            Service::new(
                points,
                ServiceConfig {
                    num_shards: 2,
                    shard_kind: ShardKind::Tree,
                    ..ServiceConfig::default()
                },
            )
            .unwrap(),
        )
    }

    fn router_config() -> RouterConfig {
        RouterConfig {
            node_deadline: Duration::from_secs(30),
            client: ClientConfig {
                read_timeout: Duration::from_secs(30),
                ..ClientConfig::default()
            },
            read_preference: ReadPreference::LeaderOnly,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn healthy_cluster_matches_single_node_bit_for_bit() {
        let total = 240;
        let dim = 4;
        let points = grid_corpus(total, dim);
        let bases = [0usize, 100, 170];

        // Three in-process node servers, each over its slice.
        let mut servers = Vec::new();
        let mut partitions = Vec::new();
        for (i, &id_base) in bases.iter().enumerate() {
            let end = bases.get(i + 1).copied().unwrap_or(total);
            let service = node_service(&points[id_base..end]);
            let server = Server::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap();
            let addr: SocketAddr = server.local_addr();
            partitions.push(Partition {
                id_base,
                replicas: vec![addr],
            });
            servers.push(server);
        }
        let router = Router::new(ShardMap::new(partitions).unwrap(), router_config()).unwrap();

        // Single-node reference over the whole corpus.
        let reference = node_service(&points);
        let Response::SessionCreated {
            session: ref_session,
        } = dispatch(&reference, Request::CreateSession { engine: None })
        else {
            panic!("reference session")
        };

        let session = router.create_session(None).unwrap();
        for (round, query) in [
            vec![1.0, 2.0, 0.0, 3.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![3.0, 3.0, 3.0, 3.0],
        ]
        .into_iter()
        .enumerate()
        {
            let k = 20;
            let report = router.query(session, k, Some(query.clone()), None).unwrap();
            let Response::Neighbors {
                neighbors: got,
                nodes_ok,
                nodes_total,
                degraded,
                ..
            } = report.response
            else {
                panic!("round {round}: expected neighbors")
            };
            assert_eq!((nodes_ok, nodes_total), (3, 3), "round {round}");
            assert!(!degraded, "round {round}");
            assert!(report.failures.is_empty(), "round {round}");

            let Response::Neighbors {
                neighbors: want, ..
            } = dispatch(
                &reference,
                Request::Query {
                    session: ref_session,
                    k,
                    vector: Some(query),
                    deadline_ms: None,
                },
            )
            else {
                panic!("round {round}: reference query")
            };
            assert_eq!(got.len(), want.len(), "round {round}");
            for (a, b) in got.iter().zip(want.iter()) {
                assert_eq!(a.id, b.id, "round {round}");
                assert_eq!(
                    a.distance.to_bits(),
                    b.distance.to_bits(),
                    "round {round}: id {}",
                    a.id
                );
            }
        }

        // Feedback parity: mark the same global ids on both sides (one
        // id per partition, so the router exercises cross-partition
        // vector resolution), then compare the refined round.
        let marked = vec![5usize, 120, 200];
        let scores = vec![3.0f64, 2.0, 4.0];
        let fed = router.feed(session, &marked, Some(&scores)).unwrap();
        assert!(matches!(fed, Response::FeedAccepted { .. }));
        let Response::FeedAccepted { .. } = dispatch(
            &reference,
            Request::Feed {
                session: ref_session,
                relevant_ids: marked,
                scores: Some(scores),
            },
        ) else {
            panic!("reference feed")
        };
        let report = router.query(session, 15, None, None).unwrap();
        let Response::Neighbors {
            neighbors: got,
            degraded,
            ..
        } = report.response
        else {
            panic!("refined round")
        };
        assert!(!degraded);
        let Response::Neighbors {
            neighbors: want, ..
        } = dispatch(
            &reference,
            Request::Query {
                session: ref_session,
                k: 15,
                vector: None,
                deadline_ms: None,
            },
        )
        else {
            panic!("reference refined round")
        };
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(want.iter()) {
            assert_eq!(a.id, b.id, "refined round");
            assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "refined round");
        }

        router.close_session(session).unwrap();
        drop(router);
        for server in servers {
            server.shutdown();
        }
    }
}
