//! Gaussian samplers for the synthetic-data experiments (paper Sec. 5).
//!
//! The paper evaluates its classification and merging algorithms on
//! synthetic multivariate normals: `z ~ N(0, I)` gives spherical clusters;
//! `y = A·z` with a random linear map `A` gives elliptical clusters with
//! covariance `A·Aᵀ`. Figures 18–19 additionally need raw "random F"
//! values built from ratios of χ² sums of squared normals (paper Eq. 20).

use qcluster_linalg::{Cholesky, Matrix};
use rand::Rng;

/// Standard-normal sampler using the Box–Muller transform.
///
/// Generates pairs of independent `N(0,1)` variates and caches the spare,
/// so consecutive draws cost one `ln`/`sqrt`/`sincos` per two samples.
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with no cached spare.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller: u1 ∈ (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fills a vector with `n` independent standard normal variates.
    pub fn sample_vec<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// A multivariate normal distribution `N(mean, Σ)` sampled through the
/// Cholesky square root of Σ.
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    chol: Option<Cholesky>,
    sampler: GaussianSampler,
}

impl MultivariateNormal {
    /// Builds a sampler for `N(mean, cov)`.
    ///
    /// # Errors
    ///
    /// Propagates the Cholesky error when `cov` is not symmetric positive
    /// definite.
    pub fn new(mean: Vec<f64>, cov: &Matrix) -> qcluster_linalg::Result<Self> {
        let chol = Cholesky::decompose(cov)?;
        Ok(MultivariateNormal {
            mean,
            chol: Some(chol),
            sampler: GaussianSampler::new(),
        })
    }

    /// Builds a spherical `N(mean, I)` sampler (no factorization needed).
    pub fn standard(mean: Vec<f64>) -> Self {
        MultivariateNormal {
            mean,
            chol: None,
            sampler: GaussianSampler::new(),
        }
    }

    /// Dimensionality `p`.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        let p = self.mean.len();
        let z = self.sampler.sample_vec(rng, p);
        match &self.chol {
            Some(ch) => {
                let mut y = ch.apply(&z);
                for (yi, &mi) in y.iter_mut().zip(self.mean.iter()) {
                    *yi += mi;
                }
                y
            }
            None => z
                .iter()
                .zip(self.mean.iter())
                .map(|(&zi, &mi)| zi + mi)
                .collect(),
        }
    }

    /// Draws `n` samples as rows of a matrix.
    pub fn sample_matrix<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Matrix {
        let p = self.dim();
        let mut out = Matrix::zeros(n, p);
        for i in 0..n {
            let s = self.sample(rng);
            out.row_mut(i).copy_from_slice(&s);
        }
        out
    }
}

/// A "random F" value per the paper's Eq. 20:
/// `F = (χ²_{d1}/d1) / (χ²_{d2}/d2)` with each χ² realized as a sum of
/// squared independent `N(0,1)` variates.
///
/// The paper's Eq. 20 omits the dof normalization in its display; we follow
/// the standard F definition (which is what an F quantile compares against),
/// and expose the unnormalized ratio through
/// [`random_chi2_ratio`] for completeness.
pub fn random_f<R: Rng + ?Sized>(rng: &mut R, d1: usize, d2: usize) -> f64 {
    let num = random_chi_squared(rng, d1) / d1 as f64;
    let den = random_chi_squared(rng, d2) / d2 as f64;
    num / den
}

/// The unnormalized ratio `χ²_{d1} / χ²_{d2}` exactly as printed in the
/// paper's Eq. 20.
pub fn random_chi2_ratio<R: Rng + ?Sized>(rng: &mut R, d1: usize, d2: usize) -> f64 {
    random_chi_squared(rng, d1) / random_chi_squared(rng, d2)
}

/// One χ²_k realization: the sum of `k` squared standard normals.
pub fn random_chi_squared<R: Rng + ?Sized>(rng: &mut R, k: usize) -> f64 {
    let mut g = GaussianSampler::new();
    (0..k)
        .map(|_| {
            let z = g.sample(rng);
            z * z
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = GaussianSampler::new();
        let xs = g.sample_vec(&mut rng, 100_000);
        let m = crate::descriptive::mean(&xs).unwrap();
        let v = crate::descriptive::population_variance(&xs).unwrap();
        assert!(m.abs() < 0.02, "mean {m} too far from 0");
        assert!((v - 1.0).abs() < 0.03, "variance {v} too far from 1");
    }

    #[test]
    fn mvn_standard_has_identity_covariance() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut mvn = MultivariateNormal::standard(vec![1.0, -1.0]);
        let data = mvn.sample_matrix(&mut rng, 50_000);
        let c0 = data.column(0);
        let c1 = data.column(1);
        let m0 = crate::descriptive::mean(&c0).unwrap();
        let m1 = crate::descriptive::mean(&c1).unwrap();
        assert!((m0 - 1.0).abs() < 0.03);
        assert!((m1 + 1.0).abs() < 0.03);
        let cov01: f64 = c0
            .iter()
            .zip(c1.iter())
            .map(|(a, b)| (a - m0) * (b - m1))
            .sum::<f64>()
            / c0.len() as f64;
        assert!(cov01.abs() < 0.03);
    }

    #[test]
    fn mvn_with_covariance_reproduces_it() {
        let mut rng = StdRng::seed_from_u64(3);
        let cov = Matrix::from_rows(&[&[2.0, 0.8], &[0.8, 1.0]]);
        let mut mvn = MultivariateNormal::new(vec![0.0, 0.0], &cov).unwrap();
        let data = mvn.sample_matrix(&mut rng, 100_000);
        let c0 = data.column(0);
        let c1 = data.column(1);
        let v0 = crate::descriptive::population_variance(&c0).unwrap();
        let v1 = crate::descriptive::population_variance(&c1).unwrap();
        let m0 = crate::descriptive::mean(&c0).unwrap();
        let m1 = crate::descriptive::mean(&c1).unwrap();
        let cov01: f64 = c0
            .iter()
            .zip(c1.iter())
            .map(|(a, b)| (a - m0) * (b - m1))
            .sum::<f64>()
            / c0.len() as f64;
        assert!((v0 - 2.0).abs() < 0.05, "v0={v0}");
        assert!((v1 - 1.0).abs() < 0.03, "v1={v1}");
        assert!((cov01 - 0.8).abs() < 0.03, "cov01={cov01}");
    }

    #[test]
    fn random_f_mean_matches_theory() {
        // E[F_{d1,d2}] = d2/(d2−2) for d2 > 2.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean_f: f64 = (0..n).map(|_| random_f(&mut rng, 12, 48)).sum::<f64>() / n as f64;
        let want = 48.0 / 46.0;
        assert!((mean_f - want).abs() < 0.05, "mean F {mean_f} vs {want}");
    }

    #[test]
    fn random_chi_squared_mean_is_dof() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let m: f64 = (0..n).map(|_| random_chi_squared(&mut rng, 9)).sum::<f64>() / n as f64;
        assert!((m - 9.0).abs() < 0.15, "chi2 mean {m}");
    }

    #[test]
    fn random_f_quantiles_match_f_distribution() {
        // Empirical 95th percentile of random F should be near F_{12,48}(0.05).
        let mut rng = StdRng::seed_from_u64(17);
        let n = 40_000;
        let mut xs: Vec<f64> = (0..n).map(|_| random_f(&mut rng, 12, 48)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = crate::descriptive::quantile(&xs, 0.95);
        let want = crate::distributions::f_quantile(12, 48, 0.05);
        assert!(
            (p95 - want).abs() < 0.1,
            "empirical {p95} vs theoretical {want}"
        );
    }
}
