//! Descriptive statistics: means, variances, skewness, quantiles.
//!
//! The color-moment feature extractor (paper Sec. 5) computes the mean,
//! standard deviation, and skewness of each HSV channel; the experiment
//! harness additionally needs sample quantiles for the Q–Q plots of
//! Figs. 18–19.

/// Arithmetic mean; returns `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`); returns `None` for empty input.
///
/// The *population* convention matches the moment-based feature extraction,
/// where the image's pixels are the entire population of interest.
pub fn population_variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (divides by `n − 1`); `None` for fewer than
/// two observations.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn population_std(xs: &[f64]) -> Option<f64> {
    population_variance(xs).map(f64::sqrt)
}

/// Third standardized moment (skewness), population convention.
///
/// The paper's color-moment feature uses mean, standard deviation, and
/// skewness per channel. For a constant channel (σ = 0) the skewness is
/// defined here as `0.0`, so degenerate single-color images still produce
/// finite feature vectors. Following the common CBIR formulation the value
/// returned is the **cube root of the third central moment** — it keeps the
/// feature on the same scale as the mean and σ.
pub fn skewness(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let n = xs.len() as f64;
    let third = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    // Signed cube root.
    Some(third.signum() * third.abs().powf(1.0 / 3.0))
}

/// Classical standardized skewness `E[(x−μ)³]/σ³` (population convention).
///
/// Returns `0.0` when σ = 0.
pub fn standardized_skewness(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let sd = population_std(xs)?;
    if sd == 0.0 {
        return Some(0.0);
    }
    let n = xs.len() as f64;
    let third = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    Some(third / sd.powi(3))
}

/// Sample quantile with linear interpolation (type-7, the R default).
///
/// # Panics
///
/// Panics for empty input or `q` outside `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Sorts a copy of the data and returns it — the input for repeated
/// [`quantile`] calls and the Q–Q plot series.
pub fn sorted_copy(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN data"));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(population_variance(&xs), Some(4.0));
        assert_eq!(population_std(&xs), Some(2.0));
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(population_variance(&[]), None);
        assert_eq!(sample_variance(&[1.0]), None);
        assert_eq!(skewness(&[]), None);
    }

    #[test]
    fn skewness_of_symmetric_data_is_zero() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).unwrap().abs() < 1e-12);
        assert!(standardized_skewness(&xs).unwrap().abs() < 1e-12);
    }

    #[test]
    fn skewness_sign_follows_tail() {
        let right = [0.0, 0.0, 0.0, 0.0, 10.0];
        assert!(skewness(&right).unwrap() > 0.0);
        assert!(standardized_skewness(&right).unwrap() > 0.0);
        let left = [0.0, 0.0, 0.0, 0.0, -10.0];
        assert!(skewness(&left).unwrap() < 0.0);
    }

    #[test]
    fn constant_data_has_zero_skewness() {
        let xs = [3.0; 10];
        assert_eq!(skewness(&xs), Some(0.0));
        assert_eq!(standardized_skewness(&xs), Some(0.0));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn sorted_copy_sorts() {
        assert_eq!(sorted_copy(&[3.0, 1.0, 2.0]), vec![1.0, 2.0, 3.0]);
    }
}
