//! χ², F, and standard normal distributions (CDFs and quantiles).
//!
//! The Qcluster engine queries exactly two quantiles:
//!
//! - `χ²_p(α)` — the **effective radius** of a cluster's hyper-ellipsoid
//!   (paper Lemma 1): for significance level α, `100(1−α)%` of a Gaussian
//!   cluster falls inside the ellipsoid of squared Mahalanobis radius
//!   `χ²_p(α)`.
//! - `F_{p, m−p−1}(α)` — the critical value of Hotelling's T² merge test
//!   (paper Eq. 16).
//!
//! Quantiles are computed by monotone bisection on the CDF, which is plenty
//! fast (the engine caches them per `(p, α)`), robust, and accurate to
//! ~1e-12.

use crate::special::{reg_inc_beta, reg_lower_gamma};

/// CDF of the χ² distribution with `k` degrees of freedom.
///
/// `P(X ≤ x) = P(k/2, x/2)` via the regularized lower incomplete gamma.
///
/// # Panics
///
/// Panics for `k == 0` or `x < 0`.
pub fn chi_squared_cdf(k: usize, x: f64) -> f64 {
    assert!(k > 0, "chi-squared needs at least 1 degree of freedom");
    assert!(x >= 0.0, "chi-squared support is x >= 0");
    reg_lower_gamma(k as f64 / 2.0, x / 2.0)
}

/// Upper quantile of χ²_k: the value `x` with `P(X > x) = alpha`.
///
/// This is the paper's effective radius `χ²_p(α)` — as α decreases the
/// radius grows and clusters accept more distant points.
///
/// ```
/// use qcluster_stats::chi_squared_quantile;
/// // The classic table value: χ²₃(0.05) ≈ 7.815.
/// assert!((chi_squared_quantile(3, 0.05) - 7.815).abs() < 1e-3);
/// ```
///
/// # Panics
///
/// Panics for `k == 0` or `alpha` outside `(0, 1)`.
pub fn chi_squared_quantile(k: usize, alpha: f64) -> f64 {
    assert!(k > 0, "chi-squared needs at least 1 degree of freedom");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must be in (0,1), got {alpha}"
    );
    let target = 1.0 - alpha;
    invert_monotone_cdf(|x| chi_squared_cdf(k, x), target, k as f64)
}

/// CDF of the F distribution with `(d1, d2)` degrees of freedom.
///
/// `P(F ≤ x) = I_{d1 x / (d1 x + d2)}(d1/2, d2/2)`.
///
/// # Panics
///
/// Panics for zero degrees of freedom or `x < 0`.
pub fn f_cdf(d1: usize, d2: usize, x: f64) -> f64 {
    assert!(d1 > 0 && d2 > 0, "F distribution needs positive dof");
    assert!(x >= 0.0, "F support is x >= 0");
    let (d1, d2) = (d1 as f64, d2 as f64);
    let t = d1 * x / (d1 * x + d2);
    reg_inc_beta(d1 / 2.0, d2 / 2.0, t)
}

/// Upper quantile of `F_{d1,d2}`: the value `x` with `P(F > x) = alpha`.
///
/// This is the `F_{p, m_i+m_j−p−1}(α)` appearing in the merge test's
/// critical distance `c²` (paper Eq. 16).
///
/// # Panics
///
/// Panics for zero degrees of freedom or `alpha` outside `(0, 1)`.
pub fn f_quantile(d1: usize, d2: usize, alpha: f64) -> f64 {
    assert!(d1 > 0 && d2 > 0, "F distribution needs positive dof");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must be in (0,1), got {alpha}"
    );
    let target = 1.0 - alpha;
    invert_monotone_cdf(|x| f_cdf(d1, d2, x), target, 1.0)
}

/// CDF of the standard normal distribution.
///
/// Uses `Φ(x) = ½ erfc(−x/√2)` with erfc evaluated through the regularized
/// incomplete gamma (`erfc(z) = Q(1/2, z²)` for `z ≥ 0`).
pub fn std_normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    if z >= 0.0 {
        1.0 - 0.5 * (1.0 - reg_lower_gamma(0.5, z * z))
    } else {
        0.5 * (1.0 - reg_lower_gamma(0.5, z * z))
    }
}

/// Quantile of the standard normal distribution.
///
/// # Panics
///
/// Panics for `p` outside `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    if p == 0.5 {
        return 0.0;
    }
    // Bisection on a symmetric bracket; expand until it contains p.
    let mut lo = -1.0;
    let mut hi = 1.0;
    while std_normal_cdf(lo) > p {
        lo *= 2.0;
    }
    while std_normal_cdf(hi) < p {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if std_normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-13 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Inverts a monotone CDF by expanding an upper bracket then bisecting.
///
/// `seed` is a starting guess for the scale of the answer (e.g. the degrees
/// of freedom for χ², whose mean is `k`).
fn invert_monotone_cdf(cdf: impl Fn(f64) -> f64, target: f64, seed: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&target));
    let mut hi = seed.max(1.0);
    let mut iter = 0;
    while cdf(hi) < target {
        hi *= 2.0;
        iter += 1;
        assert!(iter < 2000, "failed to bracket CDF quantile");
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn chi2_cdf_known_values() {
        // Standard table values.
        assert!(close(chi_squared_cdf(1, 3.841), 0.95, 5e-4));
        assert!(close(chi_squared_cdf(2, 5.991), 0.95, 5e-4));
        assert!(close(chi_squared_cdf(10, 18.307), 0.95, 5e-4));
    }

    #[test]
    fn chi2_quantile_matches_tables() {
        assert!(close(chi_squared_quantile(1, 0.05), 3.841, 1e-3));
        assert!(close(chi_squared_quantile(2, 0.05), 5.991, 1e-3));
        assert!(close(chi_squared_quantile(3, 0.05), 7.815, 1e-3));
        assert!(close(chi_squared_quantile(16, 0.05), 26.296, 1e-3));
        assert!(close(chi_squared_quantile(3, 0.01), 11.345, 1e-3));
    }

    #[test]
    fn chi2_quantile_roundtrip() {
        for &k in &[1usize, 3, 9, 16] {
            for &a in &[0.01, 0.05, 0.2, 0.5] {
                let q = chi_squared_quantile(k, a);
                assert!(close(chi_squared_cdf(k, q), 1.0 - a, 1e-10));
            }
        }
    }

    #[test]
    fn chi2_radius_grows_as_alpha_shrinks() {
        // Paper: "As α decreases, a given effective radius increases."
        let r1 = chi_squared_quantile(7, 0.10);
        let r2 = chi_squared_quantile(7, 0.05);
        let r3 = chi_squared_quantile(7, 0.01);
        assert!(r1 < r2 && r2 < r3);
    }

    #[test]
    fn f_cdf_known_values() {
        // F_{1,1} CDF at 1 is 0.5 (ratio of iid chi2's).
        assert!(close(f_cdf(1, 1, 1.0), 0.5, 1e-12));
        // Table: F_{5,10}(0.05) = 3.326
        assert!(close(f_cdf(5, 10, 3.326), 0.95, 5e-4));
    }

    #[test]
    fn f_quantile_matches_tables() {
        assert!(close(f_quantile(5, 10, 0.05), 3.326, 2e-3));
        assert!(close(f_quantile(10, 20, 0.05), 2.348, 2e-3));
        assert!(close(f_quantile(1, 30, 0.05), 4.171, 2e-3));
        // Paper Table 2's "quantile-F" row for dim 12, n=60: F_{12,48}(0.05) ≈ 1.96
        assert!(close(f_quantile(12, 48, 0.05), 1.96, 1e-2));
        // dim 9: F_{9,51}(0.05) ≈ 2.07 ; dim 6: F_{6,54}(0.05) ≈ 2.28 ;
        // dim 3: F_{3,57}(0.05) ≈ 2.77
        assert!(close(f_quantile(9, 51, 0.05), 2.07, 1e-2));
        assert!(close(f_quantile(6, 54, 0.05), 2.28, 1e-2));
        assert!(close(f_quantile(3, 57, 0.05), 2.77, 1e-2));
    }

    #[test]
    fn f_quantile_roundtrip() {
        for &(d1, d2) in &[(3usize, 7usize), (12, 48), (6, 54)] {
            for &a in &[0.01, 0.05, 0.25] {
                let q = f_quantile(d1, d2, a);
                assert!(close(f_cdf(d1, d2, q), 1.0 - a, 1e-10));
            }
        }
    }

    #[test]
    fn normal_cdf_symmetry_and_tables() {
        assert!(close(std_normal_cdf(0.0), 0.5, 1e-14));
        assert!(close(std_normal_cdf(1.96), 0.975, 1e-4));
        assert!(close(std_normal_cdf(-1.96), 0.025, 1e-4));
        for &x in &[0.3, 1.0, 2.5] {
            assert!(close(std_normal_cdf(x) + std_normal_cdf(-x), 1.0, 1e-12));
        }
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let q = std_normal_quantile(p);
            assert!(close(std_normal_cdf(q), p, 1e-10));
        }
    }

    #[test]
    fn chi2_is_f_limit_consistency() {
        // For large d2, d1·F_{d1,d2} → χ²_{d1}.
        let f95 = f_quantile(4, 100_000, 0.05);
        let c95 = chi_squared_quantile(4, 0.05);
        assert!(close(4.0 * f95, c95, 1e-2));
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn rejects_bad_alpha() {
        let _ = chi_squared_quantile(3, 1.5);
    }
}
