//! Statistical substrate for the Qcluster reproduction.
//!
//! The Qcluster engine (Kim & Chung, SIGMOD 2003) is built on classical
//! multivariate statistics:
//!
//! - the **χ² effective radius** (Lemma 1) that decides whether a relevant
//!   image lies inside a cluster's hyper-ellipsoid,
//! - the **F-distribution critical values** behind Hotelling's T² test that
//!   drives cluster merging (Eq. 16),
//! - the **Hotelling two-sample T² statistic** itself (Eq. 14),
//! - Gaussian samplers for the synthetic-data experiments (Sec. 5), and
//! - descriptive moments (mean/σ/skewness) used by the color-moment
//!   feature extractor.
//!
//! Everything is implemented from scratch — log-gamma via a Lanczos
//! approximation, the regularized incomplete gamma and beta functions via
//! series/continued fractions, and quantiles via bracketed bisection.

#![warn(missing_docs)]
// Indexed loops over multiple parallel buffers are the clearest (and often
// fastest) form for the dense numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]

pub mod descriptive;
pub mod distributions;
pub mod hotelling;
pub mod sampling;
pub mod special;

pub use distributions::{chi_squared_cdf, chi_squared_quantile, f_cdf, f_quantile};
pub use hotelling::{hotelling_critical_value, two_sample_t2, T2Test};
pub use sampling::{GaussianSampler, MultivariateNormal};
