//! Hotelling's two-sample T² test (paper Sec. 4.3, Eqs. 14–16).
//!
//! Qcluster merges two clusters when their mean vectors are statistically
//! indistinguishable: it computes
//!
//! ```text
//! T² = (m_i·m_j)/(m_i+m_j) · (x̄_i − x̄_j)ᵀ S_pooled⁻¹ (x̄_i − x̄_j)
//! ```
//!
//! and compares it against the critical distance
//!
//! ```text
//! c² = p(m_i+m_j−2)/(m_i+m_j−p−1) · F_{p, m_i+m_j−p−1}(α).
//! ```
//!
//! If `T² ≤ c²` the null hypothesis μ_i = μ_j stands and the clusters merge.
//! The weights `m_i` are the clusters' relevance-score sums, which the paper
//! substitutes for sample sizes throughout.
//!
//! This module exposes the statistic in three layers:
//!
//! - [`t2_from_quadratic_form`] — when the caller already evaluated the
//!   quadratic form under its covariance scheme (diagonal or full inverse),
//! - [`two_sample_t2`] — from two raw samples (rows of a matrix), used by
//!   the synthetic merging experiments of Tables 2–3, and
//! - [`T2Test`] — statistic, critical value, and the merge/separate verdict.

use crate::distributions::f_quantile;
use qcluster_linalg::{vecops, LinalgError, Matrix};

/// Outcome of one Hotelling T² comparison between two clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct T2Test {
    /// The T² statistic (Eq. 14).
    pub t2: f64,
    /// The critical distance c² (Eq. 16).
    pub c2: f64,
    /// `true` when `T² > c²`, i.e. the means differ and the null
    /// hypothesis μ_i = μ_j is rejected — the clusters must stay separate.
    pub reject: bool,
}

impl T2Test {
    /// `true` when the clusters are statistically indistinguishable and
    /// should merge.
    pub fn should_merge(&self) -> bool {
        !self.reject
    }
}

/// Scales a precomputed quadratic form into the T² statistic:
/// `T² = m_i·m_j/(m_i+m_j) · q` where
/// `q = (x̄_i − x̄_j)ᵀ S_pooled⁻¹ (x̄_i − x̄_j)`.
///
/// # Panics
///
/// Panics for non-positive weights.
pub fn t2_from_quadratic_form(q: f64, m_i: f64, m_j: f64) -> f64 {
    assert!(m_i > 0.0 && m_j > 0.0, "cluster weights must be positive");
    m_i * m_j / (m_i + m_j) * q
}

/// Critical distance `c²` for dimension `p`, weights `m_i`, `m_j`, and
/// significance level `alpha` (Eq. 16).
///
/// The F degrees of freedom are `p` and `m_i + m_j − p − 1`; the weights are
/// rounded to the nearest integer for the second dof as the paper treats
/// them as effective sample sizes.
///
/// Returns `f64::INFINITY` when `m_i + m_j − p − 1 < 1` — with too few
/// effective samples the test has no power and the caller should always
/// merge (or defer the decision).
pub fn hotelling_critical_value(p: usize, m_i: f64, m_j: f64, alpha: f64) -> f64 {
    assert!(p > 0, "dimension must be positive");
    assert!(m_i > 0.0 && m_j > 0.0, "cluster weights must be positive");
    let m = m_i + m_j;
    let d2 = (m - p as f64 - 1.0).round();
    if d2 < 1.0 {
        return f64::INFINITY;
    }
    let scale = p as f64 * (m - 2.0) / (m - p as f64 - 1.0);
    scale * f_quantile(p, d2 as usize, alpha)
}

/// Covariance handling for the pooled matrix in the T² quadratic form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PooledScheme {
    /// Invert the full pooled covariance (paper's "inverse matrix scheme").
    FullInverse,
    /// Keep only the diagonal and invert element-wise (paper's "diagonal
    /// matrix scheme", which avoids singularity and is much cheaper).
    Diagonal,
}

/// Computes the full two-sample T² test from raw samples.
///
/// ```
/// use qcluster_linalg::Matrix;
/// use qcluster_stats::hotelling::{two_sample_t2, PooledScheme};
///
/// // Two clearly separated 2-D samples.
/// let a = Matrix::from_rows(&[&[0.0, 0.0], &[0.1, 0.1], &[-0.1, 0.1], &[0.1, -0.1]]);
/// let b = Matrix::from_rows(&[&[5.0, 5.0], &[5.1, 5.1], &[4.9, 5.1], &[5.1, 4.9]]);
/// let test = two_sample_t2(&a, &b, 0.05, PooledScheme::Diagonal)?;
/// assert!(test.reject, "distant means must be distinguished");
/// # Ok::<(), qcluster_linalg::LinalgError>(())
/// ```
///
/// `xi` and `xj` hold one observation per row (equal column counts). All
/// observations carry unit weight, matching the synthetic experiments of
/// Tables 2–3 where every generated point counts once. The pooled
/// covariance follows Eq. 15 with `v ≡ 1`:
/// `S_pooled = (Σ_i (x−x̄_i)(x−x̄_i)ᵀ + Σ_j (x−x̄_j)(x−x̄_j)ᵀ) / (n_i+n_j)`.
///
/// # Errors
///
/// Propagates [`LinalgError`] when the pooled covariance cannot be
/// inverted under [`PooledScheme::FullInverse`] (e.g. fewer samples than
/// dimensions — exactly the singularity problem the diagonal scheme dodges).
pub fn two_sample_t2(
    xi: &Matrix,
    xj: &Matrix,
    alpha: f64,
    scheme: PooledScheme,
) -> Result<T2Test, LinalgError> {
    let p = xi.cols();
    if xj.cols() != p {
        return Err(LinalgError::DimensionMismatch {
            expected: format!("{p} columns"),
            found: format!("{} columns", xj.cols()),
        });
    }
    let (ni, nj) = (xi.rows(), xj.rows());
    if ni == 0 || nj == 0 {
        return Err(LinalgError::EmptyInput);
    }
    let mean_i = sample_mean(xi);
    let mean_j = sample_mean(xj);

    // Pooled scatter normalized by total weight (Eq. 15 with unit scores).
    let mut pooled = Matrix::zeros(p, p);
    accumulate_scatter(&mut pooled, xi, &mean_i);
    accumulate_scatter(&mut pooled, xj, &mean_j);
    let scale = 1.0 / (ni + nj) as f64;
    let pooled = pooled.scale(scale);

    let diff = vecops::sub(&mean_i, &mean_j);
    let q = match scheme {
        PooledScheme::FullInverse => {
            let inv = pooled.inverse()?;
            let mut scratch = vec![0.0; p];
            vecops::quadratic_form(&diff, &vec![0.0; p], inv.as_slice(), &mut scratch)
        }
        PooledScheme::Diagonal => {
            let weights: Vec<f64> = pooled
                .diagonal()
                .iter()
                .map(|&d| if d > 1e-12 { 1.0 / d } else { 0.0 })
                .collect();
            vecops::weighted_sq_euclidean(&diff, &vec![0.0; p], &weights)
        }
    };
    let (mi, mj) = (ni as f64, nj as f64);
    let t2 = t2_from_quadratic_form(q, mi, mj);
    let c2 = hotelling_critical_value(p, mi, mj, alpha);
    Ok(T2Test {
        t2,
        c2,
        reject: t2 > c2,
    })
}

fn sample_mean(x: &Matrix) -> Vec<f64> {
    let mut m = vec![0.0; x.cols()];
    for i in 0..x.rows() {
        vecops::axpy(&mut m, x.row(i), 1.0);
    }
    let inv = 1.0 / x.rows() as f64;
    for v in &mut m {
        *v *= inv;
    }
    m
}

fn accumulate_scatter(acc: &mut Matrix, x: &Matrix, mean: &[f64]) {
    let p = x.cols();
    let mut centered = vec![0.0; p];
    for i in 0..x.rows() {
        for (c, (&xi, &mi)) in centered.iter_mut().zip(x.row(i).iter().zip(mean.iter())) {
            *c = xi - mi;
        }
        for a in 0..p {
            let ca = centered[a];
            if ca == 0.0 {
                continue;
            }
            for b in 0..p {
                let v = acc.get(a, b) + ca * centered[b];
                acc.set(a, b, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::MultivariateNormal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster(rng: &mut StdRng, mean: Vec<f64>, n: usize) -> Matrix {
        MultivariateNormal::standard(mean).sample_matrix(rng, n)
    }

    #[test]
    fn same_mean_clusters_merge() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = cluster(&mut rng, vec![0.0; 4], 30);
        let b = cluster(&mut rng, vec![0.0; 4], 30);
        let t = two_sample_t2(&a, &b, 0.05, PooledScheme::FullInverse).unwrap();
        assert!(t.should_merge(), "t2={} c2={}", t.t2, t.c2);
    }

    #[test]
    fn distant_clusters_stay_separate() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = cluster(&mut rng, vec![0.0; 4], 30);
        let b = cluster(&mut rng, vec![5.0; 4], 30);
        for scheme in [PooledScheme::FullInverse, PooledScheme::Diagonal] {
            let t = two_sample_t2(&a, &b, 0.05, scheme).unwrap();
            assert!(t.reject, "{scheme:?}: t2={} c2={}", t.t2, t.c2);
        }
    }

    #[test]
    fn diagonal_scheme_agrees_for_spherical_data() {
        // With (near-)diagonal covariance, both schemes should agree in
        // verdict on clearly-separated and clearly-overlapping pairs.
        let mut rng = StdRng::seed_from_u64(3);
        let a = cluster(&mut rng, vec![0.0; 3], 40);
        let b = cluster(&mut rng, vec![0.2; 3], 40);
        let full = two_sample_t2(&a, &b, 0.05, PooledScheme::FullInverse).unwrap();
        let diag = two_sample_t2(&a, &b, 0.05, PooledScheme::Diagonal).unwrap();
        assert_eq!(full.reject, diag.reject);
        assert!((full.t2 - diag.t2).abs() < full.t2.max(1.0));
    }

    #[test]
    fn critical_value_matches_paper_table() {
        // Paper Tables 2–3: dim 12, two clusters of size 30 →
        // c² scale with F_{12,47}; quantile-F column lists ≈1.96 for the
        // F quantile itself.
        let f = f_quantile(12, 47, 0.05);
        assert!((f - 1.97).abs() < 0.03, "F={f}");
        let c2 = hotelling_critical_value(12, 30.0, 30.0, 0.05);
        let scale = 12.0 * 58.0 / 47.0;
        assert!((c2 - scale * f).abs() < 1e-9);
    }

    #[test]
    fn too_few_samples_gives_infinite_critical_value() {
        let c2 = hotelling_critical_value(12, 4.0, 4.0, 0.05);
        assert!(c2.is_infinite());
    }

    #[test]
    fn singular_pooled_covariance_fails_full_scheme_only() {
        // 3 points in 4-D: pooled covariance is singular.
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 1.0, 0.0, 0.0]]);
        let b = Matrix::from_rows(&[&[0.0, 0.0, 1.0, 0.0]]);
        assert!(two_sample_t2(&a, &b, 0.05, PooledScheme::FullInverse).is_err());
        assert!(two_sample_t2(&a, &b, 0.05, PooledScheme::Diagonal).is_ok());
    }

    #[test]
    fn t2_scales_with_weights() {
        let q = 2.0;
        assert!((t2_from_quadratic_form(q, 10.0, 10.0) - 10.0).abs() < 1e-12);
        assert!(t2_from_quadratic_form(q, 100.0, 100.0) > t2_from_quadratic_form(q, 10.0, 10.0));
    }

    #[test]
    fn type_i_error_near_alpha() {
        // With same-mean clusters the rejection rate should be ≈ α.
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 300;
        let mut rejects = 0;
        for _ in 0..trials {
            let a = cluster(&mut rng, vec![0.0; 3], 30);
            let b = cluster(&mut rng, vec![0.0; 3], 30);
            let t = two_sample_t2(&a, &b, 0.05, PooledScheme::FullInverse).unwrap();
            if t.reject {
                rejects += 1;
            }
        }
        let rate = rejects as f64 / trials as f64;
        assert!(rate < 0.12, "type-I error rate {rate} too high");
    }
}
