//! Special functions: log-gamma, regularized incomplete gamma and beta.
//!
//! These are the primitives behind the χ² and F distributions used by the
//! effective radius (paper Lemma 1) and the T² merge test (paper Eq. 16).

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~15 significant digits for `x > 0`.
///
/// # Panics
///
/// Panics for `x <= 0`, where `ln Γ` has poles or is complex.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g=7).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a,x) / Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes' `gammp` strategy).
///
/// # Panics
///
/// Panics for `a <= 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Series representation of `P(a, x)`, valid for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x) = 1 − P(a, x)`,
/// valid for `x ≥ a + 1` (modified Lentz algorithm).
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Natural log of the beta function `B(a, b) = Γ(a)Γ(b)/Γ(a+b)`.
///
/// # Panics
///
/// Panics for non-positive `a` or `b`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Continued-fraction evaluation (modified Lentz) with the symmetry
/// transformation `I_x(a,b) = 1 − I_{1−x}(b,a)` for the fast-converging
/// regime, per Numerical Recipes' `betai`.
///
/// # Panics
///
/// Panics for non-positive `a`/`b` or `x` outside `[0, 1]`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_inc_beta requires a, b > 0");
    assert!(
        (0.0..=1.0).contains(&x),
        "reg_inc_beta requires 0 <= x <= 1"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp()
            * beta_cont_frac(b, a, 1.0 - x)
            / b
    }
}

/// Continued fraction for the incomplete beta function.
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        assert!(close(ln_gamma(1.0), 0.0, 1e-14));
        assert!(close(ln_gamma(2.0), 0.0, 1e-14));
        assert!(close(ln_gamma(5.0), 24.0_f64.ln(), 1e-13));
        assert!(close(ln_gamma(11.0), 3_628_800.0_f64.ln(), 1e-13));
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        let want = std::f64::consts::PI.sqrt().ln();
        assert!(close(ln_gamma(0.5), want, 1e-13));
        // Γ(3/2) = √π/2
        assert!(close(ln_gamma(1.5), want - 2.0_f64.ln(), 1e-13));
    }

    #[test]
    fn reg_lower_gamma_limits() {
        assert_eq!(reg_lower_gamma(2.0, 0.0), 0.0);
        assert!(reg_lower_gamma(2.0, 100.0) > 0.999_999);
    }

    #[test]
    fn reg_lower_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            let want = 1.0 - f64::exp(-x);
            assert!(close(reg_lower_gamma(1.0, x), want, 1e-12), "x={x}");
        }
    }

    #[test]
    fn reg_lower_gamma_chi2_known_value() {
        // χ²₂ CDF at 5.991 ≈ 0.95 (the classic 95% quantile for 2 dof).
        let p = reg_lower_gamma(1.0, 5.991 / 2.0);
        assert!((p - 0.95).abs() < 1e-3);
    }

    #[test]
    fn reg_inc_beta_limits_and_symmetry() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0), 1.0);
        for &x in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let lhs = reg_inc_beta(2.5, 1.5, x);
            let rhs = 1.0 - reg_inc_beta(1.5, 2.5, 1.0 - x);
            assert!(close(lhs, rhs, 1e-12), "x={x}");
        }
    }

    #[test]
    fn reg_inc_beta_uniform_special_case() {
        // I_x(1, 1) = x
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(close(reg_inc_beta(1.0, 1.0, x), x, 1e-13));
        }
    }

    #[test]
    fn reg_inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry.
        assert!(close(reg_inc_beta(2.0, 2.0, 0.5), 0.5, 1e-12));
        // I_x(1, 2) = 1 − (1−x)² = 2x − x²
        let x = 0.3;
        assert!(close(reg_inc_beta(1.0, 2.0, x), 2.0 * x - x * x, 1e-12));
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
