//! Edge-case tests for the statistical substrate: extreme parameters and
//! boundary behavior the paper's engine can actually encounter.

use qcluster_stats::descriptive::{mean, quantile, skewness, sorted_copy};
use qcluster_stats::distributions::{
    chi_squared_cdf, chi_squared_quantile, f_quantile, std_normal_quantile,
};
use qcluster_stats::hotelling::{hotelling_critical_value, t2_from_quadratic_form};
use qcluster_stats::special::{ln_gamma, reg_inc_beta, reg_lower_gamma};

#[test]
fn high_dimensional_effective_radius() {
    // The engine computes χ²_p(α) for feature dims up to 16 and the
    // synthetic experiments up to 12; sanity for much larger p.
    let r = chi_squared_quantile(100, 0.05);
    assert!((r - 124.34).abs() < 0.1, "χ²₁₀₀(0.05) ≈ 124.34, got {r}");
    // Radius ordering holds at scale.
    assert!(chi_squared_quantile(100, 0.01) > r);
}

#[test]
fn extreme_significance_levels() {
    // α near the ends of (0,1) must stay finite and ordered.
    let tight = chi_squared_quantile(3, 0.999);
    let loose = chi_squared_quantile(3, 0.001);
    assert!(tight < loose);
    assert!(tight > 0.0);
    let f_tight = f_quantile(5, 20, 0.999);
    let f_loose = f_quantile(5, 20, 0.001);
    assert!(f_tight < f_loose);
}

#[test]
fn ln_gamma_large_arguments_match_stirling() {
    // Stirling: lnΓ(x) ≈ (x−½)ln x − x + ½ln(2π) for large x.
    for &x in &[50.0f64, 200.0, 1000.0] {
        let stirling = (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln();
        let exact = ln_gamma(x);
        assert!(
            (exact - stirling).abs() / exact.abs() < 1e-3,
            "x={x}: {exact} vs {stirling}"
        );
    }
}

#[test]
fn incomplete_functions_at_tiny_parameters() {
    assert!(reg_lower_gamma(1e-3, 1e-6).is_finite());
    assert!(reg_inc_beta(1e-2, 1e-2, 0.5).is_finite());
    // I_{0.5}(a, a) = 0.5 by symmetry for any a.
    assert!((reg_inc_beta(1e-2, 1e-2, 0.5) - 0.5).abs() < 1e-9);
}

#[test]
fn chi2_cdf_far_tail() {
    assert!(chi_squared_cdf(2, 1000.0) > 1.0 - 1e-12);
    assert_eq!(chi_squared_cdf(2, 0.0), 0.0);
}

#[test]
fn normal_quantile_extremes_are_symmetric() {
    let lo = std_normal_quantile(1e-6);
    let hi = std_normal_quantile(1.0 - 1e-6);
    assert!((lo + hi).abs() < 1e-6, "{lo} vs {hi}");
    assert!(lo < -4.0 && hi > 4.0);
}

#[test]
fn t2_critical_value_boundary_dof() {
    // Exactly p + 2 effective samples: one F dof — huge but finite.
    let c = hotelling_critical_value(3, 3.0, 3.0, 0.05);
    assert!(c.is_finite() && c > 10.0);
    // Below p + 1 effective samples the F dof rounds to zero and the
    // test loses all power.
    assert!(hotelling_critical_value(3, 2.0, 2.3, 0.05).is_infinite());
}

#[test]
fn t2_zero_quadratic_form_is_zero() {
    assert_eq!(t2_from_quadratic_form(0.0, 10.0, 20.0), 0.0);
}

#[test]
fn descriptive_single_element() {
    assert_eq!(mean(&[5.0]), Some(5.0));
    assert_eq!(skewness(&[5.0]), Some(0.0));
    let s = sorted_copy(&[5.0]);
    assert_eq!(quantile(&s, 0.0), 5.0);
    assert_eq!(quantile(&s, 1.0), 5.0);
}

#[test]
fn quantile_handles_duplicates() {
    let s = sorted_copy(&[1.0, 1.0, 1.0, 2.0]);
    assert_eq!(quantile(&s, 0.5), 1.0);
    assert!((quantile(&s, 0.9) - 1.7).abs() < 1e-12);
}
