//! Property-based tests for the statistical substrate.

use proptest::prelude::*;
use qcluster_stats::descriptive::{
    mean, population_variance, quantile, sorted_copy, standardized_skewness,
};
use qcluster_stats::distributions::{
    chi_squared_cdf, chi_squared_quantile, f_cdf, f_quantile, std_normal_cdf, std_normal_quantile,
};
use qcluster_stats::hotelling::{hotelling_critical_value, t2_from_quadratic_form};
use qcluster_stats::special::{ln_gamma, reg_inc_beta, reg_lower_gamma};

proptest! {
    #[test]
    fn ln_gamma_recurrence(x in 0.1..50.0f64) {
        // Γ(x+1) = x·Γ(x)  ⇔  lnΓ(x+1) = ln x + lnΓ(x)
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-10 * (1.0 + lhs.abs()));
    }

    #[test]
    fn incomplete_gamma_is_a_cdf(a in 0.2..20.0f64, x in 0.0..50.0f64, dx in 0.01..5.0f64) {
        let p1 = reg_lower_gamma(a, x);
        let p2 = reg_lower_gamma(a, x + dx);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));
        prop_assert!(p2 + 1e-12 >= p1, "monotone: P({a},{x})={p1} vs P({a},{})={p2}", x + dx);
    }

    #[test]
    fn incomplete_beta_is_a_cdf(a in 0.2..10.0f64, b in 0.2..10.0f64, x in 0.0..1.0f64, dx in 0.0..0.2f64) {
        let hi = (x + dx).min(1.0);
        let p1 = reg_inc_beta(a, b, x);
        let p2 = reg_inc_beta(a, b, hi);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));
        prop_assert!(p2 + 1e-9 >= p1);
    }

    #[test]
    fn beta_symmetry(a in 0.2..10.0f64, b in 0.2..10.0f64, x in 0.001..0.999f64) {
        let lhs = reg_inc_beta(a, b, x);
        let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn chi2_quantile_inverts_cdf(k in 1usize..40, alpha in 0.001..0.5f64) {
        let q = chi_squared_quantile(k, alpha);
        prop_assert!((chi_squared_cdf(k, q) - (1.0 - alpha)).abs() < 1e-8);
    }

    #[test]
    fn f_quantile_inverts_cdf(d1 in 1usize..30, d2 in 2usize..60, alpha in 0.005..0.5f64) {
        let q = f_quantile(d1, d2, alpha);
        prop_assert!((f_cdf(d1, d2, q) - (1.0 - alpha)).abs() < 1e-8);
    }

    #[test]
    fn f_reciprocal_duality(d1 in 1usize..20, d2 in 1usize..20, x in 0.05..20.0f64) {
        // P(F_{d1,d2} ≤ x) = 1 − P(F_{d2,d1} ≤ 1/x)
        let lhs = f_cdf(d1, d2, x);
        let rhs = 1.0 - f_cdf(d2, d1, 1.0 / x);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_inverts_cdf(p in 0.001..0.999f64) {
        let q = std_normal_quantile(p);
        prop_assert!((std_normal_cdf(q) - p).abs() < 1e-8);
    }

    #[test]
    fn variance_is_translation_invariant(
        xs in prop::collection::vec(-100.0..100.0f64, 2..50),
        shift in -50.0..50.0f64,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let v1 = population_variance(&xs).unwrap();
        let v2 = population_variance(&shifted).unwrap();
        prop_assert!((v1 - v2).abs() < 1e-7 * (1.0 + v1));
        let m1 = mean(&xs).unwrap();
        let m2 = mean(&shifted).unwrap();
        prop_assert!((m2 - m1 - shift).abs() < 1e-9 * (1.0 + shift.abs()));
    }

    #[test]
    fn skewness_is_scale_invariant(
        xs in prop::collection::vec(-10.0..10.0f64, 3..40),
        scale in 0.1..10.0f64,
    ) {
        let v = population_variance(&xs).unwrap();
        prop_assume!(v > 1e-6);
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let s1 = standardized_skewness(&xs).unwrap();
        let s2 = standardized_skewness(&scaled).unwrap();
        prop_assert!((s1 - s2).abs() < 1e-6 * (1.0 + s1.abs()));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        xs in prop::collection::vec(-100.0..100.0f64, 1..60),
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
    ) {
        let sorted = sorted_copy(&xs);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&sorted, lo);
        let b = quantile(&sorted, hi);
        prop_assert!(a <= b + 1e-12);
        prop_assert!(a >= sorted[0] - 1e-12);
        prop_assert!(b <= sorted[sorted.len() - 1] + 1e-12);
    }

    #[test]
    fn t2_is_linear_in_quadratic_form(q in 0.0..100.0f64, mi in 1.0..50.0f64, mj in 1.0..50.0f64, s in 0.1..5.0f64) {
        let t1 = t2_from_quadratic_form(q, mi, mj);
        let t2 = t2_from_quadratic_form(q * s, mi, mj);
        prop_assert!((t2 - t1 * s).abs() < 1e-9 * (1.0 + t2.abs()));
    }

    #[test]
    fn critical_value_shrinks_with_mass(p in 1usize..8, extra in 1.0..100.0f64, alpha in 0.01..0.2f64) {
        // More effective samples → tighter critical distance.
        let base = p as f64 + 3.0;
        let c_small = hotelling_critical_value(p, base, base, alpha);
        let c_big = hotelling_critical_value(p, base + extra, base + extra, alpha);
        prop_assert!(c_big <= c_small * 1.0001 || c_small.is_infinite());
    }

    #[test]
    fn critical_value_grows_as_alpha_falls(p in 1usize..8, m in 20.0..80.0f64) {
        let strict = hotelling_critical_value(p, m, m, 0.01);
        let loose = hotelling_critical_value(p, m, m, 0.2);
        prop_assert!(strict >= loose);
    }
}
