//! Property-based tests for the baseline methods and aggregates.

use proptest::prelude::*;
use qcluster_baselines::{
    AggregateKind, Falcon, MindReader, MultiPointQuery, QueryExpansion, QueryPointMovement,
    RetrievalMethod,
};
use qcluster_core::FeedbackPoint;
use qcluster_index::{BoundingBox, QueryDistance};

const DIM: usize = 3;

fn arb_points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-10.0..10.0f64, DIM), n)
}

fn feedback(points: &[Vec<f64>]) -> Vec<FeedbackPoint> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| FeedbackPoint::new(i, p.clone(), 1.0 + (i % 3) as f64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_method_produces_a_valid_query(pts in arb_points(2..20)) {
        let fb = feedback(&pts);
        let mut methods: Vec<Box<dyn RetrievalMethod>> = vec![
            Box::new(QueryPointMovement::new()),
            Box::new(MindReader::new()),
            Box::new(QueryExpansion::new()),
            Box::new(Falcon::new()),
        ];
        for m in &mut methods {
            m.feed(&fb).expect("feeds");
            let q = m.query().expect("compiles");
            prop_assert_eq!(q.dim(), DIM);
            for p in &pts {
                let d = q.distance(p);
                prop_assert!(d.is_finite() && d >= 0.0, "{}: d={d}", m.name());
            }
        }
    }

    #[test]
    fn aggregates_respect_lower_bound_contract(
        pts in arb_points(1..6),
        lo in prop::collection::vec(-10.0..9.0f64, DIM),
        ext in prop::collection::vec(0.1..5.0f64, DIM),
    ) {
        let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let b = BoundingBox::new(lo.clone(), hi.clone());
        for kind in [
            AggregateKind::Convex,
            AggregateKind::MultiFocal,
            AggregateKind::FuzzyOr { alpha: -2.0 },
            AggregateKind::FuzzyOr { alpha: -5.0 },
        ] {
            let q = MultiPointQuery::uniform(pts.clone(), kind);
            let lb = q.min_distance(&b);
            for i in 0..=3 {
                for j in 0..=3 {
                    for k in 0..=3 {
                        let x = [
                            lo[0] + ext[0] * i as f64 / 3.0,
                            lo[1] + ext[1] * j as f64 / 3.0,
                            lo[2] + ext[2] * k as f64 / 3.0,
                        ];
                        prop_assert!(
                            q.distance(&x) >= lb - 1e-9,
                            "{kind:?}: point {x:?} beats bound {lb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fuzzy_or_bounded_by_min_component(pts in arb_points(2..8), x in prop::collection::vec(-10.0..10.0f64, DIM)) {
        // The fuzzy OR with any negative α is at least the minimum
        // component distance and at most the maximum.
        let q = MultiPointQuery::uniform(pts.clone(), AggregateKind::FuzzyOr { alpha: -3.0 });
        let comps: Vec<f64> = pts
            .iter()
            .map(|c| qcluster_linalg::vecops::sq_euclidean(&x, c))
            .collect();
        let min = comps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = comps.iter().cloned().fold(0.0_f64, f64::max);
        let d = q.distance(&x);
        prop_assert!(d >= min - 1e-9, "d={d} < min={min}");
        prop_assert!(d <= max + 1e-9, "d={d} > max={max}");
    }

    #[test]
    fn qpm_point_is_inside_convex_hull_box(pts in arb_points(1..15)) {
        let mut m = QueryPointMovement::new();
        m.feed(&feedback(&pts)).expect("feeds");
        let c = m.current_point().expect("point exists");
        for d in 0..DIM {
            let lo = pts.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
            let hi = pts.iter().map(|p| p[d]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(c[d] >= lo - 1e-9 && c[d] <= hi + 1e-9);
        }
    }

    #[test]
    fn duplicate_feedback_is_idempotent(pts in arb_points(2..10)) {
        let fb = feedback(&pts);
        let mut once = Falcon::new();
        once.feed(&fb).expect("feeds");
        let mut twice = Falcon::new();
        twice.feed(&fb).expect("feeds");
        twice.feed(&fb).expect("feeds");
        prop_assert_eq!(once.num_good_points(), twice.num_good_points());
        let (q1, q2) = (once.query().unwrap(), twice.query().unwrap());
        let probe = vec![0.5; DIM];
        prop_assert!((q1.distance(&probe) - q2.distance(&probe)).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_initial_state(pts in arb_points(1..10)) {
        let fb = feedback(&pts);
        let mut methods: Vec<Box<dyn RetrievalMethod>> = vec![
            Box::new(QueryPointMovement::new()),
            Box::new(MindReader::new()),
            Box::new(QueryExpansion::new()),
            Box::new(Falcon::new()),
        ];
        for m in &mut methods {
            m.feed(&fb).expect("feeds");
            m.reset();
            prop_assert!(m.query().is_err(), "{} kept state after reset", m.name());
        }
    }
}
