//! Baseline relevance-feedback methods the paper compares Qcluster against.
//!
//! - [`QueryPointMovement`] — MARS's re-weighted Rocchio refinement
//!   (paper reference \[15\]): one moving query point with per-dimension
//!   weights inversely proportional to the relevant points' variance.
//! - [`MindReader`] — Ishikawa et al.'s generalized Euclidean refinement
//!   (reference \[11\]): the same single moving point but with a full
//!   inverse-covariance quadratic form, handling arbitrarily *oriented*
//!   ellipsoids.
//! - [`QueryExpansion`] — MARS's multipoint query expansion (reference
//!   \[13\]): cluster the relevant points, keep the cluster centroids as
//!   representatives, and rank by the **convex** (weighted arithmetic
//!   mean) combination of per-representative distances — "a single large
//!   contour … to cover all query points", which is exactly what fails on
//!   disjunctive queries (Fig. 1(b) vs 1(c)).
//! - [`Falcon`] — Wu et al.'s aggregate dissimilarity (reference \[20\]):
//!   every relevant point is a query point and distances combine through
//!   the α-norm fuzzy-OR with α < 0.
//!
//! All methods implement [`RetrievalMethod`], so the evaluation harness
//! can iterate `feed → query → k-NN` uniformly across approaches.

#![warn(missing_docs)]

pub mod aggregate;
pub mod falcon;
pub mod method;
pub mod mindreader;
pub mod qex;
pub mod qpm;

pub use aggregate::{AggregateKind, MultiPointQuery};
pub use falcon::Falcon;
pub use method::RetrievalMethod;
pub use mindreader::MindReader;
pub use qex::QueryExpansion;
pub use qpm::QueryPointMovement;
