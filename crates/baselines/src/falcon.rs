//! FALCON (paper reference \[20\]).
//!
//! Wu, Faloutsos, Sycara & Payne's "feedback adaptive loop": **every**
//! relevant point is kept as a query point (no clustering, no summaries),
//! and dissimilarity aggregates through the α-norm fuzzy OR
//! `d_G(x) = ( (1/|G|) Σ d(g_i, x)^α )^{1/α}` with `α < 0` — their
//! experiments favor α ≈ −5. The Qcluster paper criticizes the model as
//! "ad hoc heuristics" whose cost grows with the relevant set because
//! "all relevant points are query points"; this implementation preserves
//! both properties faithfully.

use crate::aggregate::{AggregateKind, MultiPointQuery};
use crate::method::{validate, RetrievalMethod};
use qcluster_core::{CoreError, FeedbackPoint, Result};
use qcluster_index::QueryDistance;

/// FALCON's default exponent.
pub const FALCON_DEFAULT_ALPHA: f64 = -5.0;

/// The FALCON aggregate-dissimilarity method.
#[derive(Debug, Clone)]
pub struct Falcon {
    relevant: Vec<FeedbackPoint>,
    dim: Option<usize>,
    alpha: f64,
}

impl Default for Falcon {
    fn default() -> Self {
        Self::new()
    }
}

impl Falcon {
    /// Creates FALCON with its default α = −5.
    pub fn new() -> Self {
        Falcon {
            relevant: Vec::new(),
            dim: None,
            alpha: FALCON_DEFAULT_ALPHA,
        }
    }

    /// Overrides the aggregate exponent (must be negative).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha < 0.0, "FALCON's exponent must be negative");
        self.alpha = alpha;
        self
    }

    /// Number of accumulated "good" points.
    pub fn num_good_points(&self) -> usize {
        self.relevant.len()
    }
}

impl RetrievalMethod for Falcon {
    fn name(&self) -> &'static str {
        "falcon"
    }

    fn feed(&mut self, relevant: &[FeedbackPoint]) -> Result<()> {
        let dim = validate(relevant, self.dim)?;
        self.dim = Some(dim);
        for p in relevant {
            if !self.relevant.iter().any(|q| q.id == p.id) {
                self.relevant.push(p.clone());
            }
        }
        Ok(())
    }

    fn query(&self) -> Result<Box<dyn QueryDistance>> {
        if self.relevant.is_empty() {
            return Err(CoreError::NoClusters);
        }
        let centers = self.relevant.iter().map(|p| p.vector.clone()).collect();
        Ok(Box::new(MultiPointQuery::uniform(
            centers,
            AggregateKind::FuzzyOr { alpha: self.alpha },
        )))
    }

    fn reset(&mut self) {
        self.relevant.clear();
        self.dim = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: usize, v: &[f64]) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), 1.0)
    }

    #[test]
    fn handles_disjunctive_shape() {
        let mut f = Falcon::new();
        f.feed(&[pt(0, &[0.0, 0.0]), pt(1, &[10.0, 10.0])]).unwrap();
        let q = f.query().unwrap();
        assert!(q.distance(&[0.5, 0.5]) < q.distance(&[5.0, 5.0]));
        assert!(q.distance(&[9.5, 9.5]) < q.distance(&[5.0, 5.0]));
    }

    #[test]
    fn every_relevant_point_is_a_query_point() {
        let mut f = Falcon::new();
        f.feed(&[pt(0, &[0.0]), pt(1, &[1.0]), pt(2, &[2.0])])
            .unwrap();
        assert_eq!(f.num_good_points(), 3);
        f.feed(&[pt(3, &[3.0]), pt(0, &[99.0])]).unwrap();
        // New point added, duplicate id skipped.
        assert_eq!(f.num_good_points(), 4);
    }

    #[test]
    fn query_cost_grows_with_feedback() {
        // The structural weakness the paper points at: the query carries
        // one component per relevant point.
        let mut f = Falcon::new();
        let pts: Vec<FeedbackPoint> = (0..25).map(|i| pt(i, &[i as f64])).collect();
        f.feed(&pts).unwrap();
        let q = f.query().unwrap();
        // Downcast-free check: distance at any point must still be finite.
        assert!(q.distance(&[12.0]).is_finite());
        assert_eq!(f.num_good_points(), 25);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = Falcon::new();
        f.feed(&[pt(0, &[0.0])]).unwrap();
        f.reset();
        assert!(f.query().is_err());
        assert_eq!(f.num_good_points(), 0);
    }
}
