//! MARS query expansion (paper reference \[13\]).
//!
//! Porkaew & Chakrabarti's multipoint refinement: cluster the relevant
//! points, keep each cluster's centroid as a query representative, and
//! rank by the **convex** (weighted arithmetic-mean) combination of the
//! per-representative distances. The contours are one large convex region
//! covering all representatives (Fig. 1(b)) — which is precisely why it
//! underperforms on disjunctive queries whose true regions are disjoint
//! (Fig. 1(c)): the convex cover drags in everything between the clusters.

use crate::aggregate::{AggregateKind, MultiPointQuery};
use crate::method::{validate, RetrievalMethod};
use qcluster_core::engine::ThresholdPolicy;
use qcluster_core::{hierarchical::hierarchical_clustering, Cluster};
use qcluster_core::{CoreError, FeedbackPoint, Result};
use qcluster_index::QueryDistance;

/// The MARS query-expansion method.
#[derive(Debug, Clone)]
pub struct QueryExpansion {
    relevant: Vec<FeedbackPoint>,
    dim: Option<usize>,
    /// Maximum number of representatives kept after clustering.
    max_representatives: usize,
    /// Threshold policy of the internal hierarchical pass.
    threshold: ThresholdPolicy,
    /// Per-dimension variance ridge.
    lambda: f64,
}

impl Default for QueryExpansion {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryExpansion {
    /// Creates the method with 3 representatives (MARS's typical setting).
    pub fn new() -> Self {
        QueryExpansion {
            relevant: Vec::new(),
            dim: None,
            max_representatives: 3,
            threshold: ThresholdPolicy::Auto { multiplier: 2.0 },
            lambda: 1e-3,
        }
    }

    /// Overrides the representative budget.
    pub fn with_representatives(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one representative");
        self.max_representatives = n;
        self
    }

    /// The current clusters over all relevant points.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoClusters`] before feedback; propagates clustering
    /// failures.
    pub fn clusters(&self) -> Result<Vec<Cluster>> {
        if self.relevant.is_empty() {
            return Err(CoreError::NoClusters);
        }
        hierarchical_clustering(
            self.relevant.clone(),
            self.max_representatives,
            self.threshold.resolve(&self.relevant),
        )
    }
}

impl RetrievalMethod for QueryExpansion {
    fn name(&self) -> &'static str {
        "qex"
    }

    fn feed(&mut self, relevant: &[FeedbackPoint]) -> Result<()> {
        let dim = validate(relevant, self.dim)?;
        self.dim = Some(dim);
        for p in relevant {
            if !self.relevant.iter().any(|q| q.id == p.id) {
                self.relevant.push(p.clone());
            }
        }
        Ok(())
    }

    fn query(&self) -> Result<Box<dyn QueryDistance>> {
        let clusters = self.clusters()?;
        // Per-representative weighted distances combined as a weighted sum
        // of NON-squared distances: the iso-distance contour is then one
        // large multi-focal ellipse covering every representative and the
        // region between them (paper Fig. 1(b)). A convex sum of *squared*
        // forms with shared weights would collapse to a single moved point
        // (parallel-axis theorem), i.e. be indistinguishable from QPM.
        let points = clusters
            .iter()
            .map(|c| {
                let weights = c
                    .covariance()
                    .diagonal()
                    .iter()
                    .map(|&v| 1.0 / (v.max(0.0) + self.lambda))
                    .collect();
                (c.mean().to_vec(), weights, c.mass())
            })
            .collect();
        Ok(Box::new(MultiPointQuery::new(
            points,
            AggregateKind::MultiFocal,
        )))
    }

    fn reset(&mut self) {
        self.relevant.clear();
        self.dim = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: usize, v: &[f64]) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), 1.0)
    }

    fn two_group_feedback(m: &mut QueryExpansion) {
        m.feed(&[
            pt(0, &[0.0, 0.0]),
            pt(1, &[0.1, 0.05]),
            pt(2, &[0.05, 0.1]),
            pt(3, &[10.0, 10.0]),
            pt(4, &[10.1, 9.95]),
            pt(5, &[9.95, 10.1]),
        ])
        .unwrap();
    }

    #[test]
    fn clusters_relevant_points() {
        let mut m = QueryExpansion::new();
        two_group_feedback(&mut m);
        let clusters = m.clusters().unwrap();
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn convex_contour_favors_the_middle() {
        // The defining (mis)behavior on disjunctive queries: the convex
        // combination ranks the midpoint *between* clusters ahead of points
        // just past either cluster — unlike Qcluster's fuzzy OR.
        let mut m = QueryExpansion::new();
        two_group_feedback(&mut m);
        let q = m.query().unwrap();
        let mid = q.distance(&[5.0, 5.0]);
        let beyond = q.distance(&[15.0, 15.0]);
        assert!(mid < beyond, "convex cover should include the middle");
    }

    #[test]
    fn representative_budget_is_respected() {
        let mut m = QueryExpansion::new().with_representatives(1);
        two_group_feedback(&mut m);
        assert_eq!(m.clusters().unwrap().len(), 1);
    }

    #[test]
    fn query_before_feedback_errors() {
        let m = QueryExpansion::new();
        assert!(m.query().is_err());
    }
}
