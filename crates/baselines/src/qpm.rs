//! MARS query point movement (paper reference \[15\]).
//!
//! The classic single-point refinement descended from Rocchio's formula:
//! the refined query point is the relevance-weighted centroid of all
//! relevant images seen so far, and each dimension is re-weighted
//! **inversely proportional to the variance** of the relevant points along
//! it — a dimension on which the relevant images agree is discriminative
//! and gets a high weight. The refined query is a weighted Euclidean
//! distance, i.e. an axis-aligned ellipsoid (Fig. 1(a)).

use crate::method::{validate, RetrievalMethod};
use qcluster_core::{CoreError, FeedbackPoint, Result};
use qcluster_index::{QueryDistance, WeightedEuclideanQuery};

/// The MARS-style query-point-movement method.
///
/// Supports the full Rocchio formula: the paper describes MARS as trying
/// "to move this point toward 'good' matches, as well as to move it away
/// from 'bad' result points". Negative examples are optional
/// ([`QueryPointMovement::feed_negative`]) and repel the query point with
/// weight `gamma` relative to the positives' pull.
#[derive(Debug, Clone, Default)]
pub struct QueryPointMovement {
    /// All relevant points accumulated over the session.
    relevant: Vec<FeedbackPoint>,
    /// Non-relevant points accumulated over the session.
    negative: Vec<FeedbackPoint>,
    dim: Option<usize>,
    /// Ridge added to per-dimension variances before inversion.
    lambda: f64,
    /// Rocchio repulsion weight for negative examples.
    gamma: f64,
}

impl QueryPointMovement {
    /// Creates the method with the default variance ridge (1e-3).
    pub fn new() -> Self {
        QueryPointMovement {
            relevant: Vec::new(),
            negative: Vec::new(),
            dim: None,
            lambda: 1e-3,
            gamma: 0.25,
        }
    }

    /// Overrides the Rocchio repulsion weight for negative examples.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        self.gamma = gamma;
        self
    }

    fn positive_centroid(&self) -> Option<Vec<f64>> {
        let dim = self.dim?;
        let mass: f64 = self.relevant.iter().map(|p| p.score).sum();
        if mass <= 0.0 {
            return None;
        }
        let mut c = vec![0.0; dim];
        for p in &self.relevant {
            qcluster_linalg::vecops::axpy(&mut c, &p.vector, p.score);
        }
        for v in &mut c {
            *v /= mass;
        }
        Some(c)
    }

    /// Ingests non-relevant ("bad") result points. The refined query point
    /// moves away from their centroid by `gamma` times the repulsion
    /// vector (Rocchio's third term); weights are unaffected (MARS derives
    /// them from the relevant set only).
    ///
    /// # Errors
    ///
    /// Same validation as [`RetrievalMethod::feed`].
    pub fn feed_negative(&mut self, non_relevant: &[FeedbackPoint]) -> Result<()> {
        let dim = validate(non_relevant, self.dim)?;
        self.dim = Some(dim);
        for p in non_relevant {
            if !self.negative.iter().any(|q| q.id == p.id) {
                self.negative.push(p.clone());
            }
        }
        Ok(())
    }

    /// Overrides the variance ridge.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0, "ridge must be positive");
        self.lambda = lambda;
        self
    }

    /// The current moved query point: the score-weighted centroid of the
    /// relevant set, pushed away from the negative centroid by `gamma`
    /// (Rocchio's formula with α = 0, β = 1).
    pub fn current_point(&self) -> Option<Vec<f64>> {
        let dim = self.dim?;
        let mass: f64 = self.relevant.iter().map(|p| p.score).sum();
        if mass <= 0.0 {
            return None;
        }
        let mut c = vec![0.0; dim];
        for p in &self.relevant {
            qcluster_linalg::vecops::axpy(&mut c, &p.vector, p.score);
        }
        for v in &mut c {
            *v /= mass;
        }
        if !self.negative.is_empty() && self.gamma > 0.0 {
            let neg_mass: f64 = self.negative.iter().map(|p| p.score).sum();
            let mut n = vec![0.0; dim];
            for p in &self.negative {
                qcluster_linalg::vecops::axpy(&mut n, &p.vector, p.score);
            }
            for v in &mut n {
                *v /= neg_mass;
            }
            // c ← c + γ (c − n̄): move away from the bad centroid.
            for (ci, &ni) in c.iter_mut().zip(n.iter()) {
                *ci += self.gamma * (*ci - ni);
            }
        }
        Some(c)
    }

    /// Per-dimension weights `1 / (σ_d² + λ)` of the current relevant set
    /// (variance measured around the positive centroid — negatives shape
    /// the point, not the weights, matching MARS).
    pub fn current_weights(&self) -> Option<Vec<f64>> {
        let center = self.positive_centroid()?;
        let mass: f64 = self.relevant.iter().map(|p| p.score).sum();
        let mut var = vec![0.0; center.len()];
        for p in &self.relevant {
            for (d, v) in var.iter_mut().enumerate() {
                let diff = p.vector[d] - center[d];
                *v += p.score * diff * diff;
            }
        }
        Some(
            var.into_iter()
                .map(|v| 1.0 / (v / mass + self.lambda))
                .collect(),
        )
    }
}

impl RetrievalMethod for QueryPointMovement {
    fn name(&self) -> &'static str {
        "qpm"
    }

    fn feed(&mut self, relevant: &[FeedbackPoint]) -> Result<()> {
        let dim = validate(relevant, self.dim)?;
        self.dim = Some(dim);
        for p in relevant {
            if !self.relevant.iter().any(|q| q.id == p.id) {
                self.relevant.push(p.clone());
            }
        }
        Ok(())
    }

    fn query(&self) -> Result<Box<dyn QueryDistance>> {
        let center = self.current_point().ok_or(CoreError::NoClusters)?;
        let weights = self.current_weights().expect("weights follow point");
        Ok(Box::new(WeightedEuclideanQuery::new(center, weights)))
    }

    fn reset(&mut self) {
        self.relevant.clear();
        self.negative.clear();
        self.dim = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: usize, v: &[f64], s: f64) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), s)
    }

    #[test]
    fn point_moves_to_weighted_centroid() {
        let mut m = QueryPointMovement::new();
        m.feed(&[pt(0, &[0.0, 0.0], 3.0), pt(1, &[4.0, 4.0], 1.0)])
            .unwrap();
        assert_eq!(m.current_point().unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn weights_inverse_to_variance() {
        let mut m = QueryPointMovement::new();
        // Spread along dim 0, agreement along dim 1.
        m.feed(&[
            pt(0, &[-2.0, 1.0], 1.0),
            pt(1, &[2.0, 1.0], 1.0),
            pt(2, &[0.0, 1.0], 1.0),
        ])
        .unwrap();
        let w = m.current_weights().unwrap();
        assert!(w[1] > w[0], "agreeing dimension should weigh more: {w:?}");
    }

    #[test]
    fn feedback_accumulates_across_rounds() {
        let mut m = QueryPointMovement::new();
        m.feed(&[pt(0, &[0.0], 1.0)]).unwrap();
        m.feed(&[pt(1, &[2.0], 1.0)]).unwrap();
        assert_eq!(m.current_point().unwrap(), vec![1.0]);
        // Duplicate id ignored.
        m.feed(&[pt(1, &[100.0], 1.0)]).unwrap();
        assert_eq!(m.current_point().unwrap(), vec![1.0]);
    }

    #[test]
    fn query_ranks_by_moved_point() {
        let mut m = QueryPointMovement::new();
        m.feed(&[pt(0, &[1.0, 1.0], 1.0), pt(1, &[3.0, 3.0], 1.0)])
            .unwrap();
        let q = m.query().unwrap();
        assert!(q.distance(&[2.0, 2.0]) < q.distance(&[10.0, 10.0]));
    }

    #[test]
    fn negative_feedback_repels_the_point() {
        let mut m = QueryPointMovement::new().with_gamma(0.5);
        m.feed(&[pt(0, &[0.0, 0.0], 1.0), pt(1, &[2.0, 0.0], 1.0)])
            .unwrap();
        let before = m.current_point().unwrap();
        assert_eq!(before, vec![1.0, 0.0]);
        // Bad points to the right: the query moves left.
        m.feed_negative(&[pt(100, &[5.0, 0.0], 1.0)]).unwrap();
        let after = m.current_point().unwrap();
        assert!(after[0] < before[0], "{after:?} should move away from bad");
        // c + γ(c − n) = 1 + 0.5·(1 − 5) = −1.
        assert!((after[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_zero_ignores_negatives() {
        let mut m = QueryPointMovement::new().with_gamma(0.0);
        m.feed(&[pt(0, &[1.0], 1.0)]).unwrap();
        m.feed_negative(&[pt(9, &[100.0], 1.0)]).unwrap();
        assert_eq!(m.current_point().unwrap(), vec![1.0]);
    }

    #[test]
    fn negatives_do_not_change_weights() {
        let mut m = QueryPointMovement::new();
        m.feed(&[pt(0, &[-1.0, 0.0], 1.0), pt(1, &[1.0, 0.0], 1.0)])
            .unwrap();
        let w_before = m.current_weights().unwrap();
        m.feed_negative(&[pt(9, &[0.0, 50.0], 1.0)]).unwrap();
        let w_after = m.current_weights().unwrap();
        assert_eq!(w_before, w_after);
    }

    #[test]
    fn errors_before_feedback_and_resets() {
        let mut m = QueryPointMovement::new();
        assert!(m.query().is_err());
        m.feed(&[pt(0, &[0.0], 1.0)]).unwrap();
        assert!(m.query().is_ok());
        m.reset();
        assert!(m.query().is_err());
    }
}
