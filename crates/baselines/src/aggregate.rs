//! Multipoint aggregate distances (paper Eq. 4 and FALCON's α-norm).
//!
//! The general aggregate over query points `Q = {q_1, …, q_g}` with
//! weights `w_i` is
//!
//! ```text
//! d_aggregate(Q, x) = ( Σ w_i d(q_i, x)^α / Σ w_i )^(1/α)
//! ```
//!
//! - `α = 1` (arithmetic mean) is the **convex** combination used by MARS
//!   query expansion: one large contour covering all representatives.
//! - `α < 0` is the **fuzzy OR** used by FALCON (and, in its harmonic
//!   α = −2 form with quadratic component distances, by Qcluster's Eq. 5):
//!   the nearest query point dominates, producing disjoint contours.
//!
//! Component distances here are squared weighted Euclidean forms per query
//! point, each with its own per-dimension weights — sufficient for every
//! baseline (the full-covariance case lives in `qcluster-core`).

use qcluster_index::{BoundingBox, QueryDistance};

/// Which aggregate combination rule to apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggregateKind {
    /// Weighted arithmetic mean of component distances (`α = 1`).
    Convex,
    /// Weighted arithmetic mean of the **square roots** of the component
    /// quadratic forms — the multi-focal ellipse of MARS query expansion
    /// (one large convex contour whose foci are the representatives;
    /// paper Fig. 1(b)). Summing non-squared distances is what makes the
    /// contour a single region covering all representatives *and* the
    /// space between them.
    MultiFocal,
    /// The α-norm fuzzy OR with `alpha < 0` — FALCON's aggregate
    /// dissimilarity (their experiments favor α ≈ −5; Qcluster's Eq. 5 is
    /// the mass-weighted α = −2 special case).
    FuzzyOr {
        /// Strictly negative exponent.
        alpha: f64,
    },
}

/// One query point of a multipoint query.
#[derive(Debug, Clone)]
struct Component {
    center: Vec<f64>,
    /// Per-dimension weights of the squared distance (all ≥ 0).
    weights: Vec<f64>,
    /// Aggregate weight `w_i` (e.g. cluster mass).
    mass: f64,
}

/// A multipoint query under a configurable aggregate rule.
#[derive(Debug, Clone)]
pub struct MultiPointQuery {
    components: Vec<Component>,
    kind: AggregateKind,
    total_mass: f64,
}

impl MultiPointQuery {
    /// Builds a multipoint query.
    ///
    /// `points` supplies `(center, per-dim weights, mass)` per component.
    ///
    /// # Panics
    ///
    /// Panics on an empty component list, ragged dimensions, negative
    /// weights/masses, or a non-negative fuzzy-OR exponent.
    pub fn new(points: Vec<(Vec<f64>, Vec<f64>, f64)>, kind: AggregateKind) -> Self {
        assert!(!points.is_empty(), "need at least one query point");
        if let AggregateKind::FuzzyOr { alpha } = kind {
            assert!(alpha < 0.0, "fuzzy-OR exponent must be negative");
        }
        let dim = points[0].0.len();
        let mut components = Vec::with_capacity(points.len());
        let mut total_mass = 0.0;
        for (center, weights, mass) in points {
            assert_eq!(center.len(), dim, "ragged centers");
            assert_eq!(weights.len(), dim, "ragged weights");
            assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
            assert!(mass > 0.0, "masses must be positive");
            total_mass += mass;
            components.push(Component {
                center,
                weights,
                mass,
            });
        }
        MultiPointQuery {
            components,
            kind,
            total_mass,
        }
    }

    /// Uniform-weight constructor: every point gets unit per-dim weights
    /// and unit mass (FALCON's "all relevant points are query points").
    pub fn uniform(centers: Vec<Vec<f64>>, kind: AggregateKind) -> Self {
        let pts = centers
            .into_iter()
            .map(|c| {
                let d = c.len();
                (c, vec![1.0; d], 1.0)
            })
            .collect();
        Self::new(pts, kind)
    }

    /// Number of component query points.
    pub fn num_points(&self) -> usize {
        self.components.len()
    }

    /// Combines per-component distances per the aggregate rule.
    fn combine(&self, dists: impl Iterator<Item = (f64, f64)>) -> f64 {
        match self.kind {
            AggregateKind::Convex => {
                let mut acc = 0.0;
                for (m, d) in dists {
                    acc += m * d;
                }
                acc / self.total_mass
            }
            AggregateKind::MultiFocal => {
                let mut acc = 0.0;
                for (m, d) in dists {
                    acc += m * d.max(0.0).sqrt();
                }
                acc / self.total_mass
            }
            AggregateKind::FuzzyOr { alpha } => {
                let mut acc = 0.0;
                for (m, d) in dists {
                    if d <= 0.0 {
                        return 0.0;
                    }
                    acc += m * d.powf(alpha);
                }
                (acc / self.total_mass).powf(1.0 / alpha)
            }
        }
    }
}

impl QueryDistance for MultiPointQuery {
    fn dim(&self) -> usize {
        self.components[0].center.len()
    }

    fn distance(&self, x: &[f64]) -> f64 {
        self.combine(self.components.iter().map(|c| {
            (
                c.mass,
                qcluster_linalg::vecops::weighted_sq_euclidean(x, &c.center, &c.weights),
            )
        }))
    }

    fn min_distance(&self, b: &BoundingBox) -> f64 {
        // Both rules are non-decreasing in each component distance, so
        // aggregating per-component lower bounds lower-bounds the whole.
        self.combine(self.components.iter().map(|c| {
            let mut acc = 0.0;
            for i in 0..c.center.len() {
                let cl = c.center[i].clamp(b.lo()[i], b.hi()[i]);
                let d = c.center[i] - cl;
                acc += c.weights[i] * d * d;
            }
            (c.mass, acc)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_points(kind: AggregateKind) -> MultiPointQuery {
        MultiPointQuery::uniform(vec![vec![0.0, 0.0], vec![10.0, 0.0]], kind)
    }

    #[test]
    fn convex_is_arithmetic_mean() {
        let q = two_points(AggregateKind::Convex);
        // x = (5,0): both component distances are 25 → mean 25.
        assert!((q.distance(&[5.0, 0.0]) - 25.0).abs() < 1e-12);
        // x = (0,0): distances 0 and 100 → mean 50.
        assert!((q.distance(&[0.0, 0.0]) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn fuzzy_or_rewards_proximity_to_one_point() {
        let or = two_points(AggregateKind::FuzzyOr { alpha: -2.0 });
        let cx = two_points(AggregateKind::Convex);
        // Near one query point the OR distance collapses; convex does not.
        let near = [0.5, 0.0];
        assert!(or.distance(&near) < cx.distance(&near));
        // Exactly at a query point: OR gives zero.
        assert_eq!(or.distance(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn fuzzy_or_midpoint_is_far() {
        let or = two_points(AggregateKind::FuzzyOr { alpha: -2.0 });
        let mid = or.distance(&[5.0, 0.0]);
        let near = or.distance(&[1.0, 0.0]);
        assert!(near < mid);
    }

    #[test]
    fn steeper_alpha_tracks_minimum_closer() {
        let soft = two_points(AggregateKind::FuzzyOr { alpha: -1.0 });
        let hard = two_points(AggregateKind::FuzzyOr { alpha: -8.0 });
        let x = [2.0, 0.0]; // d = (4, 64)
                            // The harder OR should be closer to the min component (4).
        assert!((hard.distance(&x) - 4.0).abs() < (soft.distance(&x) - 4.0).abs());
    }

    #[test]
    fn lower_bound_contract_both_kinds() {
        for kind in [
            AggregateKind::Convex,
            AggregateKind::FuzzyOr { alpha: -2.0 },
        ] {
            let q = two_points(kind);
            let b = BoundingBox::new(vec![3.0, 1.0], vec![6.0, 2.0]);
            let lb = q.min_distance(&b);
            for i in 0..=6 {
                for j in 0..=4 {
                    let x = [3.0 + 0.5 * i as f64, 1.0 + 0.25 * j as f64];
                    assert!(q.distance(&x) >= lb - 1e-9, "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn mass_weights_shift_convex_combination() {
        let q = MultiPointQuery::new(
            vec![(vec![0.0], vec![1.0], 3.0), (vec![10.0], vec![1.0], 1.0)],
            AggregateKind::Convex,
        );
        // d = (25, 25) at x=5 regardless of mass.
        assert!((q.distance(&[5.0]) - 25.0).abs() < 1e-12);
        // x = 0: (0·3 + 100·1)/4 = 25.
        assert!((q.distance(&[0.0]) - 25.0).abs() < 1e-12);
        // x = 10: (100·3 + 0)/4 = 75 — the heavy point dominates.
        assert!((q.distance(&[10.0]) - 75.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be negative")]
    fn positive_alpha_rejected() {
        let _ = two_points(AggregateKind::FuzzyOr { alpha: 2.0 });
    }
}
