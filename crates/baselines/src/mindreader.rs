//! MindReader (paper reference \[11\]).
//!
//! Like query-point movement, MindReader refines a **single** query point,
//! but learns a **full** inverse covariance so the iso-distance contours
//! are arbitrarily *oriented* ellipsoids (generalized Euclidean distance).
//! It is exactly Qcluster's `d²` (Eq. 1) restricted to one cluster — the
//! paper notes "When all relevant images are included in a single cluster,
//! it is the same as MindReader's" — so the implementation maintains a
//! single [`Cluster`] over the accumulated relevant set and queries it
//! with the full-inverse scheme.

use crate::method::{validate, RetrievalMethod};
use qcluster_core::{Cluster, ClusterDistance, CoreError, CovarianceScheme, FeedbackPoint, Result};
use qcluster_index::QueryDistance;

/// The MindReader single-ellipsoid method.
#[derive(Debug, Clone)]
pub struct MindReader {
    relevant: Vec<FeedbackPoint>,
    dim: Option<usize>,
    scheme: CovarianceScheme,
}

impl Default for MindReader {
    fn default() -> Self {
        Self::new()
    }
}

impl MindReader {
    /// Creates the method with the default full-inverse scheme.
    pub fn new() -> Self {
        MindReader {
            relevant: Vec::new(),
            dim: None,
            scheme: CovarianceScheme::default_full(),
        }
    }

    /// The single cluster over all relevant points seen so far.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoClusters`] before any feedback.
    pub fn cluster(&self) -> Result<Cluster> {
        if self.relevant.is_empty() {
            return Err(CoreError::NoClusters);
        }
        Cluster::from_points(self.relevant.clone())
    }
}

impl RetrievalMethod for MindReader {
    fn name(&self) -> &'static str {
        "mindreader"
    }

    fn feed(&mut self, relevant: &[FeedbackPoint]) -> Result<()> {
        let dim = validate(relevant, self.dim)?;
        self.dim = Some(dim);
        for p in relevant {
            if !self.relevant.iter().any(|q| q.id == p.id) {
                self.relevant.push(p.clone());
            }
        }
        Ok(())
    }

    fn query(&self) -> Result<Box<dyn QueryDistance>> {
        let cluster = self.cluster()?;
        Ok(Box::new(ClusterDistance::new(&cluster, self.scheme)?))
    }

    fn reset(&mut self) {
        self.relevant.clear();
        self.dim = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: usize, v: &[f64]) -> FeedbackPoint {
        FeedbackPoint::new(id, v.to_vec(), 1.0)
    }

    #[test]
    fn learns_oriented_ellipsoid() {
        // Relevant points along the diagonal y = x: MindReader should rank
        // on-diagonal points ahead of off-diagonal ones at equal Euclidean
        // distance from the centroid.
        let mut m = MindReader::new();
        m.feed(&[
            pt(0, &[-2.0, -2.1]),
            pt(1, &[-1.0, -0.9]),
            pt(2, &[0.0, 0.1]),
            pt(3, &[1.0, 0.9]),
            pt(4, &[2.0, 2.1]),
        ])
        .unwrap();
        let q = m.query().unwrap();
        let on_diag = q.distance(&[1.5, 1.5]);
        let off_diag = q.distance(&[1.5, -1.5]);
        assert!(
            on_diag < off_diag,
            "diagonal structure not learned: {on_diag} vs {off_diag}"
        );
    }

    #[test]
    fn centroid_is_query_center() {
        let mut m = MindReader::new();
        m.feed(&[pt(0, &[0.0, 0.0]), pt(1, &[2.0, 2.0])]).unwrap();
        let c = m.cluster().unwrap();
        assert_eq!(c.mean(), &[1.0, 1.0]);
        let q = m.query().unwrap();
        assert!(q.distance(&[1.0, 1.0]) < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = MindReader::new();
        m.feed(&[pt(0, &[0.0])]).unwrap();
        m.reset();
        assert!(m.query().is_err());
    }
}
