//! The uniform interface every relevance-feedback method exposes.

use qcluster_core::{FeedbackPoint, Result};
use qcluster_index::QueryDistance;

/// A relevance-feedback retrieval method: it ingests rounds of relevant
/// points and produces the refined query for the next round.
///
/// The evaluation harness drives every approach (Qcluster, QPM,
/// MindReader, QEX, FALCON) through this trait, so the comparison figures
/// (paper Figs. 7, 10–13) share one code path.
pub trait RetrievalMethod {
    /// Short display name ("qcluster", "qpm", …).
    fn name(&self) -> &'static str;

    /// Ingests one round of user-marked relevant points.
    ///
    /// # Errors
    ///
    /// Method-specific validation failures (empty set, ragged dimensions).
    fn feed(&mut self, relevant: &[FeedbackPoint]) -> Result<()>;

    /// Compiles the current refined query.
    ///
    /// # Errors
    ///
    /// [`qcluster_core::CoreError::NoClusters`]-like errors before any
    /// feedback has been given.
    fn query(&self) -> Result<Box<dyn QueryDistance>>;

    /// Clears all session state.
    fn reset(&mut self);
}

impl RetrievalMethod for qcluster_core::QclusterEngine {
    fn name(&self) -> &'static str {
        "qcluster"
    }

    fn feed(&mut self, relevant: &[FeedbackPoint]) -> Result<()> {
        QclusterEngine::feed(self, relevant)
    }

    fn query(&self) -> Result<Box<dyn QueryDistance>> {
        Ok(Box::new(QclusterEngine::query(self)?))
    }

    fn reset(&mut self) {
        QclusterEngine::reset(self)
    }
}

use qcluster_core::QclusterEngine;

/// Validates a feedback batch: non-empty, consistent dimensionality,
/// positive scores. Returns the dimensionality.
pub(crate) fn validate(relevant: &[FeedbackPoint], expected_dim: Option<usize>) -> Result<usize> {
    use qcluster_core::CoreError;
    let first = relevant.first().ok_or(CoreError::EmptyFeedback)?;
    let dim = expected_dim.unwrap_or_else(|| first.dim());
    for p in relevant {
        if p.dim() != dim {
            return Err(CoreError::DimensionMismatch {
                expected: dim,
                found: p.dim(),
            });
        }
        if p.score <= 0.0 || p.score.is_nan() {
            return Err(CoreError::InvalidScore(p.score));
        }
    }
    Ok(dim)
}
