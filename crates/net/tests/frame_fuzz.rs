//! Decoder fuzzing: the frame decoder must never panic, hang, or
//! over-allocate, whatever bytes arrive — random garbage decodes to a
//! typed [`FrameError`], mutated valid frames are caught, and honest
//! frames round-trip bit-for-bit.
//!
//! Case count honors `PROPTEST_CASES` (CI runs 256).

use proptest::collection::vec as prop_vec;
use proptest::prelude::*;
use std::io::Cursor;

use qcluster_net::frame::{
    decode_frame, encode_frame, read_frame, FrameKind, ReadFrame, HEADER_LEN,
};

/// Fuzzing cap on declared payload length: bounds every allocation the
/// decoder can make while fuzzing, without narrowing the code path.
const FUZZ_MAX_PAYLOAD: u32 = 1 << 16;

proptest! {
    /// Arbitrary bytes through the slice decoder: typed error or valid
    /// frame, never a panic.
    #[test]
    fn random_bytes_never_panic_the_slice_decoder(bytes in prop_vec(any::<u8>(), 0..256)) {
        match decode_frame(&bytes, FUZZ_MAX_PAYLOAD) {
            Ok((frame, used)) => {
                prop_assert!(used <= bytes.len());
                prop_assert_eq!(used, HEADER_LEN + frame.payload.len());
            }
            Err(_typed) => {}
        }
    }

    /// Arbitrary bytes through the streaming reader (the exact code the
    /// server runs): always a classified outcome, never a panic, and
    /// never an allocation beyond the declared cap.
    #[test]
    fn random_bytes_never_panic_the_stream_reader(bytes in prop_vec(any::<u8>(), 0..256)) {
        let mut cursor = Cursor::new(bytes.clone());
        match read_frame(&mut cursor, FUZZ_MAX_PAYLOAD) {
            Ok(ReadFrame::Frame(frame)) => {
                prop_assert!(frame.payload.len() <= FUZZ_MAX_PAYLOAD as usize);
            }
            Ok(ReadFrame::Eof) => prop_assert!(bytes.is_empty()),
            Ok(ReadFrame::Corrupt { .. }) => {}
            // A `Cursor` cannot time out, so `Idle` and I/O errors are
            // unreachable here.
            Ok(ReadFrame::Idle) => prop_assert!(false, "cursor reads cannot be idle"),
            Err(e) => prop_assert!(false, "cursor reads cannot fail: {e}"),
        }
    }

    /// Honest frames round-trip bit-for-bit through encode → decode,
    /// through both the slice decoder and the streaming reader.
    #[test]
    fn honest_frames_roundtrip(
        request_id in any::<u64>(),
        is_request in any::<bool>(),
        payload in prop_vec(any::<u8>(), 0..512),
    ) {
        let kind = if is_request { FrameKind::Request } else { FrameKind::Response };
        let bytes = encode_frame(kind, request_id, &payload);

        let (frame, used) = decode_frame(&bytes, FUZZ_MAX_PAYLOAD)
            .expect("honest frames must decode");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(frame.kind, kind);
        prop_assert_eq!(frame.request_id, request_id);
        prop_assert_eq!(&frame.payload, &payload);

        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, FUZZ_MAX_PAYLOAD) {
            Ok(ReadFrame::Frame(frame)) => {
                prop_assert_eq!(frame.kind, kind);
                prop_assert_eq!(frame.request_id, request_id);
                prop_assert_eq!(&frame.payload, &payload);
            }
            other => prop_assert!(false, "streaming reader rejected an honest frame: {other:?}"),
        }
    }

    /// Any single-byte mutation of a valid frame is either caught with
    /// a typed error, or provably harmless (reserved bytes and the
    /// request-id field are not integrity-checked by design).
    #[test]
    fn single_byte_mutations_are_caught_or_harmless(
        request_id in any::<u64>(),
        payload in prop_vec(any::<u8>(), 1..128),
        idx in any::<usize>(),
        flip in 1u8..255,
    ) {
        let bytes = encode_frame(FrameKind::Request, request_id, &payload);
        let pos = idx % bytes.len();
        let mut mutated = bytes.clone();
        mutated[pos] ^= flip;

        match decode_frame(&mutated, FUZZ_MAX_PAYLOAD) {
            Err(_typed) => {}
            Ok((frame, _)) => {
                // The only mutations allowed through: the reserved
                // header bytes (ignored on receive), the request id
                // (opaque correlation data), or a kind byte flipping
                // between the two valid kinds.
                let harmless = (6..8).contains(&pos) || (8..16).contains(&pos) || pos == 5;
                prop_assert!(
                    harmless,
                    "mutation at byte {pos} slipped through as {frame:?}"
                );
            }
        }
    }
}
