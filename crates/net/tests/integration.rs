//! Transport integration suite against a real localhost server: wire
//! answers must match in-process `dispatch` bit-for-bit, malformed
//! frames must get typed replies on the same connection, and capacity
//! limits must reject with typed frames instead of silent closes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use qcluster_net::{
    encode_frame, Client, ClientConfig, FrameKind, NetError, Server, ServerConfig, HEADER_LEN,
};
use qcluster_service::{dispatch, Request, Response, Service, ServiceConfig};

/// Four well-spread blobs, 64 points each.
fn corpus() -> Vec<Vec<f64>> {
    (0..256)
        .map(|i| {
            let a = i as f64 * 0.37;
            let blob = (i / 64) as f64 * 10.0;
            vec![blob + a.cos(), blob + a.sin()]
        })
        .collect()
}

fn service() -> Arc<Service> {
    Arc::new(Service::new(&corpus(), ServiceConfig::default()).expect("spawn service"))
}

fn fast_client_config() -> ClientConfig {
    ClientConfig {
        read_timeout: Duration::from_secs(10),
        ..ClientConfig::default()
    }
}

fn query(session: u64, x: f64, y: f64) -> Request {
    Request::Query {
        session,
        k: 7,
        vector: Some(vec![x, y]),
        deadline_ms: None,
    }
}

/// The headline acceptance scenario: 8 concurrent clients, each with
/// its own session, pipelining queries over the wire — every response
/// is identical to running the same request through in-process
/// `dispatch` on a twin service built from the same corpus.
#[test]
fn eight_concurrent_clients_match_in_process_dispatch() {
    let wire_service = service();
    let local_service = service();
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&wire_service),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut joins = Vec::new();
    for c in 0..8u64 {
        let local_service = Arc::clone(&local_service);
        joins.push(thread::spawn(move || {
            let mut client = Client::connect(addr, fast_client_config()).unwrap();
            let Response::SessionCreated {
                session: wire_session,
            } = client
                .call(&Request::CreateSession { engine: None })
                .unwrap()
            else {
                panic!("expected SessionCreated")
            };
            let Response::SessionCreated {
                session: local_session,
            } = dispatch(&local_service, Request::CreateSession { engine: None })
            else {
                panic!("expected SessionCreated")
            };

            let queries: Vec<(f64, f64)> = (0..12)
                .map(|i| {
                    let t = (c * 12 + i) as f64;
                    (30.0 * (t * 0.11).sin().abs(), (t * 0.07).cos() + 1.0)
                })
                .collect();
            let wire_requests: Vec<Request> = queries
                .iter()
                .map(|&(x, y)| query(wire_session, x, y))
                .collect();
            let wire_responses = client.query_many(&wire_requests).unwrap();
            for (&(x, y), wire) in queries.iter().zip(&wire_responses) {
                let local = dispatch(&local_service, query(local_session, x, y));
                let (
                    Response::Neighbors {
                        neighbors: wn,
                        shards_ok: wok,
                        degraded: wd,
                        ..
                    },
                    Response::Neighbors {
                        neighbors: ln,
                        shards_ok: lok,
                        degraded: ld,
                        ..
                    },
                ) = (wire, &local)
                else {
                    panic!("expected Neighbors from both paths")
                };
                assert_eq!(wn, ln, "wire top-k diverged from in-process top-k");
                assert_eq!((wok, wd), (lok, ld), "coverage diverged");
            }

            // Feedback + refined re-query must agree too.
            let relevant: Vec<usize> = match &wire_responses[0] {
                Response::Neighbors { neighbors, .. } => {
                    neighbors.iter().take(3).map(|n| n.id).collect()
                }
                other => panic!("expected Neighbors, got {other:?}"),
            };
            let feed = |session: u64| Request::Feed {
                session,
                relevant_ids: relevant.clone(),
                scores: None,
            };
            let refined = |session: u64| Request::Query {
                session,
                k: 7,
                vector: None,
                deadline_ms: None,
            };
            let wire_feed = client.call(&feed(wire_session)).unwrap();
            let local_feed = dispatch(&local_service, feed(local_session));
            match (&wire_feed, &local_feed) {
                (
                    Response::FeedAccepted {
                        iteration: wi,
                        clusters: wc,
                        ..
                    },
                    Response::FeedAccepted {
                        iteration: li,
                        clusters: lc,
                        ..
                    },
                ) => assert_eq!((wi, wc), (li, lc)),
                other => panic!("expected FeedAccepted from both paths, got {other:?}"),
            }
            let wire_refined = client.call(&refined(wire_session)).unwrap();
            let local_refined = dispatch(&local_service, refined(local_session));
            match (&wire_refined, &local_refined) {
                (
                    Response::Neighbors { neighbors: wn, .. },
                    Response::Neighbors { neighbors: ln, .. },
                ) => assert_eq!(wn, ln, "refined wire top-k diverged"),
                other => panic!("expected Neighbors from both paths, got {other:?}"),
            }
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }

    let report = server.shutdown();
    assert!(report.clean(), "shutdown should be clean: {report:?}");

    // Transport counters surfaced through the service metrics.
    let snapshot = wire_service.stats();
    assert_eq!(snapshot.transport.connections_accepted, 8);
    assert_eq!(snapshot.transport.connections_active, 0);
    assert!(snapshot.transport.frames_in >= 8 * 15);
    assert!(snapshot.transport.frames_out >= snapshot.transport.frames_in);
    assert_eq!(snapshot.transport.decode_errors, 0);
    assert!(snapshot.query_percentiles.count >= 8 * 13);
}

/// A corrupt-CRC frame gets a typed error reply on the SAME connection,
/// and the connection remains usable for a subsequent valid frame.
#[test]
fn corrupt_frame_gets_typed_reply_and_connection_survives() {
    let svc = service();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), ServerConfig::default()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Hand-corrupt a valid frame's payload (CRC now wrong).
    let payload = serde_json::to_string(&Request::Stats).unwrap();
    let mut bytes = encode_frame(FrameKind::Request, 77, payload.as_bytes());
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    stream.write_all(&bytes).unwrap();

    let reply = read_one_frame(&mut stream);
    assert_eq!(reply.0, 77, "typed reply must echo the salvaged request id");
    let response: Response = serde_json::from_str(std::str::from_utf8(&reply.1).unwrap()).unwrap();
    match response {
        Response::Error(e) => assert!(
            e.to_string().contains("crc"),
            "expected a CRC decode error, got: {e}"
        ),
        other => panic!("expected typed Error, got {other:?}"),
    }

    // Same connection, valid frame: must work.
    let bytes = encode_frame(FrameKind::Request, 78, payload.as_bytes());
    stream.write_all(&bytes).unwrap();
    let reply = read_one_frame(&mut stream);
    assert_eq!(reply.0, 78);
    let response: Response = serde_json::from_str(std::str::from_utf8(&reply.1).unwrap()).unwrap();
    assert!(
        matches!(response, Response::Stats(_)),
        "expected Stats after recovery"
    );

    let snapshot = svc.stats();
    assert_eq!(snapshot.transport.decode_errors, 1);
    server.shutdown();
}

/// Unknown protocol versions and oversize declarations get a typed
/// reply, then the connection closes (the stream cannot be trusted).
#[test]
fn unknown_version_and_oversize_reply_then_close() {
    let svc = service();
    let config = ServerConfig {
        max_frame_len: 4096,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), config).unwrap();

    // Unknown version byte.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let payload = serde_json::to_string(&Request::Stats).unwrap();
    let mut bytes = encode_frame(FrameKind::Request, 5, payload.as_bytes());
    bytes[4] = 9; // future version
    stream.write_all(&bytes).unwrap();
    let (id, body) = read_one_frame(&mut stream);
    assert_eq!(id, 5, "version errors salvage the request id");
    let response: Response = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    match response {
        Response::Error(e) => {
            assert!(e.to_string().contains("version"), "got: {e}")
        }
        other => panic!("expected typed Error, got {other:?}"),
    }
    expect_close(&mut stream);

    // Oversize declaration (1 MiB > the 4 KiB cap).
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut bytes = encode_frame(FrameKind::Request, 6, payload.as_bytes());
    bytes[16..20].copy_from_slice(&(1u32 << 20).to_le_bytes());
    stream.write_all(&bytes).unwrap();
    let (id, body) = read_one_frame(&mut stream);
    assert_eq!(id, 6);
    let response: Response = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    match response {
        Response::Error(e) => assert!(e.to_string().contains("exceeds"), "got: {e}"),
        other => panic!("expected typed Error, got {other:?}"),
    }
    expect_close(&mut stream);

    assert_eq!(svc.stats().transport.decode_errors, 2);
    server.shutdown();
}

/// Garbage bytes (bad magic) get a best-effort typed reply with request
/// id 0, then the connection closes.
#[test]
fn garbage_bytes_get_typed_reply_with_id_zero() {
    let svc = service();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), ServerConfig::default()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let (id, body) = read_one_frame(&mut stream);
    assert_eq!(
        id, 0,
        "unsalvageable frames reply on the connection-level id"
    );
    let response: Response = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(matches!(response, Response::Error(_)));
    expect_close(&mut stream);
    server.shutdown();
}

/// Connections over `max_connections` get a typed `Overloaded` frame
/// (request id 0) and a close; the client surfaces it as `Rejected`.
#[test]
fn connection_over_capacity_is_rejected_with_typed_frame() {
    let svc = service();
    let config = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), config).unwrap();

    let mut first = Client::connect(server.local_addr(), fast_client_config()).unwrap();
    assert!(matches!(
        first.call(&Request::Stats).unwrap(),
        Response::Stats(_)
    ));

    // Second connection, raw socket: accepted at TCP level, rejected at
    // the protocol level with a typed `Overloaded` frame on request id
    // 0, then closed. Reading without writing sees the frame
    // deterministically.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let (id, body) = read_one_frame(&mut raw);
    assert_eq!(id, 0, "rejects use the connection-level request id");
    let response: Response = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    match response {
        Response::Error(e) => assert!(e.to_string().contains("capacity"), "got: {e}"),
        other => panic!("expected typed Overloaded, got {other:?}"),
    }
    expect_close(&mut raw);

    // Through the Client the same reject surfaces as an error — as
    // `Rejected` when the frame outruns the reset, otherwise as a
    // closed/reset connection (the write races the server's close).
    let mut second = Client::connect(server.local_addr(), fast_client_config()).unwrap();
    match second.call(&Request::Stats) {
        Err(NetError::Rejected(why)) => {
            assert!(
                why.contains("capacity") || why.contains("queue"),
                "got: {why}"
            )
        }
        Err(NetError::Closed(_)) | Err(NetError::Io(_)) => {}
        other => panic!("expected a rejection error, got {other:?}"),
    }

    let snapshot = svc.stats();
    assert_eq!(snapshot.transport.connections_rejected, 2);
    assert_eq!(snapshot.transport.connections_accepted, 1);
    server.shutdown();
}

/// Responses can legitimately return out of order; `query_many`
/// reorders them by request id. Exercised by pipelining a mix of slow
/// (big-k) and fast queries.
#[test]
fn pipelined_batch_returns_in_request_order() {
    let svc = service();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), fast_client_config()).unwrap();
    let Response::SessionCreated { session } = client
        .call(&Request::CreateSession { engine: None })
        .unwrap()
    else {
        panic!("expected SessionCreated")
    };
    let requests: Vec<Request> = (0..16)
        .map(|i| Request::Query {
            session,
            k: if i % 2 == 0 { 64 } else { 1 },
            vector: Some(vec![i as f64, 0.0]),
            deadline_ms: None,
        })
        .collect();
    let responses = client.query_many(&requests).unwrap();
    assert_eq!(responses.len(), 16);
    for (i, r) in responses.iter().enumerate() {
        let Response::Neighbors { neighbors, .. } = r else {
            panic!("expected Neighbors at slot {i}, got {r:?}")
        };
        assert_eq!(
            neighbors.len(),
            if i % 2 == 0 { 64 } else { 1 },
            "slot {i} k mismatch"
        );
    }
    server.shutdown();
}

/// Reads exactly one frame (header + payload) off a raw socket.
fn read_one_frame(stream: &mut TcpStream) -> (u64, Vec<u8>) {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header).expect("read reply header");
    assert_eq!(&header[0..4], b"QNET");
    assert_eq!(header[5], 2, "reply must be a response frame");
    let id = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("read reply payload");
    (id, payload)
}

/// Asserts the server closes the connection (EOF within the timeout).
fn expect_close(stream: &mut TcpStream) {
    let mut buf = [0u8; 1];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue, // tolerate straggler bytes before EOF
            Err(e) => panic!("expected clean close, got error: {e}"),
        }
    }
}
