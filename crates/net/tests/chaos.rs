//! Failpoint-driven chaos suite for the transport: mid-stream
//! connection drops, corrupt frames, accept-time drops, write failures,
//! pool exhaustion shedding, and graceful shutdown draining a slow
//! in-flight query.
//!
//! Failpoints are process-global, so every test serializes through
//! `failpoint::test_lock()` and clears the registry on entry. Every
//! scenario re-runs its operation with the failpoints disarmed and
//! checks the answer is bit-for-bit identical to in-process `dispatch`.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use qcluster_failpoint::{self as failpoint, Action};
use qcluster_net::{Client, ClientConfig, NetError, Server, ServerConfig};
use qcluster_service::{dispatch, Request, Response, Service, ServiceConfig, ServiceError};

fn corpus() -> Vec<Vec<f64>> {
    (0..256)
        .map(|i| {
            let a = i as f64 * 0.37;
            let blob = (i / 64) as f64 * 10.0;
            vec![blob + a.cos(), blob + a.sin()]
        })
        .collect()
}

fn service() -> Arc<Service> {
    Arc::new(Service::new(&corpus(), ServiceConfig::default()).expect("spawn service"))
}

fn client_config() -> ClientConfig {
    ClientConfig {
        read_timeout: Duration::from_secs(10),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..ClientConfig::default()
    }
}

fn query(session: u64, x: f64, y: f64) -> Request {
    Request::Query {
        session,
        k: 5,
        vector: Some(vec![x, y]),
        deadline_ms: None,
    }
}

/// Asserts a wire query answers bit-for-bit like in-process dispatch on
/// a twin service (same corpus, fresh session each side).
fn assert_clean_query(client: &mut Client, wire_session: u64, local: &Service) {
    let local_session = local.create_session().unwrap();
    let wire = client.call(&query(wire_session, 25.0, 0.5)).unwrap();
    let reference = dispatch(local, query(local_session, 25.0, 0.5));
    match (&wire, &reference) {
        (
            Response::Neighbors {
                neighbors: wn,
                shards_ok: wok,
                ..
            },
            Response::Neighbors {
                neighbors: ln,
                shards_ok: lok,
                ..
            },
        ) => {
            assert_eq!(
                wn, ln,
                "disarmed wire answer diverged from in-process dispatch"
            );
            assert_eq!(wok, lok);
        }
        other => panic!("expected Neighbors from both paths, got {other:?}"),
    }
}

/// `net.read` severs the connection mid-exchange: the in-flight call
/// fails, and the next call transparently reconnects (backoff) and
/// succeeds with a clean answer.
#[test]
fn mid_stream_drop_then_automatic_reconnect() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service();
    let local = service();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), client_config()).unwrap();
    let Response::SessionCreated { session } = client
        .call(&Request::CreateSession { engine: None })
        .unwrap()
    else {
        panic!("expected SessionCreated")
    };

    // Fires once: the reader severs the connection on its next pass.
    failpoint::configure_counted("net.read", Action::Error("sever".into()), 0, Some(1));
    let err = client.call(&query(session, 1.0, 1.0)).unwrap_err();
    assert!(
        matches!(
            err,
            NetError::Closed(_) | NetError::Io(_) | NetError::Timeout(_)
        ),
        "expected a connection failure, got {err:?}"
    );
    assert!(
        !client.is_connected(),
        "failed call must drop the connection"
    );

    // Disarmed: the next call reconnects and matches in-process results.
    failpoint::clear_all();
    let Response::SessionCreated { session } = client
        .call(&Request::CreateSession { engine: None })
        .unwrap()
    else {
        panic!("expected SessionCreated after reconnect")
    };
    assert_clean_query(&mut client, session, &local);
    server.shutdown();
}

/// `net.frame.corrupt` flips a payload byte in the client's request
/// after the CRC is computed: the server answers with a typed decode
/// error on the same connection, which stays usable.
#[test]
fn corrupt_frame_yields_typed_error_and_connection_survives() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service();
    let local = service();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), client_config()).unwrap();
    let Response::SessionCreated { session } = client
        .call(&Request::CreateSession { engine: None })
        .unwrap()
    else {
        panic!("expected SessionCreated")
    };

    // Fires once, corrupting exactly the next encoded frame (the
    // client's request); the server's reply encodes clean.
    failpoint::configure_counted(
        "net.frame.corrupt",
        Action::Error("bitflip".into()),
        0,
        Some(1),
    );
    match client.call(&query(session, 1.0, 1.0)).unwrap() {
        Response::Error(ServiceError::InvalidRequest(msg)) => {
            assert!(
                msg.contains("crc"),
                "expected a CRC mismatch report, got: {msg}"
            )
        }
        other => panic!("expected typed decode error, got {other:?}"),
    }
    assert!(
        client.is_connected(),
        "a recoverable decode error must not close"
    );
    assert_eq!(svc.stats().transport.decode_errors, 1);

    failpoint::clear_all();
    assert_clean_query(&mut client, session, &local);
    server.shutdown();
}

/// `net.accept` drops incoming connections at the acceptor: dials get
/// a dead socket, calls fail, and once the failpoint window is
/// exhausted a retry loop lands a healthy connection.
#[test]
fn accept_drops_then_recovery() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service();
    let local = service();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), ServerConfig::default()).unwrap();

    failpoint::configure_counted("net.accept", Action::Error("drop".into()), 0, Some(2));
    let mut client = Client::connect(server.local_addr(), client_config()).unwrap();
    let mut failures = 0;
    let session = loop {
        match client.call(&Request::CreateSession { engine: None }) {
            Ok(Response::SessionCreated { session }) => break session,
            Ok(other) => panic!("unexpected response {other:?}"),
            Err(_) => {
                failures += 1;
                assert!(failures <= 4, "recovery should need at most a few redials");
            }
        }
    };
    assert!(
        failures >= 1,
        "the armed failpoint should fail at least one call"
    );
    assert_eq!(svc.stats().transport.connections_rejected, 2);

    failpoint::clear_all();
    assert_clean_query(&mut client, session, &local);
    server.shutdown();
}

/// `net.write` fails a response write: the server tears the connection
/// down exactly as on a real socket error, the client sees the close,
/// and the next call reconnects cleanly.
#[test]
fn write_failure_tears_down_and_reconnects() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service();
    let local = service();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), client_config()).unwrap();

    failpoint::configure_counted("net.write", Action::Error("wfail".into()), 0, Some(1));
    let err = client.call(&Request::Stats).unwrap_err();
    assert!(
        matches!(err, NetError::Closed(_) | NetError::Io(_)),
        "expected a connection failure, got {err:?}"
    );

    failpoint::clear_all();
    let Response::SessionCreated { session } = client
        .call(&Request::CreateSession { engine: None })
        .unwrap()
    else {
        panic!("expected SessionCreated after reconnect")
    };
    assert_clean_query(&mut client, session, &local);
    server.shutdown();
}

/// Pool exhaustion: with a tiny per-connection in-flight cap and slow
/// shard jobs, a deep pipelined batch gets typed `Overloaded` replies
/// for the overflow instead of unbounded queueing — and the shed
/// counter records every one.
#[test]
fn pipelining_past_capacity_sheds_with_typed_overloaded() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service();
    let local = service();
    let config = ServerConfig {
        writer_queue_depth: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), config).unwrap();
    let mut client = Client::connect(server.local_addr(), client_config()).unwrap();
    let Response::SessionCreated { session } = client
        .call(&Request::CreateSession { engine: None })
        .unwrap()
    else {
        panic!("expected SessionCreated")
    };

    // Every shard job sleeps, so admitted queries hold their in-flight
    // slots long enough for the rest of the batch to overflow the cap.
    failpoint::configure("executor.shard", Action::Sleep(150));
    let requests: Vec<Request> = (0..8).map(|i| query(session, i as f64, 0.0)).collect();
    let responses = client.query_many(&requests).unwrap();
    assert_eq!(responses.len(), 8);
    let overloaded = responses
        .iter()
        .filter(|r| matches!(r, Response::Error(ServiceError::Overloaded { .. })))
        .count();
    let answered = responses
        .iter()
        .filter(|r| matches!(r, Response::Neighbors { .. }))
        .count();
    assert!(
        overloaded >= 1,
        "the overflow must shed with typed Overloaded frames"
    );
    assert!(answered >= 2, "admitted queries must still answer");
    assert_eq!(
        overloaded + answered,
        8,
        "every request gets exactly one reply"
    );
    assert!(svc.stats().transport.write_queue_sheds >= overloaded as u64);

    failpoint::clear_all();
    assert_clean_query(&mut client, session, &local);
    server.shutdown();
}

/// Graceful shutdown drains a slow in-flight query: the client gets its
/// answer even though shutdown started while the query was running, and
/// the report counts the drain.
#[test]
fn graceful_shutdown_drains_slow_inflight_query() {
    let _serial = failpoint::test_lock();
    failpoint::clear_all();

    let svc = service();
    let local = service();
    let config = ServerConfig {
        drain_deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), config).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr, client_config()).unwrap();
    let Response::SessionCreated { session } = client
        .call(&Request::CreateSession { engine: None })
        .unwrap()
    else {
        panic!("expected SessionCreated")
    };

    // The in-flight query sleeps ~300ms per shard job.
    failpoint::configure_counted("executor.shard", Action::Sleep(300), 0, Some(4));
    let slow = thread::spawn(move || {
        let started = Instant::now();
        let response = client.call(&query(session, 25.0, 0.5));
        (response, started.elapsed())
    });
    // Let the query reach the executor before initiating shutdown.
    thread::sleep(Duration::from_millis(100));
    let shutdown_started = Instant::now();
    let report = server.shutdown();
    let shutdown_took = shutdown_started.elapsed();

    let (response, call_took) = slow.join().expect("client thread");
    let response = response.expect("the draining server must still deliver the response");
    assert!(
        matches!(response, Response::Neighbors { .. }),
        "expected the slow query's answer, got {response:?}"
    );
    assert!(
        call_took >= Duration::from_millis(250),
        "the query really was slow"
    );
    assert_eq!(
        report.drained, 1,
        "the drain must count the slow query: {report:?}"
    );
    assert_eq!(
        report.aborted_inflight, 0,
        "nothing should be cut short: {report:?}"
    );
    assert_eq!(
        report.detached_threads, 0,
        "all threads should join: {report:?}"
    );
    assert!(report.clean());
    assert!(
        shutdown_took < Duration::from_secs(4),
        "drain should finish well before the deadline, took {shutdown_took:?}"
    );
    assert_eq!(svc.stats().transport.shutdown_drains, 1);

    // Disarmed: a fresh server over the same corpus answers bit-for-bit
    // like in-process dispatch.
    failpoint::clear_all();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&svc), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), client_config()).unwrap();
    let Response::SessionCreated { session } = client
        .call(&Request::CreateSession { engine: None })
        .unwrap()
    else {
        panic!("expected SessionCreated")
    };
    assert_clean_query(&mut client, session, &local);
    let report = server.shutdown();
    assert_eq!(report.aborted_inflight, 0);
}
