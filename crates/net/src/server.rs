//! The TCP server: an acceptor thread, per-connection reader/writer
//! threads, and a shared bounded handler pool executing
//! [`dispatch`](qcluster_service::dispatch).
//!
//! ## Threading model
//!
//! ```text
//!   acceptor ──accept──▶ per-conn reader ──Job──▶ handler pool (N)
//!                              │                        │
//!                              │ decode-error replies   │ responses
//!                              ▼                        ▼
//!                        bounded writer queue ──▶ per-conn writer ──▶ socket
//! ```
//!
//! The reader decodes frames and *admits* requests; the handler pool
//! executes them (panic-isolated); the writer serializes responses in
//! completion order — responses for a pipelined connection can return
//! **out of order**, matched by request id.
//!
//! ## Backpressure and shedding
//!
//! Two bounds protect the server:
//!
//! - **Per-connection in-flight cap** (`writer_queue_depth`): a
//!   connection with that many requests decoded-but-unanswered gets a
//!   typed `Overloaded` reply instead of execution. The reply itself
//!   uses a *blocking* enqueue, so a peer that keeps flooding stops
//!   being read — its TCP window fills and the backpressure reaches the
//!   sender.
//! - **Handler pool admission** (`max_queued_jobs`): when the shared
//!   job queue is full, the request is shed with a typed `Overloaded`
//!   reply rather than queued unboundedly.
//!
//! ## Graceful shutdown
//!
//! [`Server::shutdown`] walks a three-stage state machine: **stop
//! accepting** (shutdown flag; acceptor exits), **drain** (half-close
//! every connection's read side so no new requests arrive, wait up to
//! `drain_deadline` for in-flight requests to finish and their
//! responses to be written), **close** (force-close sockets, join
//! threads up to a grace period, detach stragglers). The returned
//! [`ShutdownReport`] says how clean it was.

use crate::error::NetError;
use crate::frame::{self, FrameKind, ReadFrame, DEFAULT_MAX_PAYLOAD};
use crate::repl::{ReplReply, ReplRequest};
use crossbeam::channel::{bounded, BoundedSender, Receiver, RecvTimeoutError, TrySendError};
use qcluster_service::{dispatch, Request, Response, Service, ServiceError};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections beyond this are rejected with a best-effort typed
    /// `Overloaded` frame (request id 0) and closed.
    pub max_connections: usize,
    /// Threads in the shared request-handler pool.
    pub num_handlers: usize,
    /// Per-connection pipelining cap: requests decoded but not yet
    /// answered. Beyond it the reader sheds with a typed `Overloaded`
    /// reply. Also sizes the writer queue.
    pub writer_queue_depth: usize,
    /// Bound on the shared handler-pool job queue; admission beyond it
    /// sheds with a typed `Overloaded` reply.
    pub max_queued_jobs: usize,
    /// Socket read timeout. Elapsing while *idle* (between frames) is
    /// benign; elapsing *mid-frame* closes the connection (slowloris
    /// defense). Also bounds shutdown-latency for idle readers.
    pub read_timeout: Duration,
    /// Socket write timeout; a peer that stops draining responses gets
    /// its connection closed after this long.
    pub write_timeout: Duration,
    /// Cap on accepted frame payload size.
    pub max_frame_len: u32,
    /// How long [`Server::shutdown`] waits for in-flight requests to
    /// finish before force-closing.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            num_handlers: 4,
            writer_queue_depth: 32,
            max_queued_jobs: 256,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(5),
            max_frame_len: DEFAULT_MAX_PAYLOAD,
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// What [`Server::shutdown`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// In-flight requests whose responses were written during the
    /// drain window.
    pub drained: u64,
    /// Requests still in flight when the drain deadline expired (their
    /// connections were force-closed).
    pub aborted_inflight: usize,
    /// Threads that did not exit within the join grace period and were
    /// detached.
    pub detached_threads: usize,
}

impl ShutdownReport {
    /// `true` when nothing was cut short: every in-flight request
    /// drained and every thread joined.
    pub fn clean(&self) -> bool {
        self.aborted_inflight == 0 && self.detached_threads == 0
    }
}

/// State shared by the acceptor, readers, writers, and handlers.
struct Shared {
    service: Arc<Service>,
    config: ServerConfig,
    shutdown: AtomicBool,
    force_close: AtomicBool,
    active_conns: AtomicUsize,
    /// Requests decoded but whose responses are not yet written.
    inflight: AtomicUsize,
    /// In-flight requests completed during the shutdown drain window.
    drained: AtomicU64,
    /// Stream clones for shutdown signaling, keyed by connection id.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

/// RAII in-flight accounting: created at admission, dropped once the
/// response is written (or abandoned on any failure path), so the
/// drain wait in shutdown always makes progress.
struct InflightGuard {
    shared: Arc<Shared>,
    conn_inflight: Arc<AtomicUsize>,
}

impl InflightGuard {
    fn new(shared: &Arc<Shared>, conn_inflight: &Arc<AtomicUsize>) -> InflightGuard {
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        conn_inflight.fetch_add(1, Ordering::SeqCst);
        InflightGuard {
            shared: Arc::clone(shared),
            conn_inflight: Arc::clone(conn_inflight),
        }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        self.conn_inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One admitted request traveling to the handler pool.
struct Job {
    request_id: u64,
    request: Request,
    reply: BoundedSender<WriteItem>,
    guard: InflightGuard,
}

/// What a [`WriteItem`] carries: a protocol response (JSON, kind 2) or
/// a pre-encoded replication reply (binary, kind 4). The writer thread
/// picks the frame kind from the body, so both protocols share one
/// ordered writer queue per connection.
enum WriteBody {
    Response(Response),
    Repl(Vec<u8>),
}

/// One response (or transport-level error reply) traveling to a
/// connection's writer.
struct WriteItem {
    request_id: u64,
    body: WriteBody,
    /// Present for admitted requests; `None` for decode-error, shed,
    /// and replication replies, which never counted as in-flight.
    guard: Option<InflightGuard>,
}

/// A framed TCP server fronting one shared [`Service`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    /// Per-connection reader/writer handles (pruned opportunistically).
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    handler_threads: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    /// Keeps the handler pool alive; dropped during shutdown so the
    /// handlers exit once the queue drains.
    job_tx: Option<BoundedSender<Job>>,
    finished: bool,
}

impl Server {
    /// Binds a listener, starts the acceptor and handler pool, and
    /// begins serving `service`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<Service>,
        config: ServerConfig,
    ) -> Result<Server, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config: config.clone(),
            shutdown: AtomicBool::new(false),
            force_close: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            drained: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
        });
        let (job_tx, job_rx) = bounded::<Job>(config.max_queued_jobs.max(1));
        let mut handler_threads = Vec::with_capacity(config.num_handlers);
        for i in 0..config.num_handlers.max(1) {
            let shared = Arc::clone(&shared);
            let job_rx = job_rx.clone();
            handler_threads.push(
                std::thread::Builder::new()
                    .name(format!("qnet-handler-{i}"))
                    .spawn(move || handler_loop(shared, job_rx))
                    .map_err(NetError::Io)?,
            );
        }
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let job_tx = job_tx.clone();
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("qnet-acceptor".into())
                .spawn(move || acceptor_loop(shared, listener, job_tx, conn_threads))
                .map_err(NetError::Io)?
        };
        Ok(Server {
            shared,
            local_addr,
            conn_threads,
            handler_threads,
            acceptor: Some(acceptor),
            job_tx: Some(job_tx),
            finished: false,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests currently decoded but unanswered.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::SeqCst)
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> usize {
        self.shared.active_conns.load(Ordering::SeqCst)
    }

    /// Gracefully shuts down: stop accepting, drain in-flight requests
    /// up to the configured deadline, then close everything.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ShutdownReport {
        if self.finished {
            return ShutdownReport {
                drained: 0,
                aborted_inflight: 0,
                detached_threads: 0,
            };
        }
        self.finished = true;
        let shared = &self.shared;
        // Stage 1: stop accepting. The acceptor polls the flag.
        shared.shutdown.store(true, Ordering::SeqCst);
        // Stage 2: drain. Half-close every connection's read side so
        // readers see EOF and stop admitting, while writers keep
        // flushing responses for requests already in flight.
        {
            let conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        let deadline = Instant::now() + shared.config.drain_deadline;
        while shared.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let aborted_inflight = shared.inflight.load(Ordering::SeqCst);
        // Stage 3: close. Writers notice `force_close` on their next
        // queue-poll tick; sockets are torn down under them.
        shared.force_close.store(true, Ordering::SeqCst);
        {
            let conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        drop(self.job_tx.take());
        let mut detached_threads = 0;
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let grace = Instant::now() + Duration::from_secs(2);
        let mut pending: Vec<JoinHandle<()>> = {
            let mut guard = self.conn_threads.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        pending.append(&mut self.handler_threads);
        while !pending.is_empty() && Instant::now() < grace {
            let mut i = 0;
            while i < pending.len() {
                if pending[i].is_finished() {
                    let _ = pending.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
            if !pending.is_empty() {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // Stragglers (e.g. a handler wedged in a pathological query)
        // are detached rather than blocking shutdown forever.
        detached_threads += pending.len();
        drop(pending);
        ShutdownReport {
            drained: shared.drained.load(Ordering::SeqCst),
            aborted_inflight,
            detached_threads,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.shutdown_inner();
        }
    }
}

fn acceptor_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    job_tx: BoundedSender<Job>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut next_conn_id: u64 = 1;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if qcluster_failpoint::active()
                    && qcluster_failpoint::evaluate_sleepy("net.accept").is_some()
                {
                    shared.service.metrics().record_connection_rejected();
                    drop(stream);
                    continue;
                }
                let active = shared.active_conns.load(Ordering::SeqCst);
                if active >= shared.config.max_connections {
                    reject_connection(&shared, stream, active);
                    continue;
                }
                let conn_id = next_conn_id;
                next_conn_id += 1;
                if let Err(_e) = spawn_connection(&shared, &job_tx, &conn_threads, conn_id, stream)
                {
                    shared.service.metrics().record_connection_rejected();
                }
                prune_finished(&conn_threads);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Best-effort typed reject for a connection over the cap: one
/// `Overloaded` frame with request id 0, then close.
fn reject_connection(shared: &Arc<Shared>, mut stream: TcpStream, active: usize) {
    shared.service.metrics().record_connection_rejected();
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let response = Response::Error(ServiceError::Overloaded {
        queued: active,
        capacity: shared.config.max_connections,
    });
    if let Ok(payload) = serde_json::to_string(&response) {
        let _ = frame::write_frame(&mut stream, FrameKind::Response, 0, payload.as_bytes());
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn spawn_connection(
    shared: &Arc<Shared>,
    job_tx: &BoundedSender<Job>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    conn_id: u64,
    stream: TcpStream,
) -> std::io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    let write_half = stream.try_clone()?;
    let registry_clone = stream.try_clone()?;
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(conn_id, registry_clone);
    shared.active_conns.fetch_add(1, Ordering::SeqCst);
    shared.service.metrics().record_connection_opened();
    // The writer queue is twice the in-flight cap so decode-error and
    // shed replies (which bypass in-flight accounting) rarely block
    // the reader; when they do, that block IS the backpressure.
    let (reply_tx, reply_rx) = bounded::<WriteItem>(shared.config.writer_queue_depth.max(1) * 2);
    let conn_inflight = Arc::new(AtomicUsize::new(0));
    let reader = {
        let shared = Arc::clone(shared);
        let job_tx = job_tx.clone();
        let reply_tx = reply_tx.clone();
        let conn_inflight = Arc::clone(&conn_inflight);
        std::thread::Builder::new()
            .name(format!("qnet-read-{conn_id}"))
            .spawn(move || reader_loop(shared, stream, job_tx, reply_tx, conn_inflight))?
    };
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("qnet-write-{conn_id}"))
            .spawn(move || writer_loop(shared, conn_id, write_half, reply_rx))
    };
    let writer = match writer {
        Ok(w) => w,
        Err(e) => {
            // Roll back: without a writer the connection is useless.
            shared
                .conns
                .lock()
                .unwrap_or_else(|er| er.into_inner())
                .remove(&conn_id);
            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            shared.service.metrics().record_connection_closed();
            let _ = reader.join();
            return Err(e);
        }
    };
    let mut guard = conn_threads.lock().unwrap_or_else(|e| e.into_inner());
    guard.push(reader);
    guard.push(writer);
    Ok(())
}

/// Joins connection threads that have already exited, so long-lived
/// servers do not accumulate dead handles.
fn prune_finished(conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    let mut guard = conn_threads.lock().unwrap_or_else(|e| e.into_inner());
    let mut i = 0;
    while i < guard.len() {
        if guard[i].is_finished() {
            let _ = guard.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn reader_loop(
    shared: Arc<Shared>,
    mut stream: TcpStream,
    job_tx: BoundedSender<Job>,
    reply_tx: BoundedSender<WriteItem>,
    conn_inflight: Arc<AtomicUsize>,
) {
    let max_payload = shared.config.max_frame_len;
    let depth = shared.config.writer_queue_depth.max(1);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match frame::read_frame(&mut stream, max_payload) {
            Ok(ReadFrame::Idle) => continue,
            Ok(ReadFrame::Eof) => break,
            Ok(ReadFrame::Corrupt { request_id, error }) => {
                shared.service.metrics().record_decode_error();
                let fatal = error.is_fatal();
                let response = Response::Error(ServiceError::InvalidRequest(format!(
                    "frame decode failed: {error}"
                )));
                let delivered = reply_tx
                    .send(WriteItem {
                        request_id,
                        body: WriteBody::Response(response),
                        guard: None,
                    })
                    .is_ok();
                if fatal || !delivered {
                    break;
                }
            }
            Ok(ReadFrame::Frame(f)) => {
                // Failpoint `net.read`: sever the connection exactly on
                // the next received frame (a deterministic mid-exchange
                // connection loss — the frame is never answered).
                if qcluster_failpoint::active()
                    && qcluster_failpoint::evaluate_sleepy("net.read").is_some()
                {
                    let _ = stream.shutdown(Shutdown::Both);
                    break;
                }
                shared.service.metrics().record_frame_in();
                if f.kind == FrameKind::ReplRequest {
                    // Replication runs inline on the reader thread: the
                    // follower's Apply stream must be processed in
                    // arrival order, and skipping the handler pool keeps
                    // WAL shipping from competing with query admission.
                    let reply = match ReplRequest::decode(&f.payload) {
                        Ok(req) => {
                            let service = Arc::clone(&shared.service);
                            catch_unwind(AssertUnwindSafe(move || handle_repl(&service, req)))
                                .unwrap_or_else(|_| ReplReply::Err {
                                    msg: "replication handler panicked".into(),
                                })
                        }
                        Err(e) => {
                            shared.service.metrics().record_decode_error();
                            ReplReply::Err {
                                msg: format!("replication payload did not parse: {e}"),
                            }
                        }
                    };
                    if reply_tx
                        .send(WriteItem {
                            request_id: f.request_id,
                            body: WriteBody::Repl(reply.encode()),
                            guard: None,
                        })
                        .is_err()
                    {
                        break;
                    }
                    continue;
                }
                if f.kind != FrameKind::Request {
                    shared.service.metrics().record_decode_error();
                    let response = Response::Error(ServiceError::InvalidRequest(
                        "expected a request frame, got a response frame".into(),
                    ));
                    if reply_tx
                        .send(WriteItem {
                            request_id: f.request_id,
                            body: WriteBody::Response(response),
                            guard: None,
                        })
                        .is_err()
                    {
                        break;
                    }
                    continue;
                }
                let parsed: Result<Request, String> = std::str::from_utf8(&f.payload)
                    .map_err(|e| format!("payload is not utf-8: {e}"))
                    .and_then(|s| serde_json::from_str::<Request>(s).map_err(|e| format!("{e}")));
                let request = match parsed {
                    Ok(request) => request,
                    Err(e) => {
                        shared.service.metrics().record_decode_error();
                        let response = Response::Error(ServiceError::InvalidRequest(format!(
                            "request payload did not parse: {e}"
                        )));
                        if reply_tx
                            .send(WriteItem {
                                request_id: f.request_id,
                                body: WriteBody::Response(response),
                                guard: None,
                            })
                            .is_err()
                        {
                            break;
                        }
                        continue;
                    }
                };
                // Pipelining cap: shed instead of queueing unboundedly.
                if conn_inflight.load(Ordering::SeqCst) >= depth {
                    shared.service.metrics().record_write_queue_shed();
                    let response = Response::Error(ServiceError::Overloaded {
                        queued: depth,
                        capacity: depth,
                    });
                    if reply_tx
                        .send(WriteItem {
                            request_id: f.request_id,
                            body: WriteBody::Response(response),
                            guard: None,
                        })
                        .is_err()
                    {
                        break;
                    }
                    continue;
                }
                let guard = InflightGuard::new(&shared, &conn_inflight);
                let job = Job {
                    request_id: f.request_id,
                    request,
                    reply: reply_tx.clone(),
                    guard,
                };
                match job_tx.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(job)) => {
                        shared.service.metrics().record_write_queue_shed();
                        let response = Response::Error(ServiceError::Overloaded {
                            queued: shared.config.max_queued_jobs,
                            capacity: shared.config.max_queued_jobs,
                        });
                        // Keep the guard until the shed reply is
                        // enqueued so in-flight accounting stays exact.
                        if reply_tx
                            .send(WriteItem {
                                request_id: job.request_id,
                                body: WriteBody::Response(response),
                                guard: Some(job.guard),
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(_) => break,
        }
    }
    // Dropping reply_tx lets the writer exit once outstanding jobs for
    // this connection have flushed their responses.
}

/// Serves one replication request against the fronted service. Every
/// failure becomes a typed [`ReplReply::Err`]; the connection stays up.
fn handle_repl(service: &Service, req: ReplRequest) -> ReplReply {
    match req {
        ReplRequest::Fetch { from, max } => match service.replication_chunk(from, max) {
            Ok((total, frames)) => ReplReply::Chunk { total, frames },
            Err(e) => ReplReply::Err { msg: e.to_string() },
        },
        ReplRequest::Apply {
            term,
            lease_ms,
            frames,
        } => {
            // Fence before touching the WAL: a ship from a deposed
            // leader must not append a single record.
            match service.fence_apply(term, lease_ms) {
                Ok(Some(current)) => return ReplReply::StaleTerm { current },
                Ok(None) => {}
                Err(e) => return ReplReply::Err { msg: e.to_string() },
            }
            if frames.is_empty() {
                // Pure fence probe / lease renewal.
                let (total, _) = service.replication_status();
                return ReplReply::Applied { total, applied: 0 };
            }
            match service.apply_replication(&frames) {
                Ok((total, applied)) => ReplReply::Applied { total, applied },
                Err(e) => ReplReply::Err { msg: e.to_string() },
            }
        }
        ReplRequest::Status => {
            let (total, durable) = service.replication_status();
            let (term, leased) = service.consensus_status();
            ReplReply::Status {
                total,
                durable,
                term,
                leased,
            }
        }
        ReplRequest::Vote { term, lease_ms } => match service.handle_vote(term, lease_ms) {
            Ok((granted, term)) => ReplReply::Vote { granted, term },
            Err(e) => ReplReply::Err { msg: e.to_string() },
        },
    }
}

fn handler_loop(shared: Arc<Shared>, job_rx: Receiver<Job>) {
    while let Ok(job) = job_rx.recv() {
        let Job {
            request_id,
            request,
            reply,
            guard,
        } = job;
        let service = Arc::clone(&shared.service);
        let response = catch_unwind(AssertUnwindSafe(move || dispatch(&service, request)))
            .unwrap_or_else(|_| {
                Response::Error(ServiceError::Internal(
                    "request handler panicked; request failed cleanly".into(),
                ))
            });
        let _ = reply.send(WriteItem {
            request_id,
            body: WriteBody::Response(response),
            guard: Some(guard),
        });
    }
}

fn writer_loop(
    shared: Arc<Shared>,
    conn_id: u64,
    mut stream: TcpStream,
    reply_rx: Receiver<WriteItem>,
) {
    loop {
        match reply_rx.recv_timeout(Duration::from_millis(25)) {
            Ok(item) => {
                if qcluster_failpoint::active()
                    && qcluster_failpoint::evaluate_sleepy("net.write").is_some()
                {
                    // Simulated write failure: the connection is torn
                    // down exactly as on a real socket error.
                    break;
                }
                let WriteItem {
                    request_id,
                    body,
                    guard,
                } = item;
                let (kind, payload) = match body {
                    WriteBody::Response(response) => {
                        let payload = match serde_json::to_string(&response) {
                            Ok(p) => p.into_bytes(),
                            Err(_) => {
                                // Unserializable response: report rather
                                // than silently dropping the reply.
                                serde_json::to_string(&Response::Error(ServiceError::Internal(
                                    "response failed to serialize".into(),
                                )))
                                .unwrap_or_else(|_| String::from("{}"))
                                .into_bytes()
                            }
                        };
                        (FrameKind::Response, payload)
                    }
                    WriteBody::Repl(bytes) => (FrameKind::ReplResponse, bytes),
                };
                match frame::write_frame(&mut stream, kind, request_id, &payload) {
                    Ok(()) => {
                        shared.service.metrics().record_frame_out();
                        if guard.is_some() && shared.shutdown.load(Ordering::SeqCst) {
                            shared.drained.fetch_add(1, Ordering::SeqCst);
                            shared.service.metrics().record_shutdown_drains(1);
                        }
                    }
                    Err(_) => break,
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.force_close.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Tear down both halves so the reader unblocks, then drain leftover
    // items so their in-flight guards release.
    let _ = stream.shutdown(Shutdown::Both);
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&conn_id);
    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
    shared.service.metrics().record_connection_closed();
    while let Ok(_leftover) = reply_rx.try_recv() {}
}
