//! Binary replication protocol carried in [`FrameKind::ReplRequest`] /
//! [`FrameKind::ReplResponse`](crate::frame::FrameKind::ReplResponse)
//! frames.
//!
//! Replication ships the store's CRC-framed WAL records
//! (`qcluster_store::encode_record_frame` byte format) from a leader to
//! followers. The payload here is deliberately *not* JSON: WAL frames
//! are opaque binary and the follower applies them through the same
//! strict decoder it uses at recovery, so the codec is a thin tagged
//! envelope around them.
//!
//! | tag | request                         | reply                               |
//! |-----|---------------------------------|-------------------------------------|
//! | 1   | `Fetch { from, max }`           | `Chunk { total, frames }`           |
//! | 2   | `Apply { term, lease_ms, frames }` | `Applied { total, applied }`     |
//! | 3   | `Status`                        | `Status { total, durable, term, leased }` |
//! | 4   | `Vote { term, lease_ms }`       | `Err { msg }`                       |
//! | 5   | —                               | `StaleTerm { current }`             |
//! | 6   | —                               | `Vote { granted, term }`            |
//!
//! All integers are little-endian. Variable-length fields carry a
//! `u32` length prefix. The envelope is versioned implicitly by the
//! frame header's protocol version; decode failures map onto
//! [`FrameError::Payload`] so the server's existing recoverable-error
//! reply path covers them.

use crate::frame::FrameError;

/// Cap on a variable-length field inside a replication payload, so a
/// corrupt length prefix cannot drive a huge allocation. Matches the
/// frame-level default payload cap.
const MAX_FIELD: u32 = crate::frame::DEFAULT_MAX_PAYLOAD;

/// A replication request, leader/follower → peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplRequest {
    /// Ask the peer (a leader) for ingest records starting at global
    /// vector id `from`, at most `max` records.
    Fetch {
        /// First global vector id wanted (the follower's current
        /// committed total).
        from: u64,
        /// Maximum number of records to return in one chunk.
        max: u32,
    },
    /// Ship WAL frames for the peer (a follower) to apply. `frames` is
    /// a concatenation of store WAL frames
    /// (`[len u32][crc u32][payload]` each), byte-identical to what a
    /// local `WalWriter` would have produced. The ship is **fenced**:
    /// it carries the leader's term and lease duration, and a follower
    /// whose current term is higher rejects it with
    /// [`ReplReply::StaleTerm`] instead of applying. An empty `frames`
    /// is a pure fence probe / lease renewal. `term == 0` is the legacy
    /// unfenced path (single-router bootstrap): always accepted.
    Apply {
        /// The shipper's leadership term (0 = unfenced legacy ship).
        term: u64,
        /// Lease duration granted from the follower's receipt time, in
        /// milliseconds (0 = no lease refresh).
        lease_ms: u64,
        /// Concatenated WAL frame bytes.
        frames: Vec<u8>,
    },
    /// Ask the peer for its replication position.
    Status,
    /// Ask the peer to vote for a candidate leader at `term`. Granted
    /// iff `term` is higher than every term the peer has acknowledged
    /// AND the peer holds no unexpired vote-lease for another term —
    /// the lease is what stops two contending routers from both
    /// winning the same nodes.
    Vote {
        /// The candidate's proposed term.
        term: u64,
        /// Vote-lease duration in milliseconds: how long the peer
        /// refuses competing candidates after granting.
        lease_ms: u64,
    },
}

/// A replication reply, peer → requester.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplReply {
    /// Records from `Fetch`. `total` is the leader's committed vector
    /// count; an empty `frames` with `from == total` means caught up.
    Chunk {
        /// Leader's committed total (vectors durably ingested).
        total: u64,
        /// Concatenated WAL frame bytes, in id order starting at the
        /// requested `from`.
        frames: Vec<u8>,
    },
    /// Outcome of `Apply`. `applied` counts records actually ingested
    /// (duplicates below `total` are skipped idempotently and not
    /// counted).
    Applied {
        /// Follower's committed total after the apply.
        total: u64,
        /// Records newly applied by this request.
        applied: u64,
    },
    /// Replication position from `Status`.
    Status {
        /// Committed vector count.
        total: u64,
        /// Vectors durable on disk (equals `total` when the node runs
        /// a store; 0 when memory-only).
        durable: u64,
        /// Highest term this node has acknowledged (0 = never fenced).
        term: u64,
        /// Whether the node currently holds an unexpired leader lease.
        leased: bool,
    },
    /// The peer could not serve the request (gap, storage failure, …).
    Err {
        /// Human-readable reason.
        msg: String,
    },
    /// A fenced `Apply` was rejected: the shipper's term is stale. The
    /// zombie leader (or losing router) must stop shipping and
    /// re-discover the cluster's real leadership.
    StaleTerm {
        /// The term the rejecting node has acknowledged.
        current: u64,
    },
    /// Outcome of a `Vote` request.
    Vote {
        /// Whether the vote was granted.
        granted: bool,
        /// The peer's current term after considering the request (the
        /// candidate's term when granted; the higher conflicting term
        /// when refused).
        term: u64,
    },
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| FrameError::Payload(format!("repl payload: {what} length overflows")))?;
        if end > self.bytes.len() {
            return Err(FrameError::Payload(format!(
                "repl payload truncated reading {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn bytes_field(&mut self, what: &str) -> Result<&'a [u8], FrameError> {
        let len = self.u32(what)?;
        if len > MAX_FIELD {
            return Err(FrameError::Payload(format!(
                "repl payload: {what} declares {len} bytes (cap {MAX_FIELD})"
            )));
        }
        self.take(len as usize, what)
    }

    fn finish(&self, what: &str) -> Result<(), FrameError> {
        if self.pos != self.bytes.len() {
            return Err(FrameError::Payload(format!(
                "repl payload: {} trailing bytes after {what}",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl ReplRequest {
    /// Serializes into the tagged binary envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ReplRequest::Fetch { from, max } => {
                buf.push(1);
                buf.extend_from_slice(&from.to_le_bytes());
                buf.extend_from_slice(&max.to_le_bytes());
            }
            ReplRequest::Apply {
                term,
                lease_ms,
                frames,
            } => {
                buf.push(2);
                buf.extend_from_slice(&term.to_le_bytes());
                buf.extend_from_slice(&lease_ms.to_le_bytes());
                put_bytes(&mut buf, frames);
            }
            ReplRequest::Status => buf.push(3),
            ReplRequest::Vote { term, lease_ms } => {
                buf.push(4);
                buf.extend_from_slice(&term.to_le_bytes());
                buf.extend_from_slice(&lease_ms.to_le_bytes());
            }
        }
        buf
    }

    /// Parses the tagged binary envelope, rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        let mut r = Reader::new(bytes);
        let out = match r.u8("request tag")? {
            1 => ReplRequest::Fetch {
                from: r.u64("fetch.from")?,
                max: r.u32("fetch.max")?,
            },
            2 => ReplRequest::Apply {
                term: r.u64("apply.term")?,
                lease_ms: r.u64("apply.lease_ms")?,
                frames: r.bytes_field("apply.frames")?.to_vec(),
            },
            3 => ReplRequest::Status,
            4 => ReplRequest::Vote {
                term: r.u64("vote.term")?,
                lease_ms: r.u64("vote.lease_ms")?,
            },
            tag => {
                return Err(FrameError::Payload(format!(
                    "repl payload: unknown request tag {tag}"
                )))
            }
        };
        r.finish("request")?;
        Ok(out)
    }
}

impl ReplReply {
    /// Serializes into the tagged binary envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ReplReply::Chunk { total, frames } => {
                buf.push(1);
                buf.extend_from_slice(&total.to_le_bytes());
                put_bytes(&mut buf, frames);
            }
            ReplReply::Applied { total, applied } => {
                buf.push(2);
                buf.extend_from_slice(&total.to_le_bytes());
                buf.extend_from_slice(&applied.to_le_bytes());
            }
            ReplReply::Status {
                total,
                durable,
                term,
                leased,
            } => {
                buf.push(3);
                buf.extend_from_slice(&total.to_le_bytes());
                buf.extend_from_slice(&durable.to_le_bytes());
                buf.extend_from_slice(&term.to_le_bytes());
                buf.push(u8::from(*leased));
            }
            ReplReply::Err { msg } => {
                buf.push(4);
                put_bytes(&mut buf, msg.as_bytes());
            }
            ReplReply::StaleTerm { current } => {
                buf.push(5);
                buf.extend_from_slice(&current.to_le_bytes());
            }
            ReplReply::Vote { granted, term } => {
                buf.push(6);
                buf.push(u8::from(*granted));
                buf.extend_from_slice(&term.to_le_bytes());
            }
        }
        buf
    }

    /// Parses the tagged binary envelope, rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        let mut r = Reader::new(bytes);
        let out = match r.u8("reply tag")? {
            1 => ReplReply::Chunk {
                total: r.u64("chunk.total")?,
                frames: r.bytes_field("chunk.frames")?.to_vec(),
            },
            2 => ReplReply::Applied {
                total: r.u64("applied.total")?,
                applied: r.u64("applied.applied")?,
            },
            3 => ReplReply::Status {
                total: r.u64("status.total")?,
                durable: r.u64("status.durable")?,
                term: r.u64("status.term")?,
                leased: match r.u8("status.leased")? {
                    0 => false,
                    1 => true,
                    v => {
                        return Err(FrameError::Payload(format!(
                            "repl payload: status.leased byte {v} is not a bool"
                        )))
                    }
                },
            },
            4 => ReplReply::Err {
                msg: String::from_utf8_lossy(r.bytes_field("err.msg")?).into_owned(),
            },
            5 => ReplReply::StaleTerm {
                current: r.u64("stale_term.current")?,
            },
            6 => ReplReply::Vote {
                granted: match r.u8("vote.granted")? {
                    0 => false,
                    1 => true,
                    v => {
                        return Err(FrameError::Payload(format!(
                            "repl payload: vote.granted byte {v} is not a bool"
                        )))
                    }
                },
                term: r.u64("vote.term")?,
            },
            tag => {
                return Err(FrameError::Payload(format!(
                    "repl payload: unknown reply tag {tag}"
                )))
            }
        };
        r.finish("reply")?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            ReplRequest::Fetch { from: 0, max: 128 },
            ReplRequest::Fetch {
                from: u64::MAX,
                max: u32::MAX,
            },
            ReplRequest::Apply {
                term: 0,
                lease_ms: 0,
                frames: vec![],
            },
            ReplRequest::Apply {
                term: 7,
                lease_ms: 1_500,
                frames: vec![1, 2, 3, 0xFF],
            },
            ReplRequest::Status,
            ReplRequest::Vote {
                term: u64::MAX,
                lease_ms: 2_000,
            },
        ] {
            let bytes = req.encode();
            assert_eq!(ReplRequest::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn replies_round_trip() {
        for reply in [
            ReplReply::Chunk {
                total: 7,
                frames: vec![9, 9, 9],
            },
            ReplReply::Chunk {
                total: 0,
                frames: vec![],
            },
            ReplReply::Applied {
                total: 12,
                applied: 5,
            },
            ReplReply::Status {
                total: 3,
                durable: 3,
                term: 9,
                leased: true,
            },
            ReplReply::Status {
                total: 0,
                durable: 0,
                term: 0,
                leased: false,
            },
            ReplReply::Err {
                msg: "ingest id 9 but expected 4".into(),
            },
            ReplReply::StaleTerm { current: 11 },
            ReplReply::Vote {
                granted: true,
                term: 4,
            },
            ReplReply::Vote {
                granted: false,
                term: u64::MAX,
            },
        ] {
            let bytes = reply.encode();
            assert_eq!(ReplReply::decode(&bytes).unwrap(), reply);
        }
    }

    #[test]
    fn malformed_payloads_are_recoverable_payload_errors() {
        let mut apply_overrun = vec![2u8];
        apply_overrun.extend_from_slice(&[0; 16]); // term + lease_ms
        apply_overrun.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF]); // frames len
        for bytes in [
            &[][..],
            &[9],               // unknown tag
            &[1, 0, 0],         // fetch truncated
            &apply_overrun[..], // apply frames length overruns cap/input
            &[4, 1, 0],         // vote truncated
            &ReplRequest::Status
                .encode()
                .iter()
                .chain(&[0])
                .copied()
                .collect::<Vec<_>>()[..],
        ] {
            let err = ReplRequest::decode(bytes).unwrap_err();
            assert!(matches!(err, FrameError::Payload(_)), "{bytes:?} -> {err}");
            assert!(!err.is_fatal(), "repl decode errors must stay recoverable");
        }
        assert!(matches!(
            ReplReply::decode(&[4, 2, 0, 0, 0, 0xC3]).map(|r| format!("{r:?}")),
            Err(FrameError::Payload(_)) | Ok(_)
        ));
        // Non-0/1 bool bytes and truncated new replies are recoverable.
        let mut bad_leased = ReplReply::Status {
            total: 1,
            durable: 1,
            term: 1,
            leased: false,
        }
        .encode();
        *bad_leased.last_mut().unwrap() = 7;
        for bytes in [&bad_leased[..], &[5, 0, 0][..], &[6, 2][..]] {
            let err = ReplReply::decode(bytes).unwrap_err();
            assert!(matches!(err, FrameError::Payload(_)), "{bytes:?} -> {err}");
            assert!(!err.is_fatal());
        }
    }
}
