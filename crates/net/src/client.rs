//! A blocking client for the framed protocol, with automatic reconnect
//! (capped exponential backoff plus full jitter) and pipelined batch
//! queries.
//!
//! A [`Client`] is single-threaded by design: one stream, request ids
//! issued monotonically, responses matched back by id. Pipelining comes
//! from [`Client::pipeline`] keeping a window of requests in flight on
//! the one connection — the server executes them concurrently on its
//! handler pool and responses may return out of order.
//!
//! On any transport failure the client drops its connection and the
//! *next* call redials (with backoff). Failed calls are **not**
//! silently retried: the server may or may not have executed the
//! request, and only the caller knows whether its request is idempotent.

use crate::error::NetError;
use crate::frame::{self, FrameKind, ReadFrame, DEFAULT_MAX_PAYLOAD};
use qcluster_service::{Request, Response};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, SystemTime};

/// Tunables for [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// How long to wait for a response frame.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Cap on accepted frame payload size.
    pub max_frame_len: u32,
    /// Dial attempts per (re)connect before giving up.
    pub max_connect_attempts: u32,
    /// First backoff step; doubles per attempt.
    pub backoff_base: Duration,
    /// Ceiling on the backoff step.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_PAYLOAD,
            max_connect_attempts: 5,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
        }
    }
}

/// A blocking connection to a [`Server`](crate::Server).
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    next_id: u64,
    /// xorshift64* state for backoff jitter (no external RNG crate on
    /// this path; statistical quality is irrelevant for jitter).
    rng: u64,
}

impl Client {
    /// Resolves `addr` and dials it (with backoff across attempts).
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client, NetError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))
        })?;
        let seed = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9E37_79B9)
            | 1;
        let mut client = Client {
            addr,
            config,
            stream: None,
            next_id: 1,
            rng: seed ^ ((addr.port() as u64) << 32),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// `true` while a live connection is held. A failed call clears
    /// this; the next call reconnects automatically.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Sends one request and waits for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        let mut responses = self.pipeline(std::slice::from_ref(request), 1)?;
        Ok(responses.remove(0))
    }

    /// Sends every request down the pipe before reading any response:
    /// maximum pipelining (window = batch size).
    pub fn query_many(&mut self, requests: &[Request]) -> Result<Vec<Response>, NetError> {
        self.pipeline(requests, requests.len())
    }

    /// Runs `requests` keeping up to `window` in flight, returning
    /// responses in request order (the wire order may differ).
    pub fn pipeline(
        &mut self,
        requests: &[Request],
        window: usize,
    ) -> Result<Vec<Response>, NetError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let window = window.max(1);
        self.ensure_connected()?;
        let payloads: Vec<String> = requests
            .iter()
            .map(|r| {
                serde_json::to_string(r)
                    .map_err(|e| NetError::Protocol(format!("request failed to serialize: {e}")))
            })
            .collect::<Result<_, _>>()?;
        let first_id = self.next_id;
        self.next_id += requests.len() as u64;
        let result = self.pipeline_inner(&payloads, first_id, window);
        if result.is_err() {
            self.disconnect();
        }
        result
    }

    fn pipeline_inner(
        &mut self,
        payloads: &[String],
        first_id: u64,
        window: usize,
    ) -> Result<Vec<Response>, NetError> {
        let stream = self.stream.as_mut().expect("connected");
        let n = payloads.len();
        let mut by_id: HashMap<u64, Response> = HashMap::with_capacity(n);
        let mut sent = 0usize;
        while by_id.len() < n {
            while sent < n && sent - by_id.len() < window {
                let id = first_id + sent as u64;
                frame::write_frame(stream, FrameKind::Request, id, payloads[sent].as_bytes())?;
                sent += 1;
            }
            match frame::read_frame(stream, self.config.max_frame_len)? {
                ReadFrame::Frame(f) => {
                    if f.kind != FrameKind::Response {
                        return Err(NetError::Protocol("server sent a request frame".into()));
                    }
                    let response: Response = std::str::from_utf8(&f.payload)
                        .map_err(|e| NetError::Frame(frame::FrameError::Payload(e.to_string())))
                        .and_then(|s| {
                            serde_json::from_str(s).map_err(|e| {
                                NetError::Frame(frame::FrameError::Payload(e.to_string()))
                            })
                        })?;
                    if f.request_id == 0 {
                        // Connection-level message the server originated
                        // (e.g. a capacity reject before reading anything).
                        let why = match response {
                            Response::Error(e) => e.to_string(),
                            other => format!("unexpected connection-level frame: {other:?}"),
                        };
                        return Err(NetError::Rejected(why));
                    }
                    let idx = f.request_id.checked_sub(first_id);
                    match idx {
                        Some(i) if (i as usize) < n && !by_id.contains_key(&f.request_id) => {
                            by_id.insert(f.request_id, response);
                        }
                        _ => {
                            return Err(NetError::Protocol(format!(
                                "response for unknown request id {}",
                                f.request_id
                            )));
                        }
                    }
                }
                ReadFrame::Idle => {
                    // The socket read timeout IS the response deadline
                    // for a client (unlike the server, where idle is
                    // benign).
                    return Err(NetError::Timeout(format!(
                        "no response within {:?} ({} of {} received)",
                        self.config.read_timeout,
                        by_id.len(),
                        n
                    )));
                }
                ReadFrame::Eof => {
                    return Err(NetError::Closed(format!(
                        "server closed with {} of {} responses outstanding",
                        n - by_id.len(),
                        n
                    )));
                }
                ReadFrame::Corrupt { error, .. } => return Err(NetError::Frame(error)),
            }
        }
        Ok((0..n)
            .map(|i| by_id.remove(&(first_id + i as u64)).expect("all collected"))
            .collect())
    }

    /// Sends one replication request ([`crate::repl::ReplRequest`]
    /// bytes) and waits for the peer's [`crate::repl::ReplReply`]
    /// bytes. Replication frames interleave freely with protocol
    /// frames on the same connection; the response is matched by id.
    ///
    /// Like [`Client::call`], a transport failure drops the connection
    /// without retry — WAL apply is idempotent on the receiver, so the
    /// caller can simply re-drive the catch-up loop.
    pub fn repl_call(&mut self, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.ensure_connected()?;
        let id = self.next_id;
        self.next_id += 1;
        let result = self.repl_call_inner(payload, id);
        if result.is_err() {
            self.disconnect();
        }
        result
    }

    fn repl_call_inner(&mut self, payload: &[u8], id: u64) -> Result<Vec<u8>, NetError> {
        let stream = self.stream.as_mut().expect("connected");
        frame::write_frame(stream, FrameKind::ReplRequest, id, payload)?;
        match frame::read_frame(stream, self.config.max_frame_len)? {
            ReadFrame::Frame(f) => {
                if f.kind != FrameKind::ReplResponse {
                    return Err(NetError::Protocol(format!(
                        "expected a replication response, got {:?}",
                        f.kind
                    )));
                }
                if f.request_id != id {
                    return Err(NetError::Protocol(format!(
                        "replication response for unknown request id {}",
                        f.request_id
                    )));
                }
                Ok(f.payload)
            }
            ReadFrame::Idle => Err(NetError::Timeout(format!(
                "no replication response within {:?}",
                self.config.read_timeout
            ))),
            ReadFrame::Eof => Err(NetError::Closed(
                "server closed before the replication response".into(),
            )),
            ReadFrame::Corrupt { error, .. } => Err(NetError::Frame(error)),
        }
    }

    /// Drops the current connection; the next call redials.
    pub fn disconnect(&mut self) {
        if let Some(stream) = self.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn ensure_connected(&mut self) -> Result<(), NetError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let attempts = self.config.max_connect_attempts.max(1);
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.jittered_backoff(attempt - 1));
            }
            match TcpStream::connect_timeout(&self.addr, self.config.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(Some(self.config.read_timeout))?;
                    stream.set_write_timeout(Some(self.config.write_timeout))?;
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(NetError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotConnected, "connect never attempted")
        })))
    }

    /// Full-jitter backoff: uniform in `[0, min(cap, base * 2^attempt))`.
    fn jittered_backoff(&mut self, attempt: u32) -> Duration {
        let step = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.config.backoff_cap);
        let nanos = step.as_nanos().max(1) as u64;
        Duration::from_nanos(self.next_rand() % nanos)
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.disconnect();
    }
}
