//! # qcluster-net
//!
//! A std-only TCP transport for the qcluster retrieval service: the
//! [`Request`](qcluster_service::Request) /
//! [`Response`](qcluster_service::Response) protocol from
//! `qcluster-service`, carried over length-prefixed frames with magic
//! bytes, a protocol version, per-frame request ids, and a payload CRC.
//!
//! Subsystems:
//!
//! - [`frame`] — the wire format: a 24-byte header (`"QNET"` magic,
//!   version, kind, request id, payload length, CRC-32) plus a JSON
//!   payload, with a recoverable/fatal split on decode errors.
//! - [`server`] — an acceptor thread, per-connection reader/writer
//!   threads, and a shared bounded handler pool; out-of-order response
//!   pipelining keyed by request id, typed `Overloaded` shedding,
//!   slowloris read deadlines, and graceful drain-then-close shutdown.
//! - [`client`] — a blocking client with connect/read/write timeouts,
//!   automatic reconnect (capped exponential backoff, full jitter), and
//!   pipelined batch queries.
//!
//! Transport activity (connections, frames, decode errors, sheds,
//! shutdown drains) is recorded into the fronted service's
//! [`ServiceMetrics`](qcluster_service::ServiceMetrics), so a wire
//! `Request::Stats` round-trip reports the transport's own counters.
//!
//! ```no_run
//! use qcluster_net::{Client, ClientConfig, Server, ServerConfig};
//! use qcluster_service::{Request, Response, Service, ServiceConfig};
//! use std::sync::Arc;
//!
//! let points: Vec<Vec<f64>> = (0..64)
//!     .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
//!     .collect();
//! let service = Arc::new(Service::new(&points, ServiceConfig::default()).unwrap());
//! let server = Server::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.local_addr(), ClientConfig::default()).unwrap();
//! let Response::SessionCreated { session } =
//!     client.call(&Request::CreateSession { engine: None }).unwrap()
//! else { unreachable!() };
//! let _ = client.call(&Request::Query {
//!     session,
//!     k: 5,
//!     vector: Some(vec![3.0, 3.0]),
//!     deadline_ms: None,
//! }).unwrap();
//! let report = server.shutdown();
//! assert!(report.clean());
//! ```
//!
//! Failpoints (`qcluster-failpoint`): `net.accept` drops incoming
//! connections, `net.read` severs a connection at the reader,
//! `net.write` fails a response write, and `net.frame.corrupt` flips a
//! payload byte after the CRC is computed.

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod frame;
pub mod repl;
pub mod server;

pub use client::{Client, ClientConfig};
pub use error::NetError;
pub use frame::{
    decode_frame, encode_frame, Frame, FrameError, FrameHeader, FrameKind, DEFAULT_MAX_PAYLOAD,
    HEADER_LEN, MAGIC, PROTOCOL_VERSION,
};
pub use repl::{ReplReply, ReplRequest};
pub use server::{Server, ServerConfig, ShutdownReport};
