//! Transport-level error vocabulary.
//!
//! [`NetError`] is what the *caller* of the transport sees (a client
//! call failing, a server failing to bind). Frame-level decode problems
//! live in [`FrameError`](crate::frame::FrameError) and are wrapped
//! here; request-level failures never become a `NetError` — they travel
//! back over the wire as typed
//! [`Response::Error`](qcluster_service::Response::Error) frames.

use crate::frame::FrameError;
use std::fmt;

/// Why a transport operation failed.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed (connect, read, write, bind).
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as a frame.
    Frame(FrameError),
    /// The operation did not complete within its configured timeout.
    Timeout(String),
    /// The connection closed before the operation completed.
    Closed(String),
    /// The server refused the connection or request at the transport
    /// level (capacity reject, pre-dispatch shed) with a typed reason.
    Rejected(String),
    /// The peer violated the framing protocol (e.g. a response carrying
    /// a request id this client never issued).
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport i/o error: {e}"),
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Timeout(what) => write!(f, "timed out: {what}"),
            NetError::Closed(what) => write!(f, "connection closed: {what}"),
            NetError::Rejected(why) => write!(f, "rejected by server: {why}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                NetError::Timeout(format!("socket operation: {e}"))
            }
            std::io::ErrorKind::UnexpectedEof => NetError::Closed(format!("{e}")),
            _ => NetError::Io(e),
        }
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}
