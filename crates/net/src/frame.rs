//! The wire format: length-prefixed frames with magic, version, and a
//! payload CRC.
//!
//! Every message is one frame:
//!
//! ```text
//!  offset  size  field
//!  ------  ----  -----------------------------------------------
//!       0     4  magic  "QNET"
//!       4     1  protocol version (currently 1)
//!       5     1  kind   (1 = request, 2 = response,
//!                        3 = replication request, 4 = replication response)
//!       6     2  reserved (must be 0 on send, ignored on receive)
//!       8     8  request id, u64 little-endian
//!      16     4  payload length, u32 little-endian
//!      20     4  CRC-32 (ISO-HDLC) over the payload bytes
//!      24     n  payload: one JSON-encoded `Request` or `Response`
//!                (kinds 1/2), or a binary replication message
//!                (kinds 3/4, see the `repl` module)
//! ```
//!
//! The request id is chosen by the client and echoed by the server, so
//! responses can come back **out of order** (pipelining). Id `0` is
//! reserved for connection-level messages the server originates itself
//! (e.g. a capacity reject before any request was read).
//!
//! Decode errors are split into *recoverable* (the frame boundary is
//! known, so the stream stays in sync — CRC mismatch, bad kind, bad
//! payload) and *fatal* (the boundary is unknowable or the encoding is
//! not ours — bad magic, truncation, oversize, unknown version). Either
//! way the server replies with a typed error frame; only fatal errors
//! additionally close the connection.

use qcluster_store::Crc32;
use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"QNET";
/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 24;
/// Default cap on payload size (16 MiB): a Stats snapshot is ~2 KiB and
/// even a 1k-dimensional ingest vector is ~20 KiB, so this is generous.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Whether a frame carries a request, a response, or a replication
/// message (binary payload instead of JSON; see the `repl` module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server.
    Request,
    /// Server → client.
    Response,
    /// Replication peer → node: a fetch/apply/status message carrying a
    /// binary payload of CRC-framed WAL records or control fields.
    ReplRequest,
    /// Node → replication peer: the reply to a [`FrameKind::ReplRequest`].
    ReplResponse,
}

impl FrameKind {
    fn as_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::ReplRequest => 3,
            FrameKind::ReplResponse => 4,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Response),
            3 => Some(FrameKind::ReplRequest),
            4 => Some(FrameKind::ReplResponse),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Request or response.
    pub kind: FrameKind,
    /// Client-chosen correlation id (0 = connection-level).
    pub request_id: u64,
    /// The JSON payload bytes (CRC already verified).
    pub payload: Vec<u8>,
}

/// Why a byte sequence failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not `"QNET"`. The stream is desynced;
    /// the connection must close after replying.
    BadMagic([u8; 4]),
    /// The version byte names a protocol this build does not speak.
    UnsupportedVersion(u8),
    /// The kind byte names no known frame kind.
    BadKind(u8),
    /// The declared payload length exceeds the configured cap.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The receiver's cap.
        max: u32,
    },
    /// The payload bytes do not match the header's CRC.
    CrcMismatch {
        /// CRC declared in the header.
        expected: u32,
        /// CRC computed over the received payload.
        found: u32,
    },
    /// The input ended mid-frame.
    Truncated {
        /// Bytes the frame declares.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The payload failed to parse as the expected JSON type.
    Payload(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected \"QNET\")"),
            FrameError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            FrameError::BadKind(k) => write!(f, "bad frame kind {k} (expected 1..=4)"),
            FrameError::Oversize { len, max } => {
                write!(
                    f,
                    "declared payload of {len} bytes exceeds the cap of {max}"
                )
            }
            FrameError::CrcMismatch { expected, found } => {
                write!(
                    f,
                    "payload crc {found:#010x} does not match header crc {expected:#010x}"
                )
            }
            FrameError::Truncated { needed, have } => {
                write!(f, "frame truncated: {have} of {needed} bytes")
            }
            FrameError::Payload(e) => write!(f, "payload did not parse: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// `true` when the error leaves the stream position unknowable (or
    /// the peer's encoding untrusted), so the connection must close
    /// after a best-effort typed reply.
    pub fn is_fatal(&self) -> bool {
        !matches!(
            self,
            FrameError::CrcMismatch { .. } | FrameError::BadKind(_) | FrameError::Payload(_)
        )
    }
}

/// A parsed header, before the payload has been read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Request or response.
    pub kind: FrameKind,
    /// Correlation id.
    pub request_id: u64,
    /// Declared payload length.
    pub payload_len: u32,
    /// Declared payload CRC.
    pub payload_crc: u32,
}

/// Parses and validates a 24-byte header. `max_payload` bounds the
/// declared length.
pub fn decode_header(
    bytes: &[u8; HEADER_LEN],
    max_payload: u32,
) -> Result<FrameHeader, FrameError> {
    if bytes[0..4] != MAGIC {
        return Err(FrameError::BadMagic([
            bytes[0], bytes[1], bytes[2], bytes[3],
        ]));
    }
    if bytes[4] != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(bytes[4]));
    }
    let kind = FrameKind::from_byte(bytes[5]).ok_or(FrameError::BadKind(bytes[5]))?;
    let request_id = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if payload_len > max_payload {
        return Err(FrameError::Oversize {
            len: payload_len,
            max: max_payload,
        });
    }
    let payload_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    Ok(FrameHeader {
        kind,
        request_id,
        payload_len,
        payload_crc,
    })
}

/// Extracts the request id from raw header bytes *without* validating,
/// for best-effort typed error replies about frames that failed header
/// validation. Returns 0 when the magic is wrong (the id bytes would be
/// garbage).
///
/// Salvage requires a **complete** 24-byte header — the sized parameter
/// enforces that at the type level. A header truncated *inside* the
/// request-id field (bytes 8..16) never reaches this function:
/// [`read_frame`] reports such tears as
/// [`ReadFrame::Corrupt`]`{ request_id: 0, .. }` without salvaging,
/// because any id reconstructed from partial bytes would be garbage
/// padded with zeros, and addressing an error reply at a fabricated id
/// could cancel an unrelated in-flight request on a pipelined
/// connection. Id 0 is the reserved connection-level id, so the typed
/// reply stays unambiguous.
pub fn salvage_request_id(bytes: &[u8; HEADER_LEN]) -> u64 {
    if bytes[0..4] != MAGIC {
        return 0;
    }
    u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"))
}

/// Encodes one frame into a fresh buffer.
///
/// Failpoint `net.frame.corrupt`: when armed, flips one payload byte
/// *after* the CRC is computed, producing a frame the receiver will
/// reject with [`FrameError::CrcMismatch`].
pub fn encode_frame(kind: FrameKind, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(PROTOCOL_VERSION);
    buf.push(kind.as_byte());
    buf.extend_from_slice(&[0u8, 0u8]);
    buf.extend_from_slice(&request_id.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&Crc32::checksum(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    if qcluster_failpoint::active() && qcluster_failpoint::evaluate("net.frame.corrupt").is_some() {
        // Flip the last payload byte (or, for empty payloads, a CRC
        // byte) so the receiver sees a checksum mismatch.
        let idx = buf.len() - 1;
        buf[idx] ^= 0xFF;
    }
    buf
}

/// Decodes one frame from the front of `bytes`, returning the frame and
/// the number of bytes consumed. Used by tests and fuzzing; the stream
/// paths use [`read_frame`].
pub fn decode_frame(bytes: &[u8], max_payload: u32) -> Result<(Frame, usize), FrameError> {
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated {
            needed: HEADER_LEN,
            have: bytes.len(),
        });
    }
    let header_bytes: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("sized");
    let header = decode_header(header_bytes, max_payload)?;
    let total = HEADER_LEN + header.payload_len as usize;
    if bytes.len() < total {
        return Err(FrameError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    let payload = &bytes[HEADER_LEN..total];
    let found = Crc32::checksum(payload);
    if found != header.payload_crc {
        return Err(FrameError::CrcMismatch {
            expected: header.payload_crc,
            found,
        });
    }
    Ok((
        Frame {
            kind: header.kind,
            request_id: header.request_id,
            payload: payload.to_vec(),
        },
        total,
    ))
}

/// Writes one frame to `w` and flushes.
pub fn write_frame<W: Write>(
    w: &mut W,
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    let buf = encode_frame(kind, request_id, payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Outcome of one [`read_frame`] attempt on a stream with a read
/// timeout configured.
#[derive(Debug)]
pub enum ReadFrame {
    /// A complete, CRC-verified frame.
    Frame(Frame),
    /// Clean EOF at a frame boundary: the peer closed.
    Eof,
    /// The read timeout elapsed before *any* byte of a new frame
    /// arrived. Benign: the caller checks shutdown flags and retries.
    Idle,
    /// Bytes arrived but do not form a valid frame. `request_id` is the
    /// best salvageable correlation id (0 when unknowable) so the
    /// server can address its typed error reply.
    Corrupt {
        /// Salvaged correlation id for the reply.
        request_id: u64,
        /// What was wrong.
        error: FrameError,
    },
}

/// Reads until `buf` is full. Distinguishes EOF (`Ok(bytes_read)` short
/// of `buf.len()`) from socket errors. Timeouts mid-buffer surface as
/// `Err` — a peer that started a frame and stalled is a slow-loris, not
/// an idle connection.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads one frame from a stream that has a read timeout set.
///
/// The timeout is interpreted positionally: elapsing before the first
/// byte of a frame is [`ReadFrame::Idle`] (the connection is just
/// quiet); elapsing mid-frame is an `Err` (the peer is feeding bytes
/// too slowly to ever finish — the slowloris defense).
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> std::io::Result<ReadFrame> {
    let mut header = [0u8; HEADER_LEN];
    // First byte separately: a timeout here means "idle", not "stuck".
    loop {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(ReadFrame::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Ok(ReadFrame::Idle)
            }
            Err(e) => return Err(e),
        }
    }
    let filled = 1 + read_full(r, &mut header[1..])?;
    if filled < HEADER_LEN {
        // Never salvage from a partial header: even if the tear lands
        // past byte 16, trusting id bytes from an incomplete read risks
        // addressing the error reply at a garbage id. Id 0 keeps the
        // reply connection-level (see `salvage_request_id`).
        return Ok(ReadFrame::Corrupt {
            request_id: 0,
            error: FrameError::Truncated {
                needed: HEADER_LEN,
                have: filled,
            },
        });
    }
    let parsed = match decode_header(&header, max_payload) {
        Ok(h) => h,
        Err(error) => {
            return Ok(ReadFrame::Corrupt {
                request_id: salvage_request_id(&header),
                error,
            })
        }
    };
    let mut payload = vec![0u8; parsed.payload_len as usize];
    let got = read_full(r, &mut payload)?;
    if got < payload.len() {
        return Ok(ReadFrame::Corrupt {
            request_id: parsed.request_id,
            error: FrameError::Truncated {
                needed: HEADER_LEN + payload.len(),
                have: HEADER_LEN + got,
            },
        });
    }
    let found = Crc32::checksum(&payload);
    if found != parsed.payload_crc {
        return Ok(ReadFrame::Corrupt {
            request_id: parsed.request_id,
            error: FrameError::CrcMismatch {
                expected: parsed.payload_crc,
                found,
            },
        });
    }
    Ok(ReadFrame::Frame(Frame {
        kind: parsed.kind,
        request_id: parsed.request_id,
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let payload = br#"{"Stats":null}"#;
        let buf = encode_frame(FrameKind::Request, 42, payload);
        assert_eq!(buf.len(), HEADER_LEN + payload.len());
        let (frame, used) = decode_frame(&buf, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.request_id, 42);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn corrupt_payload_byte_is_a_crc_mismatch() {
        let mut buf = encode_frame(FrameKind::Response, 7, b"hello");
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        match decode_frame(&buf, DEFAULT_MAX_PAYLOAD) {
            Err(FrameError::CrcMismatch { .. }) => {}
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_version_kind_and_oversize_are_detected() {
        let good = encode_frame(FrameKind::Request, 1, b"x");

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::UnsupportedVersion(99))
        ));

        let mut bad = good.clone();
        bad[5] = 7;
        assert!(matches!(
            decode_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::BadKind(7))
        ));

        // The replication kinds are valid wire bytes, not BadKind.
        for (kind, byte) in [
            (FrameKind::ReplRequest, 3u8),
            (FrameKind::ReplResponse, 4u8),
        ] {
            let buf = encode_frame(kind, 5, b"repl");
            assert_eq!(buf[5], byte);
            let (frame, _) = decode_frame(&buf, DEFAULT_MAX_PAYLOAD).unwrap();
            assert_eq!(frame.kind, kind);
        }

        // A tiny cap turns the 1-byte payload into an oversize claim.
        assert!(matches!(
            decode_frame(&good, 0),
            Err(FrameError::Oversize { len: 1, max: 0 })
        ));
    }

    #[test]
    fn truncation_reports_needed_and_have() {
        let buf = encode_frame(FrameKind::Request, 3, b"abcdef");
        match decode_frame(&buf[..buf.len() - 2], DEFAULT_MAX_PAYLOAD) {
            Err(FrameError::Truncated { needed, have }) => {
                assert_eq!(needed, buf.len());
                assert_eq!(have, buf.len() - 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn fatality_split_matches_the_documented_policy() {
        assert!(FrameError::BadMagic(*b"XXXX").is_fatal());
        assert!(FrameError::UnsupportedVersion(9).is_fatal());
        assert!(FrameError::Oversize { len: 1, max: 0 }.is_fatal());
        assert!(FrameError::Truncated {
            needed: 24,
            have: 3
        }
        .is_fatal());
        assert!(!FrameError::CrcMismatch {
            expected: 1,
            found: 2
        }
        .is_fatal());
        assert!(!FrameError::BadKind(9).is_fatal());
        assert!(!FrameError::Payload("nope".into()).is_fatal());
    }

    #[test]
    fn header_truncated_inside_the_request_id_field_salvages_nothing() {
        // Regression pin: a connection that dies mid-header must never
        // "salvage" a request id from the partial bytes — even when the
        // tear lands inside (or after) the id field at bytes 8..16, the
        // id could be half-written garbage that addresses the error
        // reply at an unrelated pipelined request. The contract is a
        // connection-level reply: `request_id: 0`.
        let full = encode_frame(FrameKind::Request, 0x1122_3344_5566_7788, b"x");
        for cut in [9, 12, 15, 16, 20, HEADER_LEN - 1] {
            let mut r = &full[..cut];
            match read_frame(&mut r, DEFAULT_MAX_PAYLOAD).unwrap() {
                ReadFrame::Corrupt { request_id, error } => {
                    assert_eq!(request_id, 0, "cut at {cut} must stay connection-level");
                    assert_eq!(
                        error,
                        FrameError::Truncated {
                            needed: HEADER_LEN,
                            have: cut
                        }
                    );
                }
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
        // A complete header *may* salvage: the same frame truncated in
        // the payload reports the real id.
        let mut r = &full[..HEADER_LEN];
        match read_frame(&mut r, DEFAULT_MAX_PAYLOAD).unwrap() {
            ReadFrame::Corrupt { request_id, .. } => {
                assert_eq!(request_id, 0x1122_3344_5566_7788);
            }
            other => panic!("expected Corrupt with salvaged id, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_failpoint_breaks_the_crc() {
        let _lock = qcluster_failpoint::test_lock();
        qcluster_failpoint::clear_all();
        let _g = qcluster_failpoint::scoped(
            "net.frame.corrupt",
            qcluster_failpoint::Action::Error("bitflip".into()),
        );
        let buf = encode_frame(FrameKind::Request, 9, b"payload");
        assert!(matches!(
            decode_frame(&buf, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::CrcMismatch { .. })
        ));
        drop(_g);
        let buf = encode_frame(FrameKind::Request, 9, b"payload");
        assert!(decode_frame(&buf, DEFAULT_MAX_PAYLOAD).is_ok());
    }
}
