//! # qcluster-failpoint
//!
//! A deterministic fault-injection registry for chaos testing the
//! Qcluster service and storage layers.
//!
//! Production code threads named *failpoints* through its failure-prone
//! paths (WAL appends, fsyncs, segment seals, shard fan-out jobs). In a
//! normal process every failpoint is inert: [`evaluate`] first reads one
//! relaxed atomic and returns `None`, so the instrumented hot paths pay
//! a single predictable branch. Chaos tests (or an operator via the
//! `QCLUSTER_FAILPOINTS` environment variable) arm failpoints with an
//! [`Action`] — inject an error, panic, sleep, or perform a *partial*
//! (torn) write — optionally skipping the first `skip` evaluations and
//! firing at most `times` times, which makes scenarios like "the third
//! WAL append tears after 5 bytes" reproducible bit-for-bit.
//!
//! Failpoints are process-global. Tests that arm them must serialize
//! against each other through [`test_lock`] and should prefer the
//! RAII [`scoped`] guard so a panicking test cannot leak an armed
//! failpoint into its neighbours.
//!
//! ```
//! use qcluster_failpoint as failpoint;
//!
//! let _serial = failpoint::test_lock();
//! let _fp = failpoint::scoped("demo.op", failpoint::Action::Error("disk gone".into()));
//! match failpoint::evaluate("demo.op") {
//!     Some(failpoint::Action::Error(msg)) => assert_eq!(msg, "disk gone"),
//!     other => panic!("expected injected error, got {other:?}"),
//! }
//! assert_eq!(failpoint::hits("demo.op"), 1);
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Fail the operation with this message (call sites convert it into
    /// their layer's error type, e.g. an `std::io::Error`).
    Error(String),
    /// Panic with this message (exercises panic-isolation paths).
    Panic(String),
    /// Sleep for this many milliseconds, then proceed normally
    /// (simulates a slow shard / stalled disk).
    Sleep(u64),
    /// Perform only the first `n` bytes of the write, then fail
    /// (simulates a torn write). Only meaningful at write call sites;
    /// others treat it like [`Action::Error`].
    Partial(usize),
}

/// One armed failpoint: the action plus its firing window.
#[derive(Debug, Clone)]
struct Armed {
    action: Action,
    /// Evaluations to let through before the first fire.
    skip: u64,
    /// Remaining fires (`None` = fire on every evaluation past `skip`).
    remaining: Option<u64>,
    /// Evaluations seen so far.
    seen: u64,
    /// Times this failpoint actually fired.
    hits: u64,
}

/// `true` while at least one failpoint is armed — the only state the
/// disabled fast path reads.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn registry() -> &'static Mutex<HashMap<String, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> MutexGuard<'static, HashMap<String, Armed>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// `true` when any failpoint is armed. Call sites that need to build
/// dynamic failpoint names (e.g. `executor.shard.3`) gate the
/// formatting behind this so the disabled path allocates nothing.
#[inline]
pub fn active() -> bool {
    init_from_env();
    ACTIVE.load(Ordering::Relaxed)
}

/// Arms `name` to fire on every evaluation.
pub fn configure(name: &str, action: Action) {
    configure_counted(name, action, 0, None);
}

/// Arms `name` to skip the first `skip` evaluations, then fire at most
/// `times` times (`None` = unlimited). Deterministic: the k-th
/// evaluation of a failpoint always behaves the same for a fixed
/// configuration.
pub fn configure_counted(name: &str, action: Action, skip: u64, times: Option<u64>) {
    init_from_env();
    let mut reg = lock_registry();
    reg.insert(
        name.to_string(),
        Armed {
            action,
            skip,
            remaining: times,
            seen: 0,
            hits: 0,
        },
    );
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Disarms `name` (hit counts for it are forgotten).
pub fn remove(name: &str) {
    let mut reg = lock_registry();
    reg.remove(name);
    if reg.is_empty() {
        ACTIVE.store(false, Ordering::Relaxed);
    }
}

/// Disarms every failpoint.
pub fn clear_all() {
    let mut reg = lock_registry();
    reg.clear();
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Times `name` has fired since it was armed (0 when not armed).
pub fn hits(name: &str) -> u64 {
    lock_registry().get(name).map_or(0, |a| a.hits)
}

/// Evaluates the failpoint `name`: returns the action to perform when
/// it fires, `None` otherwise. The disabled fast path is one relaxed
/// atomic load.
#[inline]
pub fn evaluate(name: &str) -> Option<Action> {
    if !active() {
        return None;
    }
    evaluate_slow(name)
}

#[cold]
fn evaluate_slow(name: &str) -> Option<Action> {
    let mut reg = lock_registry();
    let armed = reg.get_mut(name)?;
    let slot = armed.seen;
    armed.seen += 1;
    if slot < armed.skip {
        return None;
    }
    if let Some(remaining) = armed.remaining.as_mut() {
        if *remaining == 0 {
            return None;
        }
        *remaining -= 1;
    }
    armed.hits += 1;
    Some(armed.action.clone())
}

/// Evaluates `name` and, when armed with [`Action::Sleep`], performs
/// the sleep in place, returning `None` (the operation proceeds).
/// Every other action is returned for the call site to interpret.
pub fn evaluate_sleepy(name: &str) -> Option<Action> {
    match evaluate(name) {
        Some(Action::Sleep(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        other => other,
    }
}

/// RAII guard from [`scoped`]: disarms its failpoint on drop.
#[derive(Debug)]
pub struct Guard {
    name: String,
}

impl Guard {
    /// Times the guarded failpoint has fired so far.
    pub fn hits(&self) -> u64 {
        hits(&self.name)
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        remove(&self.name);
    }
}

/// Arms `name` for the guard's lifetime (fires on every evaluation).
#[must_use = "the failpoint disarms when the guard drops"]
pub fn scoped(name: &str, action: Action) -> Guard {
    configure(name, action);
    Guard {
        name: name.to_string(),
    }
}

/// Arms `name` with a firing window for the guard's lifetime.
#[must_use = "the failpoint disarms when the guard drops"]
pub fn scoped_counted(name: &str, action: Action, skip: u64, times: Option<u64>) -> Guard {
    configure_counted(name, action, skip, times);
    Guard {
        name: name.to_string(),
    }
}

/// Serializes tests that arm failpoints: the registry is process-global,
/// so two concurrently running chaos tests would otherwise see each
/// other's injections. Hold the returned guard for the whole test.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Parses the `QCLUSTER_FAILPOINTS` environment variable once per
/// process: `name=action[;name=action…]` where `action` is one of
/// `error:<msg>`, `panic:<msg>`, `sleep:<ms>`, `partial:<bytes>`, or
/// `off`. Malformed entries are ignored (fault injection must never
/// break a production start-up).
fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(spec) = std::env::var("QCLUSTER_FAILPOINTS") else {
            return;
        };
        for entry in spec.split(';') {
            let entry = entry.trim();
            let Some((name, action)) = entry.split_once('=') else {
                continue;
            };
            let (kind, arg) = action.split_once(':').unwrap_or((action, ""));
            let action = match kind {
                "error" => Action::Error(arg.to_string()),
                "panic" => Action::Panic(arg.to_string()),
                "sleep" => match arg.parse() {
                    Ok(ms) => Action::Sleep(ms),
                    Err(_) => continue,
                },
                "partial" => match arg.parse() {
                    Ok(n) => Action::Partial(n),
                    Err(_) => continue,
                },
                _ => continue,
            };
            // Direct insert (not `configure`) to avoid re-entering the
            // Once through `init_from_env`.
            let mut reg = lock_registry();
            reg.insert(
                name.to_string(),
                Armed {
                    action,
                    skip: 0,
                    remaining: None,
                    seen: 0,
                    hits: 0,
                },
            );
            ACTIVE.store(true, Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_failpoints_evaluate_to_none() {
        let _serial = test_lock();
        clear_all();
        assert!(!active());
        assert_eq!(evaluate("nobody.armed.this"), None);
        assert_eq!(hits("nobody.armed.this"), 0);
    }

    #[test]
    fn armed_failpoint_fires_and_counts() {
        let _serial = test_lock();
        clear_all();
        let fp = scoped("t.fire", Action::Error("boom".into()));
        assert!(active());
        assert_eq!(evaluate("t.fire"), Some(Action::Error("boom".into())));
        assert_eq!(evaluate("t.fire"), Some(Action::Error("boom".into())));
        assert_eq!(fp.hits(), 2);
        drop(fp);
        assert_eq!(evaluate("t.fire"), None);
        assert!(!active());
    }

    #[test]
    fn skip_and_times_window_is_deterministic() {
        let _serial = test_lock();
        clear_all();
        let _fp = scoped_counted("t.window", Action::Sleep(0), 2, Some(2));
        // Two skipped, two fired, then exhausted.
        assert_eq!(evaluate("t.window"), None);
        assert_eq!(evaluate("t.window"), None);
        assert_eq!(evaluate("t.window"), Some(Action::Sleep(0)));
        assert_eq!(evaluate("t.window"), Some(Action::Sleep(0)));
        assert_eq!(evaluate("t.window"), None);
        assert_eq!(hits("t.window"), 2);
    }

    #[test]
    fn sleepy_evaluation_absorbs_sleeps_and_passes_errors() {
        let _serial = test_lock();
        clear_all();
        let _fp = scoped("t.sleepy", Action::Sleep(1));
        let before = std::time::Instant::now();
        assert_eq!(evaluate_sleepy("t.sleepy"), None);
        assert!(before.elapsed() >= std::time::Duration::from_millis(1));
        remove("t.sleepy");
        let _fp = scoped("t.sleepy", Action::Partial(3));
        assert_eq!(evaluate_sleepy("t.sleepy"), Some(Action::Partial(3)));
    }

    #[test]
    fn guards_clean_up_on_panic() {
        let _serial = test_lock();
        clear_all();
        let result = std::panic::catch_unwind(|| {
            let _fp = scoped("t.leak", Action::Panic("inner".into()));
            panic!("test body dies");
        });
        assert!(result.is_err());
        assert_eq!(evaluate("t.leak"), None, "guard disarmed on unwind");
        assert!(!active());
    }
}
