//! Offline vendored stand-in for `serde`.
//!
//! The real serde is a zero-copy visitor framework; this stand-in trades
//! that generality for a simple **value model**: [`Serialize`] renders a
//! type into a [`Value`] tree, [`Deserialize`] rebuilds the type from one.
//! `serde_json` (also vendored) converts between [`Value`] and JSON text.
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//! proc-macros that generate these impls for plain structs and enums
//! (externally tagged, like real serde's default representation).
//!
//! The supported surface is exactly what this workspace needs: primitive
//! types, `String`, `Option`, `Vec`, maps with string keys, and derived
//! structs/enums without generics.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// The serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object (insertion-ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// serde-compatible constructor name.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the serde [`Value`] model.
pub trait Serialize {
    /// The value-model representation of `self`.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses the value model into `Self`.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the value's shape does not match `Self`.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Looks up `name` in a struct map and deserializes it; a missing key is
/// treated as `null` (so `Option` fields default to `None`).
///
/// # Errors
///
/// Propagates the field's [`DeError`], annotated with the field name.
pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, DeError> {
    let v = map
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null);
    T::deserialize(v).map_err(|e| DeError(format!("field `{name}`: {e}")))
}

// ---- primitive impls ----

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            _ => Err(DeError::new("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::new("expected tuple array"))?;
                Ok(($($t::deserialize(s.get($n).ok_or_else(|| DeError::new("tuple too short"))?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
