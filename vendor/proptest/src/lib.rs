//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's test suites
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_filter` / `prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, [`any`], and the `prop_assert*` /
//! [`prop_assume!`] macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from file/line), and failing
//! cases are **not shrunk** — the panic message reports the case number
//! and seed instead.

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Give up after this many rejections (filters / `prop_assume!`).
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Mirror real proptest: `PROPTEST_CASES` overrides the per-test
        // case count (CI raises it for the storage-recovery job).
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 65536,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected (`prop_assume!` or a filter) — try another.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of running one sampled case (used by the `proptest!` macro).
#[derive(Debug)]
pub enum TestResult {
    /// Case passed.
    Pass,
    /// Case rejected during generation or by `prop_assume!`.
    Reject,
    /// Case failed.
    Fail(String),
}

/// The deterministic RNG driving generation (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator (SplitMix64 expansion).
    pub fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A value generator. `sample` returns `None` when the candidate was
/// rejected by a filter.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one candidate value.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `pred` holds.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Generates a value, then samples from the strategy it induces.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.0.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.pred)(v))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let seed = self.inner.sample(rng)?;
        (self.f)(seed).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> Option<f32> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + (self.end - self.start) * rng.unit_f64() as f32)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + offset as i128) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$n.sample(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Full-range strategy for a primitive type; see [`any`].
#[derive(Debug, Default, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// `any::<T>()` — the full-range strategy of `T`.
pub fn any<T>() -> AnyStrategy<T>
where
    AnyStrategy<T>: Strategy<Value = T>,
{
    AnyStrategy(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.next_u64() as $t)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.next_u64() & 1 == 1)
    }
}

impl Strategy for AnyStrategy<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        // Finite floats with varied magnitudes.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(605) as i32 - 302) as f64;
        Some(mantissa * 10f64.powf(exp))
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification: an exact size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of proptest's `prop::` re-exports.
pub mod prop {
    pub use crate::collection;
}

/// The commonly-imported surface.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Macro-internal runner: samples and executes `cases` successful cases.
///
/// # Panics
///
/// Panics on the first failing case, reporting the case index and seed.
pub fn run_proptest<F>(config: ProptestConfig, file: &str, line: u32, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestResult,
{
    // Deterministic per-test seed: stable across runs, distinct per site.
    let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(line);
    for b in file.bytes() {
        seed = seed
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(u64::from(b));
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        let case_seed = seed.wrapping_add(attempt);
        let mut rng = TestRng::seed_from_u64(case_seed);
        attempt += 1;
        match case(&mut rng) {
            TestResult::Pass => passed += 1,
            TestResult::Reject => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest at {file}:{line}: too many rejected cases \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            TestResult::Fail(msg) => panic!(
                "proptest case failed at {file}:{line} \
                 (case #{passed}, seed {case_seed:#x}):\n{msg}"
            ),
        }
    }
}

/// Defines property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            // Build strategies once; they are immutable samplers.
            $crate::run_proptest(__config, file!(), line!(), |__rng| {
                $(
                    let $arg = match $crate::Strategy::sample(&($strat), __rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => return $crate::TestResult::Reject,
                    };
                )+
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match __case() {
                    ::std::result::Result::Ok(()) => $crate::TestResult::Pass,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        $crate::TestResult::Reject
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        $crate::TestResult::Fail(msg)
                    }
                }
            });
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 1..10usize) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_and_combinators(
            xs in prop::collection::vec(0.0..1.0f64, 2..6),
            y in (0..5u8, 10..20u8).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!((10..25).contains(&y));
            prop_assume!(!xs.is_empty());
            prop_assert_eq!(xs.len(), xs.len());
        }

        #[test]
        fn filters_reject_instead_of_fail(v in (0..100u32).prop_filter("even", |n| n % 2 == 0)) {
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics_with_location() {
        crate::run_proptest(
            crate::ProptestConfig::with_cases(4),
            file!(),
            line!(),
            |_| crate::TestResult::Fail("forced".into()),
        );
    }
}
