//! Offline vendored stand-in for `serde_json`.
//!
//! Converts between JSON text and the vendored `serde` [`Value`] model.
//! Floats are emitted with Rust's shortest-roundtrip formatting, so
//! `f64` values survive a serialize → parse cycle exactly (the
//! `float_roundtrip` behavior the workspace requests).

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Fails on non-finite floats (JSON has no representation for them).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
///
/// # Errors
///
/// Fails on non-finite floats.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Malformed JSON, or a value shape that does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

/// Serializes a value as compact JSON into an [`std::io::Write`] sink,
/// emitting the text in bounded chunks instead of handing the caller one
/// giant `String` to write.
///
/// # Errors
///
/// Non-finite floats, or sink I/O failures.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let json = to_string(value)?;
    for chunk in json.as_bytes().chunks(64 * 1024) {
        writer
            .write_all(chunk)
            .map_err(|e| Error::new(format!("write failure: {e}")))?;
    }
    Ok(())
}

/// Reads a complete JSON document from an [`std::io::Read`] source and
/// deserializes it.
///
/// # Errors
///
/// Source I/O failures, malformed JSON, or a value shape that does not
/// match `T`.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::new(format!("read failure: {e}")))?;
    from_str(&text)
}

// ---- emission ----

fn emit(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{:?}` is Rust's shortest representation that round-trips.
            let s = format!("{f:?}");
            out.push_str(&s);
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                emit(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| Error::new("invalid codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error::new("invalid codepoint"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structures() {
        let v = Value::Map(vec![
            (
                "xs".into(),
                Value::Seq(vec![Value::F64(0.1), Value::F64(-2.5e-8)]),
            ),
            ("n".into(), Value::U64(42)),
            ("s".into(), Value::Str("a \"b\" \\ \n π".into())),
            ("b".into(), Value::Bool(true)),
            ("z".into(), Value::Null),
        ]);
        let text = to_string(&v).unwrap();
        let back = parse_value(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &f in &[0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 5e-324] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {text}");
        }
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let xs: Vec<Vec<f64>> = vec![vec![1.5, 2.5], vec![]];
        let text = to_string(&xs).unwrap();
        let back: Vec<Vec<f64>> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::I64(-1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(parse_value(&text).unwrap(), v);
    }
}
