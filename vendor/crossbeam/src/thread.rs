//! Scoped threads with the crossbeam 0.8 API shape.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result type of [`scope`] and of joining a scoped thread.
pub type Result<T> = std::thread::Result<T>;

/// A scope handle; `spawn` borrows from the enclosing environment.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result (or the
    /// panic payload).
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope so it can
    /// spawn further threads (crossbeam convention).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope: all threads spawned within are joined before it
/// returns. Returns `Err` with the panic payload if the closure or an
/// unjoined child thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        });
        assert!(r.is_ok());
    }
}
