//! MPMC channels with clonable senders *and* receivers.
//!
//! Built on [`std::sync::mpsc`]: the receiver side is shared behind a
//! mutex, which gives crossbeam's multi-consumer semantics (each message
//! is delivered to exactly one receiver). The worker pools in
//! `qcluster-service` rely on exactly this: many workers pull jobs from
//! one shared queue.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the deadline.
    Timeout,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "receive timed out"),
            RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`BoundedSender::try_send`].
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// Channel at capacity; the message is handed back.
    Full(T),
    /// All receivers dropped; the message is handed back.
    Disconnected(T),
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
        }
    }
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// The sending half; clonable.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sender {{ .. }}")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a message.
    ///
    /// # Errors
    ///
    /// [`SendError`] when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// The receiving half; clonable (multi-consumer: each message goes to one
/// receiver).
pub struct Receiver<T> {
    inner: Arc<Mutex<mpsc::Receiver<T>>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Receiver {{ .. }}")
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Receiver<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the channel is drained and all senders dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.lock().recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] / [`TryRecvError::Disconnected`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.lock().try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] / [`RecvTimeoutError::Disconnected`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.lock().recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// A blocking iterator over messages, ending when the channel
    /// disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// An unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender { inner: tx },
        Receiver {
            inner: Arc::new(Mutex::new(rx)),
        },
    )
}

/// A bounded channel (senders block when `cap` messages are queued).
///
/// Note: unlike crossbeam, `cap == 0` is a rendezvous channel only in the
/// `std` sense (send blocks until a receive happens).
pub fn bounded<T>(cap: usize) -> (BoundedSender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (
        BoundedSender { inner: tx },
        Receiver {
            inner: Arc::new(Mutex::new(rx)),
        },
    )
}

/// The sending half of a bounded channel; clonable.
pub struct BoundedSender<T> {
    inner: mpsc::SyncSender<T>,
}

impl<T> std::fmt::Debug for BoundedSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoundedSender {{ .. }}")
    }
}

impl<T> Clone for BoundedSender<T> {
    fn clone(&self) -> Self {
        BoundedSender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> BoundedSender<T> {
    /// Enqueues a message, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }

    /// Enqueues a message without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when the channel is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver has been
    /// dropped; both hand the message back.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        self.inner.try_send(value).map_err(|e| match e {
            mpsc::TrySendError::Full(v) => TrySendError::Full(v),
            mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_consumer_delivers_each_message_once() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let rx2 = rx.clone();
        let h = std::thread::spawn(move || rx2.iter().count());
        let mine = rx.iter().count();
        let theirs = h.join().unwrap();
        assert_eq!(mine + theirs, 100);
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded::<u8>(2);
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }
}
