//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities this workspace uses, implemented on top of
//! the standard library:
//!
//! - [`thread::scope`] — scoped threads with the crossbeam 0.8 calling
//!   convention (the spawn closure receives the scope, `scope` returns a
//!   `Result`), backed by [`std::thread::scope`];
//! - [`channel`] — MPMC channels with clonable receivers, backed by
//!   [`std::sync::mpsc`] plus a mutex on the receiving side.

pub mod channel;
pub mod thread;
