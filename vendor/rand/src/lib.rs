//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `rand` to this minimal, dependency-free implementation of the
//! API subset the repository actually uses: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`, `sample`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] (a deterministic xoshiro256++ generator).
//!
//! The streams differ from the real `rand` crate, but every generator here
//! is deterministic for a given seed, which is all the experiments and
//! tests rely on.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard, Uniform};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over their full range).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A random value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample.
///
/// Implemented once for `Range<T>` / `RangeInclusive<T>` over every
/// [`SampleUniform`] `T`, mirroring the real crate's blanket impl so that
/// float-literal ranges (`-1.0..1.0`) infer `f64` through the default
/// numeric fallback.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable between two bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform value in `[lo, hi)` (or `[lo, hi]` if `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        lo + (hi - lo) * unit_f64(rng) as f32
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&y));
            let n = rng.gen_range(3..9usize);
            assert!((3..9).contains(&n));
            let m = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&m));
        }
    }

    #[test]
    fn covers_integer_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
