//! Distribution subset: `Standard` and `Uniform`.

use crate::{RngCore, SampleRange};

/// A distribution producing values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: `[0, 1)` for floats, full range
/// for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform distribution over a fixed range, reusable across draws.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: Copy> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        Uniform { lo, hi }
    }
}

impl<T: Copy> Distribution<T> for Uniform<T>
where
    std::ops::Range<T>: SampleRange<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (self.lo..self.hi).sample_single(rng)
    }
}
