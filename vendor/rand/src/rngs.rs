//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12), but
/// deterministic per seed, fast, and statistically solid for simulation
/// workloads.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

/// Alias kept for API familiarity (`SmallRng` ≡ `StdRng` here).
pub type SmallRng = StdRng;
