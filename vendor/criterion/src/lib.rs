//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple wall-clock timer instead of criterion's statistical machinery.
//! Each benchmark prints a single `name ... median ns/iter` line.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// An identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; drives timed iterations.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running enough iterations per sample to get a
    /// stable per-iteration estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample takes ~2ms.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000);

        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.measured.push(Duration::from_nanos(
                (elapsed.as_nanos() / per_sample) as u64,
            ));
        }
    }

    /// Times `routine` with explicit per-call setup excluded from timing.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        self.measured.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.measured.push(start.elapsed());
        }
    }

    fn median_ns(&mut self) -> u64 {
        if self.measured.is_empty() {
            return 0;
        }
        self.measured.sort();
        self.measured[self.measured.len() / 2].as_nanos() as u64
    }
}

fn report(name: &str, bencher: &mut Bencher) {
    println!(
        "bench: {name:<52} {:>12} ns/iter (median)",
        bencher.median_ns()
    );
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Notes the throughput of one iteration (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            measured: Vec::new(),
        };
        routine(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            measured: Vec::new(),
        };
        routine(&mut b, input);
        report(&format!("{}/{}", self.name, id), &mut b);
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Throughput specification (accepted for API compatibility).
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Applies CLI configuration (no-op in the vendored harness).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        routine(&mut b);
        report(name, &mut b);
        self
    }

    /// Runs a standalone benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
        };
        routine(&mut b, input);
        report(&id.to_string(), &mut b);
        self
    }

    #[doc(hidden)]
    pub fn final_summary(&self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n).fold(1, |acc, i| acc.wrapping_mul(i) % 0x7fff_ffff)
    }

    #[test]
    fn group_and_function_benches_run() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("standalone", |b| b.iter(|| fib(black_box(64))));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        for n in [8u64, 16] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| fib(black_box(n)))
            });
        }
        group.bench_function(BenchmarkId::new("named", 4), |b| b.iter(|| fib(4)));
        group.finish();
    }

    criterion_group!(sanity, sanity_target);

    fn sanity_target(c: &mut Criterion) {
        c.bench_function("macro_target", |b| b.iter(|| fib(black_box(10))));
    }

    #[test]
    fn macro_group_invocable() {
        sanity();
    }
}
