//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize, Deserialize)]` for the vendored
//! value-model `serde` without depending on `syn`/`quote`: the input item
//! is parsed directly from the token stream and the impl is emitted as a
//! source string.
//!
//! Supported shapes (everything this workspace derives):
//!
//! - structs with named fields;
//! - enums with unit, newtype, tuple, and struct variants, encoded in
//!   serde's default externally-tagged representation
//!   (`"Variant"` / `{"Variant": …}`).
//!
//! Not supported: generics, tuple structs, `#[serde(...)]` attribute
//! customization (the attribute is accepted and ignored).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Derives the value-model `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the value-model `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut kind: Option<&'static str> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip `#[...]` (and defensive `#![...]`).
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    i += 1;
                }
                i += 1; // the bracket group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = Some(if id.to_string() == "struct" {
                    "struct"
                } else {
                    "enum"
                });
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.ok_or("derive target must be a struct or enum")?;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let chunks = split_commas(g.stream());
            if kind == "struct" {
                let fields = chunks
                    .into_iter()
                    .map(|c| field_name(&c))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Item::Struct { name, fields })
            } else {
                let variants = chunks
                    .into_iter()
                    .map(|c| parse_variant(&c))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Item::Enum { name, variants })
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "vendored serde_derive does not support generics on `{name}`"
        )),
        _ => Err(format!(
            "vendored serde_derive supports only brace-bodied structs/enums (`{name}`)"
        )),
    }
}

/// Splits a token stream at top-level commas, dropping empty chunks.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(tt),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading attributes and visibility from a chunk, in place.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return &chunk[i..],
        }
    }
}

fn field_name(chunk: &[TokenTree]) -> Result<String, String> {
    let rest = strip_attrs_and_vis(chunk);
    match (rest.first(), rest.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
            Ok(id.to_string())
        }
        _ => Err("expected `name: Type` field".into()),
    }
}

fn parse_variant(chunk: &[TokenTree]) -> Result<Variant, String> {
    let rest = strip_attrs_and_vis(chunk);
    let name = match rest.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected variant name".into()),
    };
    let kind = match rest.get(1) {
        None => VariantKind::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = split_commas(g.stream())
                .into_iter()
                .map(|c| field_name(&c))
                .collect::<Result<Vec<_>, _>>()?;
            VariantKind::Struct(fields)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantKind::Tuple(split_commas(g.stream()).len())
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
            // Discriminant (`Variant = 3`): treat as a unit variant.
            VariantKind::Unit
        }
        _ => return Err(format!("unsupported variant shape for `{name}`")),
    };
    Ok(Variant { name, kind })
}

// ---- code generation ----

fn binder_list(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("__f{i}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Serialize::serialize(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders = binder_list(*n);
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Seq(::std::vec![{}]))])",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Map(::std::vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__m, {f:?})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __m = __v.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for struct {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(__inner)?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize(__s.get({i}).ok_or_else(|| ::serde::DeError::new(\"tuple variant too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let __s = __inner.as_seq().ok_or_else(|| ::serde::DeError::new(\"expected array for variant {vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                gets.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(__im, {f:?})?"))
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let __im = __inner.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for variant {vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                             return match __s {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }};\n\
                         }}\n\
                         let __m = __v.as_map().ok_or_else(|| ::serde::DeError::new(\"expected string or map for enum {name}\"))?;\n\
                         if __m.len() != 1 {{\n\
                             return ::std::result::Result::Err(::serde::DeError::new(\"expected single-key map for enum {name}\"));\n\
                         }}\n\
                         let (__tag, __inner) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}
