//! Cross-method integration: every relevance-feedback approach runs
//! through the same session driver and satisfies the paper's comparative
//! structure.

use qcluster::baselines::{Falcon, QueryExpansion, QueryPointMovement, RetrievalMethod};
use qcluster::core::{QclusterConfig, QclusterEngine};
use qcluster::eval::pr::pr_at;
use qcluster::eval::synthetic::SemanticGapConfig;
use qcluster::eval::{Dataset, FeedbackSession};

fn semantic_gap() -> Dataset {
    Dataset::semantic_gap(&SemanticGapConfig {
        categories: 80,
        per_mode: 15,
        ..SemanticGapConfig::default()
    })
}

fn final_recall(ds: &Dataset, method: &mut dyn RetrievalMethod, queries: &[usize]) -> f64 {
    let session = FeedbackSession::new(ds, 30);
    let mut total = 0.0;
    for &q in queries {
        let outcome = session.run(method, q, 3).expect("session runs");
        let last = outcome.iterations.last().expect("non-empty");
        total += pr_at(ds, ds.category(q), &last.retrieved, last.retrieved.len()).recall;
    }
    total / queries.len() as f64
}

#[test]
fn initial_round_is_method_independent() {
    // "They produce the same precision and the same recall for the initial
    // query" (paper Sec. 5) — the first k-NN happens before any refinement.
    let ds = semantic_gap();
    let session = FeedbackSession::new(&ds, 25);
    let mut qc = QclusterEngine::new(QclusterConfig::default());
    let mut qpm = QueryPointMovement::new();
    let mut qex = QueryExpansion::new();
    let mut falcon = Falcon::new();
    let mut initials = Vec::new();
    for m in [
        &mut qc as &mut dyn RetrievalMethod,
        &mut qpm,
        &mut qex,
        &mut falcon,
    ] {
        let outcome = session.run(m, 11, 1).expect("runs");
        initials.push(outcome.iterations[0].retrieved.clone());
    }
    for other in &initials[1..] {
        assert_eq!(&initials[0], other);
    }
}

#[test]
fn qcluster_wins_on_disjunctive_workload() {
    let ds = semantic_gap();
    let queries: Vec<usize> = (0..ds.len()).step_by(157).collect();
    let mut qc = QclusterEngine::new(QclusterConfig::default());
    let mut qpm = QueryPointMovement::new();
    let r_qc = final_recall(&ds, &mut qc, &queries);
    let r_qpm = final_recall(&ds, &mut qpm, &queries);
    assert!(
        r_qc >= r_qpm,
        "qcluster ({r_qc}) must not trail qpm ({r_qpm}) on disjunctive data"
    );
}

#[test]
fn all_methods_improve_over_initial() {
    let ds = semantic_gap();
    let session = FeedbackSession::new(&ds, 30);
    let queries: Vec<usize> = (0..ds.len()).step_by(311).collect();
    let mut qc = QclusterEngine::new(QclusterConfig::default());
    let mut qpm = QueryPointMovement::new();
    let mut qex = QueryExpansion::new();
    let mut falcon = Falcon::new();
    for m in [
        &mut qc as &mut dyn RetrievalMethod,
        &mut qpm,
        &mut qex,
        &mut falcon,
    ] {
        let mut init = 0.0;
        let mut fin = 0.0;
        for &q in &queries {
            let outcome = session.run(m, q, 3).expect("runs");
            let cat = ds.category(q);
            let d0 = outcome.iterations[0].retrieved.len();
            init += pr_at(&ds, cat, &outcome.iterations[0].retrieved, d0).recall;
            let last = outcome.iterations.last().expect("non-empty");
            fin += pr_at(&ds, cat, &last.retrieved, last.retrieved.len()).recall;
        }
        assert!(
            fin >= init,
            "{} failed to improve: {init} -> {fin}",
            m.name()
        );
    }
}

#[test]
fn methods_are_resettable_and_reusable() {
    let ds = semantic_gap();
    let session = FeedbackSession::new(&ds, 20);
    let mut falcon = Falcon::new();
    let a = session.run(&mut falcon, 3, 2).expect("runs");
    let b = session.run(&mut falcon, 3, 2).expect("runs");
    for (x, y) in a.iterations.iter().zip(b.iterations.iter()) {
        assert_eq!(x.retrieved, y.retrieved);
    }
}
