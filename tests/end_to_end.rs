//! End-to-end integration: procedural corpus → feature extraction →
//! hybrid-tree index → Qcluster feedback loop → retrieval quality.

use qcluster::core::{QclusterConfig, QclusterEngine};
use qcluster::eval::pr::pr_at;
use qcluster::eval::{Dataset, FeedbackSession};
use qcluster::imaging::{CorpusBuilder, FeatureKind};

fn dataset(kind: FeatureKind) -> Dataset {
    let corpus = CorpusBuilder::new()
        .categories(15)
        .images_per_category(12)
        .image_size(20)
        .seed(33)
        .build();
    Dataset::from_corpus(&corpus, kind).expect("pipeline builds")
}

#[test]
fn full_pipeline_color_feature() {
    let ds = dataset(FeatureKind::ColorMoments);
    assert_eq!(ds.len(), 180);
    assert_eq!(ds.dim(), 3);

    let session = FeedbackSession::new(&ds, 12);
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let outcome = session.run(&mut engine, 5, 3).expect("session runs");
    assert_eq!(outcome.iterations.len(), 4);

    // Quality after feedback must be at least as good as the initial
    // query's, averaged over several starting images.
    let mut init = 0.0;
    let mut fin = 0.0;
    for q in (0..ds.len()).step_by(23) {
        let outcome = session.run(&mut engine, q, 3).expect("session runs");
        let cat = ds.category(q);
        let depth = outcome.iterations[0].retrieved.len();
        init += pr_at(&ds, cat, &outcome.iterations[0].retrieved, depth).precision;
        let last = outcome.iterations.last().expect("non-empty");
        fin += pr_at(&ds, cat, &last.retrieved, last.retrieved.len()).precision;
    }
    assert!(
        fin >= init * 0.95,
        "feedback degraded quality: {init} -> {fin}"
    );
}

#[test]
fn full_pipeline_texture_feature() {
    let ds = dataset(FeatureKind::CooccurrenceTexture);
    assert_eq!(ds.dim(), 4);
    let session = FeedbackSession::new(&ds, 12);
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let outcome = session.run(&mut engine, 0, 2).expect("session runs");
    assert!(outcome
        .iterations
        .iter()
        .all(|r| r.retrieved.len() == 12 && r.num_marked > 0));
}

#[test]
fn engine_state_survives_many_sessions() {
    // One engine reused across queries (reset each time) must not leak
    // state between sessions.
    let ds = dataset(FeatureKind::ColorMoments);
    let session = FeedbackSession::new(&ds, 10);
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let first = session.run(&mut engine, 0, 2).expect("runs");
    let _other = session.run(&mut engine, 50, 2).expect("runs");
    let again = session.run(&mut engine, 0, 2).expect("runs");
    for (a, b) in first.iterations.iter().zip(again.iterations.iter()) {
        assert_eq!(a.retrieved, b.retrieved, "sessions must be independent");
    }
}

#[test]
fn retrieved_ids_are_valid_and_unique() {
    let ds = dataset(FeatureKind::ColorMoments);
    let session = FeedbackSession::new(&ds, 15);
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let outcome = session.run(&mut engine, 7, 3).expect("runs");
    for rec in &outcome.iterations {
        let mut seen = std::collections::HashSet::new();
        for &id in &rec.retrieved {
            assert!(id < ds.len(), "id {id} out of range");
            assert!(seen.insert(id), "duplicate id {id} in one result set");
        }
    }
}
