//! Integration tests for the production-oriented capabilities that extend
//! the paper's scope: dataset persistence, the growable index, lazy k-NN,
//! and multi-feature fusion — exercised together, across crates.

use qcluster::core::{QclusterConfig, QclusterEngine};
use qcluster::eval::synthetic::SemanticGapConfig;
use qcluster::eval::{persist, Dataset, FeedbackSession, MultiFeatureDataset};
use qcluster::imaging::{CorpusBuilder, FeatureKind};
use qcluster::index::{DynamicIndex, EuclideanQuery};

#[test]
fn persisted_dataset_reproduces_feedback_sessions() {
    let original = Dataset::small_default(FeatureKind::ColorMoments, 55).unwrap();
    let mut buf = Vec::new();
    persist::write_dataset(&original, &mut buf).unwrap();
    let restored = persist::read_dataset(buf.as_slice()).unwrap();

    // An identical feedback session over original and restored datasets
    // must retrieve identical results at every iteration.
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let a = FeedbackSession::new(&original, 15)
        .run(&mut engine, 3, 3)
        .unwrap();
    let b = FeedbackSession::new(&restored, 15)
        .run(&mut engine, 3, 3)
        .unwrap();
    for (x, y) in a.iterations.iter().zip(b.iterations.iter()) {
        assert_eq!(x.retrieved, y.retrieved);
    }
}

#[test]
fn dynamic_index_serves_engine_queries_after_growth() {
    let ds = Dataset::semantic_gap(&SemanticGapConfig {
        categories: 20,
        per_mode: 10,
        ..SemanticGapConfig::default()
    });
    let mut index = DynamicIndex::with_rebuild_threshold(ds.vectors().to_vec(), 16);

    // Grow the collection with near-duplicates of category 0's images.
    for i in 0..40 {
        let mut p = ds.vector(i % 20).to_vec();
        p[0] += 1e-4;
        index.insert(p);
    }
    assert!(index.rebuilds() >= 1);

    // A disjunctive engine query over the grown index is exact: compare
    // against a from-scratch bulk load of the same points.
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let pts: Vec<qcluster::core::FeedbackPoint> = (0..8)
        .map(|id| qcluster::core::FeedbackPoint::new(id, ds.vector(id).to_vec(), 3.0))
        .collect();
    engine.feed(&pts).unwrap();
    let query = engine.query().unwrap();

    let all: Vec<Vec<f64>> = (0..index.len()).map(|i| index.point(i).to_vec()).collect();
    let fresh = qcluster::index::HybridTree::bulk_load(&all);
    let (grown, _) = index.knn(&query, 30, None);
    let (reference, _) = fresh.knn(&query, 30, None);
    for (a, b) in grown.iter().zip(reference.iter()) {
        assert_eq!(a.id, b.id);
    }
}

#[test]
fn lazy_knn_matches_batch_on_real_features() {
    let ds = Dataset::small_default(FeatureKind::CooccurrenceTexture, 8).unwrap();
    let query = EuclideanQuery::new(ds.vector(10).to_vec());
    let (batch, _) = ds.tree().knn(&query, 25, None);
    let lazy: Vec<_> = ds.tree().knn_iter(&query, None).take(25).collect();
    for (a, b) in batch.iter().zip(lazy.iter()) {
        assert_eq!(a.id, b.id);
    }
    // And the stream keeps going past any fixed k, still ordered.
    let more: Vec<_> = ds.tree().knn_iter(&query, None).take(100).collect();
    assert_eq!(more.len(), 100);
    for w in more.windows(2) {
        assert!(w[0].distance <= w[1].distance + 1e-12);
    }
}

#[test]
fn fusion_over_real_image_features() {
    let corpus = CorpusBuilder::new()
        .categories(10)
        .images_per_category(10)
        .image_size(16)
        .seed(91)
        .build();
    let color = Dataset::from_corpus(&corpus, FeatureKind::ColorMoments).unwrap();
    let texture = Dataset::from_corpus(&corpus, FeatureKind::CooccurrenceTexture).unwrap();
    let stack = MultiFeatureDataset::new(vec![color, texture]);

    let qc = EuclideanQuery::new(stack.feature(0).vector(0).to_vec());
    let qt = EuclideanQuery::new(stack.feature(1).vector(0).to_vec());
    let fused = stack.knn_fused(&[&qc, &qt], &[1.0, 1.0], 10);
    assert_eq!(fused.len(), 10);
    assert_eq!(fused[0].id, 0, "the query image itself ranks first");
    // Fused distances are finite and sorted.
    for w in fused.windows(2) {
        assert!(w[0].distance <= w[1].distance);
        assert!(w[1].distance.is_finite());
    }
}

#[test]
fn all_four_feature_kinds_build_consistent_datasets() {
    let corpus = CorpusBuilder::new()
        .categories(6)
        .images_per_category(6)
        .image_size(16)
        .seed(17)
        .build();
    for kind in [
        FeatureKind::ColorMoments,
        FeatureKind::CooccurrenceTexture,
        FeatureKind::ColorHistogram,
        FeatureKind::ColorLayout,
    ] {
        let ds = Dataset::from_corpus(&corpus, kind).unwrap();
        assert_eq!(ds.len(), 36, "{kind:?}");
        assert_eq!(ds.dim(), kind.reduced_dim(), "{kind:?}");
        let q = EuclideanQuery::new(ds.vector(0).to_vec());
        let (nn, _) = ds.tree().knn(&q, 5, None);
        assert_eq!(nn[0].id, 0, "{kind:?}: self is nearest");
    }
}
