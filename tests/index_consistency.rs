//! Index integration: the hybrid tree must return exactly the linear-scan
//! answer under every production distance function — including Qcluster's
//! disjunctive aggregate on real extracted features — and the node cache
//! must never change results.

use qcluster::core::{
    CovarianceScheme, DisjunctiveQuery, FeedbackPoint, QclusterConfig, QclusterEngine,
};
use qcluster::eval::Dataset;
use qcluster::imaging::FeatureKind;
use qcluster::index::{HybridTree, LinearScan, NodeCache};

fn dataset() -> Dataset {
    Dataset::small_default(FeatureKind::ColorMoments, 77).expect("builds")
}

fn engine_query(ds: &Dataset) -> DisjunctiveQuery {
    // Build a realistic disjunctive query from two categories' images.
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let mut pts = Vec::new();
    for id in 0..6 {
        pts.push(FeedbackPoint::new(id, ds.vector(id).to_vec(), 3.0));
    }
    for id in 60..66 {
        pts.push(FeedbackPoint::new(id, ds.vector(id).to_vec(), 3.0));
    }
    engine.feed(&pts).expect("feeds");
    engine.query().expect("compiles")
}

#[test]
fn tree_matches_scan_under_disjunctive_query() {
    let ds = dataset();
    let query = engine_query(&ds);
    let scan = LinearScan::new(ds.vectors());
    let (tree_result, _) = ds.tree().knn(&query, 25, None);
    let scan_result = scan.knn(&query, 25);
    assert_eq!(tree_result.len(), scan_result.len());
    for (a, b) in tree_result.iter().zip(scan_result.iter()) {
        assert_eq!(a.id, b.id);
        assert!((a.distance - b.distance).abs() < 1e-9);
    }
}

#[test]
fn tree_matches_scan_under_full_inverse_scheme() {
    let ds = dataset();
    let mut engine = QclusterEngine::new(QclusterConfig {
        scheme: CovarianceScheme::default_full(),
        ..QclusterConfig::default()
    });
    let pts: Vec<FeedbackPoint> = (0..10)
        .map(|id| FeedbackPoint::new(id, ds.vector(id).to_vec(), 1.0))
        .collect();
    engine.feed(&pts).expect("feeds");
    let query = engine.query().expect("compiles");
    let scan = LinearScan::new(ds.vectors());
    let (tree_result, _) = ds.tree().knn(&query, 15, None);
    let scan_result = scan.knn(&query, 15);
    for (a, b) in tree_result.iter().zip(scan_result.iter()) {
        assert_eq!(a.id, b.id, "full-inverse lower bound must stay admissible");
    }
}

#[test]
fn node_cache_is_result_transparent() {
    let ds = dataset();
    let query = engine_query(&ds);
    let (plain, stats_plain) = ds.tree().knn(&query, 20, None);
    let mut cache = NodeCache::new(ds.tree().num_nodes());
    let (cold, stats_cold) = ds.tree().knn(&query, 20, Some(&mut cache));
    let (warm, stats_warm) = ds.tree().knn(&query, 20, Some(&mut cache));
    assert_eq!(plain, cold);
    assert_eq!(plain, warm);
    assert_eq!(stats_plain.nodes_accessed, stats_cold.nodes_accessed);
    assert_eq!(stats_warm.disk_reads, 0, "second pass fully cached");
}

#[test]
fn page_size_does_not_change_results() {
    let ds = dataset();
    let query = engine_query(&ds);
    let small = HybridTree::bulk_load_with_page_size(ds.vectors(), 256);
    let big = HybridTree::bulk_load_with_page_size(ds.vectors(), 16_384);
    let (a, _) = small.knn(&query, 30, None);
    let (b, _) = big.knn(&query, 30, None);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.id, y.id);
    }
}
