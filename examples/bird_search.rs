//! The paper's Example 1: searching for "bird images" that come in two
//! visual modes — light-green backgrounds and dark-blue backgrounds.
//!
//! A multimodal category maps to two disjoint clusters in feature space.
//! This example shows the engine discovering both modes, keeping them as
//! separate clusters, and the disjunctive query (Eq. 5) retrieving near
//! *either* mode — while the single moved point of query-point movement
//! blurs them together.
//!
//! ```text
//! cargo run --release --example bird_search
//! ```

use qcluster::baselines::QueryPointMovement;
use qcluster::core::{QclusterConfig, QclusterEngine};
use qcluster::eval::{Dataset, FeedbackSession};
use qcluster::imaging::{CorpusBuilder, FeatureKind};

fn main() {
    // Every category is multimodal: a shared "object" palette anchor with
    // a background hue that flips between two modes — the bird situation.
    let corpus = CorpusBuilder::new()
        .categories(60)
        .images_per_category(20)
        .image_size(24)
        .multimodal_fraction(1.0)
        .jitter(0.5)
        .seed(7)
        .build();
    let dataset = Dataset::from_corpus(&corpus, FeatureKind::ColorMoments).expect("features build");

    let query_image = 0; // a "bird" photo from mode A of category 0
    let category = dataset.category(query_image);
    let per = corpus.images_per_category();
    println!(
        "query: image {query_image} of category {category} (rendered with palette mode {})",
        corpus.mode_of(category, query_image % per)
    );

    let session = FeedbackSession::new(&dataset, 30);
    let mode_counts = |retrieved: &[usize]| -> (usize, usize) {
        retrieved
            .iter()
            .filter(|&&id| dataset.category(id) == category)
            .fold((0, 0), |(a, b), &id| {
                if corpus.mode_of(category, id % per) == 0 {
                    (a + 1, b)
                } else {
                    (a, b + 1)
                }
            })
    };

    println!("\nQcluster (disjunctive multipoint query):");
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let outcome = session
        .run(&mut engine, query_image, 4)
        .expect("session runs");
    for (i, rec) in outcome.iterations.iter().enumerate() {
        let (a, b) = mode_counts(&rec.retrieved);
        println!("  iter {i}: {a:>2} green-background + {b:>2} blue-background birds retrieved");
    }
    println!(
        "  engine holds {} clusters — the two modes stay separate representatives",
        engine.num_clusters()
    );

    println!("\nQuery-point movement (single moved point):");
    let mut qpm = QueryPointMovement::new();
    let outcome = session.run(&mut qpm, query_image, 4).expect("session runs");
    for (i, rec) in outcome.iterations.iter().enumerate() {
        let (a, b) = mode_counts(&rec.retrieved);
        println!("  iter {i}: {a:>2} green-background + {b:>2} blue-background birds retrieved");
    }
}
