//! The image feature pipeline step by step: render a procedural image,
//! extract HSV color moments and GLCM texture statistics, and reduce them
//! with PCA — the exact preparation the paper applies to its 30,000-image
//! collection (Sec. 5).
//!
//! ```text
//! cargo run --release --example feature_pipeline
//! ```

use qcluster::imaging::glcm::texture_features;
use qcluster::imaging::moments::color_moments;
use qcluster::imaging::{CorpusBuilder, FeatureKind, FeatureSet};

fn main() {
    let corpus = CorpusBuilder::new()
        .categories(10)
        .images_per_category(10)
        .image_size(32)
        .seed(5)
        .build();

    // One image, raw features.
    let img = corpus.render(0, 0);
    println!("rendered image: {}x{} pixels", img.width(), img.height());

    let cm = color_moments(&img);
    println!("\nHSV color moments (9 dims: μ/σ/skew per channel):");
    for (label, chunk) in ["H", "S", "V"].iter().zip(cm.chunks(3)) {
        println!(
            "  {label}: mean={:+.3} std={:.3} skew={:+.3}",
            chunk[0], chunk[1], chunk[2]
        );
    }

    let tx = texture_features(&img);
    println!("\nGLCM texture statistics (16 dims):");
    let names = [
        "energy",
        "inertia",
        "entropy",
        "homogeneity",
        "correlation",
        "variance",
        "sum avg",
        "sum var",
        "sum entropy",
        "diff avg",
        "diff var",
        "diff entropy",
        "max prob",
        "shade",
        "prominence",
        "dissimilarity",
    ];
    for (name, v) in names.iter().zip(tx.iter()) {
        println!("  {name:<14} {v:+.4}");
    }

    // Whole-corpus pipelines: PCA fit + standardization.
    for kind in [FeatureKind::ColorMoments, FeatureKind::CooccurrenceTexture] {
        let fs = FeatureSet::build(&corpus, kind).expect("pipeline builds");
        println!(
            "\n{kind:?}: {} raw dims -> {} PCA dims, retaining {:.1}% of variance",
            kind.raw_dim(),
            fs.dim(),
            100.0 * fs.pipeline().retained_variance()
        );
        println!(
            "  image (0,0) reduced vector: {:?}",
            fs.vector(0)
                .iter()
                .map(|x| (x * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
