//! An interactive relevance-feedback session on the terminal.
//!
//! Plays the paper's loop with *you* as the user: the system shows the
//! top-k images (as category/mode descriptions — the corpus is synthetic),
//! you type the ranks you consider relevant, and the engine refines the
//! query. Blank input accepts the oracle's judgement (same-category =
//! relevant); `q` quits.
//!
//! ```text
//! cargo run --release --example interactive
//! ```

use qcluster::core::{FeedbackPoint, QclusterConfig, QclusterEngine};
use qcluster::eval::{Dataset, RelevanceOracle};
use qcluster::imaging::{CorpusBuilder, FeatureKind};
use qcluster::index::{EuclideanQuery, NodeCache, QueryDistance};
use std::io::{BufRead, Write};

const K: usize = 12;

fn main() {
    let corpus = CorpusBuilder::new()
        .categories(30)
        .images_per_category(15)
        .image_size(24)
        .multimodal_fraction(0.5)
        .seed(23)
        .build();
    let dataset = Dataset::from_corpus(&corpus, FeatureKind::ColorMoments).expect("features build");
    let oracle = RelevanceOracle::new(&dataset);

    let query_image = 0;
    let category = dataset.category(query_image);
    println!(
        "Searching for images like image {query_image} (category {category}).\n\
         Mark relevant ranks like `1 3 4`, press Enter to accept the oracle's\n\
         marks, or `q` to quit.\n"
    );

    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let mut cache = NodeCache::new(dataset.tree().num_nodes());
    let mut retrieved: Vec<usize> = {
        let q = EuclideanQuery::new(dataset.vector(query_image).to_vec());
        dataset
            .tree()
            .knn(&q, K, Some(&mut cache))
            .0
            .iter()
            .map(|n| n.id)
            .collect()
    };

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    for round in 1.. {
        let hits = retrieved
            .iter()
            .filter(|&&id| dataset.category(id) == category)
            .count();
        println!("--- round {round}: {hits}/{K} relevant in view ---");
        for (rank, &id) in retrieved.iter().enumerate() {
            let cat = dataset.category(id);
            let mode = corpus.mode_of(cat, id % corpus.images_per_category());
            let tag = if cat == category {
                "RELEVANT"
            } else if oracle.same_super(category, id) {
                "related"
            } else {
                ""
            };
            println!(
                "  [{:>2}] image {:>5}  category {:>3} mode {mode}  {tag}",
                rank + 1,
                id,
                cat
            );
        }
        print!("relevant ranks> ");
        std::io::stdout().flush().expect("stdout flushes");

        let Some(Ok(line)) = lines.next() else { break };
        let line = line.trim().to_string();
        if line == "q" {
            break;
        }
        let marked: Vec<FeedbackPoint> = if line.is_empty() {
            retrieved
                .iter()
                .filter_map(|&id| {
                    let score = oracle.score(category, id);
                    (score > 0.0)
                        .then(|| FeedbackPoint::new(id, dataset.vector(id).to_vec(), score))
                })
                .collect()
        } else {
            line.split_whitespace()
                .filter_map(|t| t.parse::<usize>().ok())
                .filter(|&r| r >= 1 && r <= retrieved.len())
                .map(|r| {
                    let id = retrieved[r - 1];
                    FeedbackPoint::new(id, dataset.vector(id).to_vec(), 3.0)
                })
                .collect()
        };
        if marked.is_empty() {
            println!("nothing marked — try again");
            continue;
        }
        engine.feed(&marked).expect("engine feeds");
        let query = engine.query().expect("query compiles");
        let (nn, stats) = dataset.tree().knn(&query, K, Some(&mut cache));
        retrieved = nn.iter().map(|n| n.id).collect();
        println!(
            "refined: {} clusters, {} disk reads (distance at top hit {:.4})\n",
            engine.num_clusters(),
            stats.disk_reads,
            query.distance(dataset.vector(retrieved[0]))
        );
    }
    println!("bye");
}
