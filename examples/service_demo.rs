//! Service demo: one shared `Service` front-ending the Qcluster engine
//! for many concurrent clients, each running its own relevance-feedback
//! session over the wire protocol.
//!
//! ```text
//! cargo run --release --example service_demo
//! ```
//!
//! Every client thread speaks JSON through [`dispatch`], exactly as a
//! network front-end would: create a session, run the initial
//! example-image query, mark the best hits relevant, re-query with the
//! refined disjunctive query, and close. The service fans each k-NN out
//! across its shards on a persistent worker pool and keeps per-session
//! node caches, so the final stats show cache hits (the multipoint
//! approach of the paper's Figure 7) and per-operation latencies.
//!
//! The service is **durable**: it opens a `qcluster-store` directory,
//! each client live-ingests one extra image (`Request::Ingest` —
//! WAL-append, immediately queryable), and the run ends with a
//! `Request::Flush` folding the WAL into a sealed segment, followed by
//! a restart proving every ingest survived.

use std::sync::Arc;
use std::thread;

use qcluster::service::{dispatch, Request, Response, Service, ServiceConfig, StoreConfig};

const CLIENTS: usize = 8;
const ROUNDS: usize = 3;
const K: usize = 10;

/// A small clustered corpus: `CLIENTS` well-separated Gaussian-ish blobs,
/// so each client has a "category" whose images its feedback should
/// concentrate on.
fn make_corpus(per_blob: usize) -> Vec<Vec<f64>> {
    let mut points = Vec::with_capacity(CLIENTS * per_blob);
    for blob in 0..CLIENTS {
        let cx = (blob % 4) as f64 * 10.0;
        let cy = (blob / 4) as f64 * 10.0;
        for i in 0..per_blob {
            let a = i as f64 * 0.61;
            let r = 0.2 + 0.8 * ((i * 7919 % per_blob) as f64 / per_blob as f64);
            points.push(vec![cx + r * a.cos(), cy + r * a.sin()]);
        }
    }
    points
}

/// One JSON round-trip through the dispatcher, as a byte transport would
/// carry it.
fn call(service: &Service, request: &Request) -> Response {
    let wire = serde_json::to_string(request).expect("serialize request");
    let parsed: Request = serde_json::from_str(&wire).expect("parse request");
    let response = dispatch(service, parsed);
    let wire_back = serde_json::to_string(&response).expect("serialize response");
    serde_json::from_str(&wire_back).expect("parse response")
}

fn client(service: &Service, blob: usize, per_blob: usize) -> (u64, usize) {
    let Response::SessionCreated { session } =
        call(service, &Request::CreateSession { engine: None })
    else {
        panic!("session create failed");
    };

    // Live-ingest one new image into this client's blob: WAL-append on
    // the shared store, immediately queryable under the returned id.
    let cx = (blob % 4) as f64 * 10.0;
    let cy = (blob / 4) as f64 * 10.0;
    let Response::Ingested { id: ingested, .. } = call(
        service,
        &Request::Ingest {
            vector: vec![cx + 0.05, cy + 0.05],
        },
    ) else {
        panic!("ingest failed");
    };

    // Initial round: query by an example vector near the blob's centre.
    let mut response = call(
        service,
        &Request::Query {
            session,
            k: K,
            vector: Some(vec![cx + 0.3, cy - 0.2]),
            deadline_ms: None,
        },
    );

    let blob_range = blob * per_blob..(blob + 1) * per_blob;
    let in_this_blob = |id: usize| blob_range.contains(&id) || id == ingested;
    let mut in_blob = 0usize;
    for _ in 0..ROUNDS {
        let Response::Neighbors { neighbors, .. } = response else {
            panic!("query failed");
        };
        in_blob = neighbors.iter().filter(|n| in_this_blob(n.id)).count();
        // Mark the in-blob results relevant and ask for the refined round.
        let relevant_ids: Vec<usize> = neighbors
            .iter()
            .map(|n| n.id)
            .filter(|&id| in_this_blob(id))
            .collect();
        let Response::FeedAccepted { .. } = call(
            service,
            &Request::Feed {
                session,
                relevant_ids,
                scores: None,
            },
        ) else {
            panic!("feed failed");
        };
        response = call(
            service,
            &Request::Query {
                session,
                k: K,
                vector: None,
                deadline_ms: None,
            },
        );
    }

    let Response::SessionClosed { .. } = call(service, &Request::CloseSession { session }) else {
        panic!("close failed");
    };
    (session, in_blob)
}

fn main() {
    let per_blob = 64;
    let points = make_corpus(per_blob);
    let store_dir = std::env::temp_dir().join(format!("qcluster_demo_{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let config = ServiceConfig {
        num_shards: 4,
        num_workers: 4,
        ..ServiceConfig::default()
    };
    let service = Arc::new(
        Service::open_durable(&store_dir, &points, config.clone(), StoreConfig::default())
            .expect("open durable service"),
    );
    println!(
        "service: {} images, {} shards, {} workers, store at {}",
        points.len(),
        service.config().num_shards,
        service.config().num_workers,
        store_dir.display()
    );

    let handles: Vec<_> = (0..CLIENTS)
        .map(|blob| {
            let service = Arc::clone(&service);
            thread::spawn(move || client(&service, blob, per_blob))
        })
        .collect();
    for (blob, handle) in handles.into_iter().enumerate() {
        let (session, in_blob) = handle.join().expect("client thread");
        println!(
            "client {blob}: session {session} finished, final top-{K} has {in_blob}/{K} \
             images from its category"
        );
    }

    let Response::Stats(stats) = call(&service, &Request::Stats) else {
        panic!("stats failed");
    };
    println!("\nservice stats after {} concurrent clients:", CLIENTS);
    println!(
        "  queries: {} (mean {:.1} µs)   feeds: {} (mean {:.1} µs)",
        stats.query.count,
        stats.query.mean_ns / 1_000.0,
        stats.feed.count,
        stats.feed.mean_ns / 1_000.0
    );
    println!(
        "  fan-out: mean {:.1} µs over {} shards",
        stats.fanout.mean_ns / 1_000.0,
        service.config().num_shards
    );
    println!(
        "  cache: {} hits / {} misses (hit ratio {:.2})",
        stats.cache_hits, stats.cache_misses, stats.cache_hit_ratio
    );
    println!(
        "  sessions: {} created, {} closed, {} active, {} evicted",
        stats.sessions_created, stats.sessions_closed, stats.active_sessions, stats.evictions
    );
    println!(
        "  storage: {} ingests, {} WAL appends, {} fsyncs, {} WAL-only vectors",
        stats.ingests,
        stats.storage.wal_appends,
        stats.storage.wal_fsyncs,
        stats.storage.wal_vectors
    );

    // Seal the WAL into a segment, then restart to prove durability.
    let Response::Flushed {
        folded_vectors,
        segments,
        ..
    } = call(&service, &Request::Flush)
    else {
        panic!("flush failed");
    };
    println!("\nflush: folded {folded_vectors} vectors, {segments} sealed segments");

    let expected = service.total_vectors();
    drop(service);
    let reopened = Service::open_durable(&store_dir, &[], config, StoreConfig::default())
        .expect("recover service");
    assert_eq!(reopened.total_vectors(), expected);
    println!(
        "restart: recovered {} vectors ({} ingested live) and {} session(s)",
        reopened.total_vectors(),
        CLIENTS,
        reopened.active_sessions()
    );
    std::fs::remove_dir_all(&store_dir).ok();
}
