//! Service demo: a real TCP server fronting one shared `Service`, with
//! many concurrent clients each running its own relevance-feedback
//! session **over localhost** through `qcluster-net`'s framed protocol.
//!
//! ```text
//! cargo run --release --example service_demo
//! ```
//!
//! The server binds `127.0.0.1:0` (an OS-assigned port) and every
//! client thread opens its own [`Client`] connection: create a session,
//! run the initial example-image query, mark the best hits relevant,
//! re-query with the refined disjunctive query, and close — all as
//! length-prefixed CRC-checked frames on the wire, pipelined where the
//! protocol allows. The service fans each k-NN out across its shards on
//! a persistent worker pool, and the final stats show cache behaviour,
//! end-to-end latency percentiles, and the transport's own counters
//! (connections, frames, sheds).
//!
//! The service is **durable**: it opens a `qcluster-store` directory,
//! each client live-ingests one extra image (`Request::Ingest` —
//! WAL-append, immediately queryable), and the run ends with a
//! `Request::Flush` folding the WAL into a sealed segment, a graceful
//! server shutdown (drain, then close), and a restart proving every
//! ingest survived.

use std::sync::Arc;
use std::thread;

use qcluster::net::{Client, ClientConfig, Server, ServerConfig};
use qcluster::service::{Request, Response, Service, ServiceConfig, StoreConfig};
use std::net::SocketAddr;

const CLIENTS: usize = 8;
const ROUNDS: usize = 3;
const K: usize = 10;

/// A small clustered corpus: `CLIENTS` well-separated Gaussian-ish blobs,
/// so each client has a "category" whose images its feedback should
/// concentrate on.
fn make_corpus(per_blob: usize) -> Vec<Vec<f64>> {
    let mut points = Vec::with_capacity(CLIENTS * per_blob);
    for blob in 0..CLIENTS {
        let cx = (blob % 4) as f64 * 10.0;
        let cy = (blob / 4) as f64 * 10.0;
        for i in 0..per_blob {
            let a = i as f64 * 0.61;
            let r = 0.2 + 0.8 * ((i * 7919 % per_blob) as f64 / per_blob as f64);
            points.push(vec![cx + r * a.cos(), cy + r * a.sin()]);
        }
    }
    points
}

/// One feedback-driven retrieval session over a live TCP connection.
fn client(addr: SocketAddr, blob: usize, per_blob: usize) -> (u64, usize) {
    let mut client = Client::connect(addr, ClientConfig::default()).expect("connect");
    let call = |client: &mut Client, request: &Request| -> Response {
        client.call(request).expect("wire call")
    };

    let Response::SessionCreated { session } =
        call(&mut client, &Request::CreateSession { engine: None })
    else {
        panic!("session create failed");
    };

    // Live-ingest one new image into this client's blob: WAL-append on
    // the shared store, immediately queryable under the returned id.
    let cx = (blob % 4) as f64 * 10.0;
    let cy = (blob / 4) as f64 * 10.0;
    let Response::Ingested { id: ingested, .. } = call(
        &mut client,
        &Request::Ingest {
            vector: vec![cx + 0.05, cy + 0.05],
        },
    ) else {
        panic!("ingest failed");
    };

    // Initial round: query by an example vector near the blob's centre.
    let mut response = call(
        &mut client,
        &Request::Query {
            session,
            k: K,
            vector: Some(vec![cx + 0.3, cy - 0.2]),
            deadline_ms: None,
        },
    );

    let blob_range = blob * per_blob..(blob + 1) * per_blob;
    let in_this_blob = |id: usize| blob_range.contains(&id) || id == ingested;
    let mut in_blob = 0usize;
    for _ in 0..ROUNDS {
        let Response::Neighbors { neighbors, .. } = response else {
            panic!("query failed");
        };
        in_blob = neighbors.iter().filter(|n| in_this_blob(n.id)).count();
        // Mark the in-blob results relevant and ask for the refined round.
        let relevant_ids: Vec<usize> = neighbors
            .iter()
            .map(|n| n.id)
            .filter(|&id| in_this_blob(id))
            .collect();
        let Response::FeedAccepted { .. } = call(
            &mut client,
            &Request::Feed {
                session,
                relevant_ids,
                scores: None,
            },
        ) else {
            panic!("feed failed");
        };
        response = call(
            &mut client,
            &Request::Query {
                session,
                k: K,
                vector: None,
                deadline_ms: None,
            },
        );
    }

    let Response::SessionClosed { .. } = call(&mut client, &Request::CloseSession { session })
    else {
        panic!("close failed");
    };
    (session, in_blob)
}

fn main() {
    let per_blob = 64;
    let points = make_corpus(per_blob);
    let store_dir = std::env::temp_dir().join(format!("qcluster_demo_{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let config = ServiceConfig {
        num_shards: 4,
        num_workers: 4,
        ..ServiceConfig::default()
    };
    let service = Arc::new(
        Service::open_durable(&store_dir, &points, config.clone(), StoreConfig::default())
            .expect("open durable service"),
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("bind server");
    let addr = server.local_addr();
    println!(
        "server: {} on {} images, {} shards, {} workers, store at {}",
        addr,
        points.len(),
        service.config().num_shards,
        service.config().num_workers,
        store_dir.display()
    );

    let handles: Vec<_> = (0..CLIENTS)
        .map(|blob| thread::spawn(move || client(addr, blob, per_blob)))
        .collect();
    for (blob, handle) in handles.into_iter().enumerate() {
        let (session, in_blob) = handle.join().expect("client thread");
        println!(
            "client {blob}: session {session} finished, final top-{K} has {in_blob}/{K} \
             images from its category"
        );
    }

    // Stats and the WAL flush ride the same wire protocol.
    let mut admin = Client::connect(addr, ClientConfig::default()).expect("connect admin");
    let Response::Stats(stats) = admin.call(&Request::Stats).expect("stats call") else {
        panic!("stats failed");
    };
    println!("\nservice stats after {} concurrent clients:", CLIENTS);
    println!(
        "  queries: {} (mean {:.1} µs)   feeds: {} (mean {:.1} µs)",
        stats.query.count,
        stats.query.mean_ns / 1_000.0,
        stats.feed.count,
        stats.feed.mean_ns / 1_000.0
    );
    println!(
        "  query latency: p50 {:.1} µs  p95 {:.1} µs  p99 {:.1} µs  max {:.1} µs",
        stats.query_percentiles.p50_ns as f64 / 1_000.0,
        stats.query_percentiles.p95_ns as f64 / 1_000.0,
        stats.query_percentiles.p99_ns as f64 / 1_000.0,
        stats.query_percentiles.max_ns as f64 / 1_000.0
    );
    println!(
        "  shard latency: p50 {:.1} µs  p99 {:.1} µs over {} shards",
        stats.shard_latency.p50_ns as f64 / 1_000.0,
        stats.shard_latency.p99_ns as f64 / 1_000.0,
        service.config().num_shards
    );
    println!(
        "  cache: {} hits / {} misses (hit ratio {:.2})",
        stats.cache_hits, stats.cache_misses, stats.cache_hit_ratio
    );
    println!(
        "  sessions: {} created, {} closed, {} active, {} evicted",
        stats.sessions_created, stats.sessions_closed, stats.active_sessions, stats.evictions
    );
    println!(
        "  transport: {} conns accepted ({} active, {} rejected), {} frames in / {} out, \
         {} decode errors, {} sheds",
        stats.transport.connections_accepted,
        stats.transport.connections_active,
        stats.transport.connections_rejected,
        stats.transport.frames_in,
        stats.transport.frames_out,
        stats.transport.decode_errors,
        stats.transport.write_queue_sheds
    );
    println!(
        "  storage: {} ingests, {} WAL appends, {} fsyncs, {} WAL-only vectors",
        stats.ingests,
        stats.storage.wal_appends,
        stats.storage.wal_fsyncs,
        stats.storage.wal_vectors
    );

    // Seal the WAL into a segment, then shut the server down gracefully
    // and restart the service to prove durability.
    let Response::Flushed {
        folded_vectors,
        segments,
        ..
    } = admin.call(&Request::Flush).expect("flush call")
    else {
        panic!("flush failed");
    };
    println!("\nflush: folded {folded_vectors} vectors, {segments} sealed segments");
    drop(admin);

    let report = server.shutdown();
    println!(
        "shutdown: drained {} in-flight, aborted {}, detached {} (clean: {})",
        report.drained,
        report.aborted_inflight,
        report.detached_threads,
        report.clean()
    );

    let expected = service.total_vectors();
    drop(service);
    let reopened = Service::open_durable(&store_dir, &[], config, StoreConfig::default())
        .expect("recover service");
    assert_eq!(reopened.total_vectors(), expected);
    println!(
        "restart: recovered {} vectors ({} ingested live) and {} session(s)",
        reopened.total_vectors(),
        CLIENTS,
        reopened.active_sessions()
    );
    std::fs::remove_dir_all(&store_dir).ok();
}
