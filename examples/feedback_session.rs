//! Head-to-head comparison of all four relevance-feedback methods on the
//! semantic-gap workload — the controlled dataset where the paper's
//! disjunctive-query premise holds by construction (each category is two
//! disjoint feature-space modes).
//!
//! Reproduces the shape of the paper's Figures 10–13: Qcluster's recall
//! and precision beat query expansion, which beats query-point movement.
//!
//! ```text
//! cargo run --release --example feedback_session
//! ```

use qcluster::baselines::{Falcon, QueryExpansion, QueryPointMovement, RetrievalMethod};
use qcluster::core::{QclusterConfig, QclusterEngine};
use qcluster::eval::pr::pr_at;
use qcluster::eval::synthetic::SemanticGapConfig;
use qcluster::eval::{Dataset, FeedbackSession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITERATIONS: usize = 5;
const K: usize = 50;
const NUM_QUERIES: usize = 20;

fn evaluate(dataset: &Dataset, method: &mut dyn RetrievalMethod) -> Vec<f64> {
    let session = FeedbackSession::new(dataset, K);
    let mut rng = StdRng::seed_from_u64(99);
    let mut recall = [0.0; ITERATIONS + 1];
    for _ in 0..NUM_QUERIES {
        let q = rng.gen_range(0..dataset.len());
        let outcome = session.run(method, q, ITERATIONS).expect("session runs");
        let cat = dataset.category(q);
        for (i, rec) in outcome.iterations.iter().enumerate() {
            recall[i] += pr_at(dataset, cat, &rec.retrieved, rec.retrieved.len()).recall;
        }
    }
    recall.iter().map(|r| r / NUM_QUERIES as f64).collect()
}

fn main() {
    let dataset = Dataset::semantic_gap(&SemanticGapConfig {
        categories: 150,
        ..SemanticGapConfig::default()
    });
    println!(
        "semantic-gap dataset: {} points, {} categories (2 disjoint modes each)\n",
        dataset.len(),
        dataset.len() / dataset.images_per_category()
    );

    let mut qcluster = QclusterEngine::new(QclusterConfig::default());
    let mut qpm = QueryPointMovement::new();
    let mut qex = QueryExpansion::new();
    let mut falcon = Falcon::new();
    let methods: Vec<&mut dyn RetrievalMethod> =
        vec![&mut qcluster, &mut qpm, &mut qex, &mut falcon];

    println!("mean recall@{K} per feedback iteration:");
    print!("{:<12}", "method");
    for i in 0..=ITERATIONS {
        print!("  iter{i:<4}");
    }
    println!();
    let mut finals = Vec::new();
    for method in methods {
        let recall = evaluate(&dataset, method);
        print!("{:<12}", method.name());
        for r in &recall {
            print!("  {r:<8.3}");
        }
        println!();
        finals.push((method.name(), *recall.last().expect("non-empty")));
    }

    let get = |n: &str| {
        finals
            .iter()
            .find(|(m, _)| *m == n)
            .map(|(_, v)| *v)
            .unwrap()
    };
    println!(
        "\nfinal-iteration improvement of Qcluster: vs QEX {:+.1}%, vs QPM {:+.1}%",
        100.0 * (get("qcluster") / get("qex") - 1.0),
        100.0 * (get("qcluster") / get("qpm") - 1.0),
    );
    println!("(paper: ≈ +22% vs QEX, ≈ +34% vs QPM)");
}
