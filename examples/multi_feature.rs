//! Multi-feature retrieval: fusing color and texture rankings.
//!
//! The paper evaluates color moments and GLCM texture separately; real
//! MARS-style systems combine them. This example builds both feature
//! spaces over one corpus and compares single-feature retrieval against
//! the normalized weighted fusion.
//!
//! ```text
//! cargo run --release --example multi_feature
//! ```

use qcluster::eval::{Dataset, MultiFeatureDataset};
use qcluster::imaging::{CorpusBuilder, FeatureKind};
use qcluster::index::EuclideanQuery;

fn main() {
    let corpus = CorpusBuilder::new()
        .categories(40)
        .images_per_category(20)
        .image_size(24)
        .jitter(0.8)
        .seed(19)
        .build();
    println!(
        "corpus: {} images, {} categories",
        corpus.len(),
        corpus.num_categories()
    );

    let color = Dataset::from_corpus(&corpus, FeatureKind::ColorMoments).expect("color");
    let texture = Dataset::from_corpus(&corpus, FeatureKind::CooccurrenceTexture).expect("texture");
    let stack = MultiFeatureDataset::new(vec![color, texture]);

    let k = 20;
    let mut scores = [0usize; 3]; // color-only, texture-only, fused
    let queries: Vec<usize> = (0..stack.len()).step_by(53).collect();
    for &q in &queries {
        let cat = stack.category(q);
        let qc = EuclideanQuery::new(stack.feature(0).vector(q).to_vec());
        let qt = EuclideanQuery::new(stack.feature(1).vector(q).to_vec());
        for (slot, weights) in [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]].iter().enumerate() {
            let result = stack.knn_fused(&[&qc, &qt], weights, k);
            scores[slot] += result
                .iter()
                .filter(|n| stack.category(n.id) == cat)
                .count();
        }
    }
    let denom = (queries.len() * k) as f64;
    println!("\nmean precision@{k} over {} queries:", queries.len());
    println!("  color moments only : {:.3}", scores[0] as f64 / denom);
    println!("  GLCM texture only  : {:.3}", scores[1] as f64 / denom);
    println!("  fused (1:1)        : {:.3}", scores[2] as f64 / denom);
    println!("\nFusion combines complementary evidence: categories that collide");
    println!("in color space are often separated by texture, and vice versa.");
}
