//! Three-node scatter–gather cluster on localhost, in one process.
//!
//! Act 1 — partitioned queries: three nodes each own a contiguous
//! slice of the global id space; the router merges their partial top-k
//! bit-for-bit with a single node holding everything, then one node
//! dies and the answers degrade to `nodes_ok = 2/3` while staying
//! exact over the survivors.
//!
//! Act 2 — replicated ingest: one partition with three durable
//! replicas; every ingest is WAL-shipped to followers and acked only
//! on a majority, so killing the leader loses nothing — the router
//! promotes the most caught-up follower and keeps ingesting.
//!
//! ```sh
//! cargo run --release --example cluster_demo
//! ```

use qcluster_net::{ClientConfig, Server, ServerConfig};
use qcluster_router::{
    synthetic_point, synthetic_slice, Partition, Router, RouterConfig, ShardMap,
};
use qcluster_service::{dispatch, Request, Response, Service, ServiceConfig, StoreConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 8;

fn node(points: &[Vec<f64>]) -> Server {
    let service = Arc::new(Service::new(points, ServiceConfig::default()).unwrap());
    Server::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap()
}

fn durable_node(dir: &Path, points: &[Vec<f64>]) -> Server {
    let service = Arc::new(
        Service::open_durable(
            dir,
            points,
            ServiceConfig::default(),
            StoreConfig::default(),
        )
        .unwrap(),
    );
    Server::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap()
}

fn router_config() -> RouterConfig {
    RouterConfig {
        node_deadline: Duration::from_secs(30),
        client: ClientConfig {
            connect_timeout: Duration::from_secs(1),
            max_connect_attempts: 2,
            backoff_base: Duration::from_millis(10),
            ..ClientConfig::default()
        },
        ..RouterConfig::default()
    }
}

fn main() {
    // ------------------------------------------------------------------
    // Act 1: partitioned scatter–gather, then a dead node.
    // ------------------------------------------------------------------
    let per_node = 120usize;
    let total = 3 * per_node;
    let mut servers: Vec<Option<Server>> = Vec::new();
    let mut partitions = Vec::new();
    for i in 0..3 {
        let id_base = i * per_node;
        let server = node(&synthetic_slice(id_base, per_node, DIM));
        partitions.push(Partition {
            id_base,
            replicas: vec![server.local_addr()],
        });
        servers.push(Some(server));
    }
    let router = Router::new(ShardMap::new(partitions).unwrap(), router_config()).unwrap();
    let session = router.create_session(None).unwrap();

    // A single-node reference over the same corpus, queried in-process.
    let reference =
        Service::new(&synthetic_slice(0, total, DIM), ServiceConfig::default()).unwrap();
    let Response::SessionCreated {
        session: ref_session,
    } = dispatch(&reference, Request::CreateSession { engine: None })
    else {
        unreachable!()
    };

    let query = synthetic_point(999_001, DIM);
    let report = router
        .query(session, 10, Some(query.clone()), None)
        .unwrap();
    let Response::Neighbors {
        neighbors,
        nodes_ok,
        nodes_total,
        ..
    } = &report.response
    else {
        unreachable!()
    };
    let Response::Neighbors {
        neighbors: expected,
        ..
    } = dispatch(
        &reference,
        Request::Query {
            session: ref_session,
            k: 10,
            vector: Some(query.clone()),
            deadline_ms: None,
        },
    )
    else {
        unreachable!()
    };
    assert!(neighbors
        .iter()
        .zip(&expected)
        .all(|(a, b)| a.id == b.id && a.distance.to_bits() == b.distance.to_bits()));
    println!(
        "healthy cluster: nodes_ok = {nodes_ok}/{nodes_total}, top-10 bit-for-bit equal \
         to a single node holding all {total} points"
    );

    // Kill the middle node and query again.
    servers[1].take().unwrap().shutdown();
    let report = router.query(session, 10, Some(query), None).unwrap();
    let Response::Neighbors {
        nodes_ok,
        nodes_total,
        degraded,
        ..
    } = &report.response
    else {
        unreachable!()
    };
    println!(
        "after killing node 1: nodes_ok = {nodes_ok}/{nodes_total}, degraded = {degraded}, \
         failure attributed as {:?}",
        report.failures.first().map(|f| &f.kind)
    );

    // ------------------------------------------------------------------
    // Act 2: replicated ingest, leader death, promotion.
    // ------------------------------------------------------------------
    let base = 40usize;
    let seed = synthetic_slice(0, base, DIM);
    let dirs: Vec<PathBuf> = (0..3)
        .map(|i| {
            let dir = std::env::temp_dir()
                .join(format!("qcluster-cluster-demo-{}-{i}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            dir
        })
        .collect();
    let mut replicas: Vec<Option<Server>> =
        dirs.iter().map(|d| Some(durable_node(d, &seed))).collect();
    let map = ShardMap::new(vec![Partition {
        id_base: 0,
        replicas: replicas
            .iter()
            .map(|s| s.as_ref().unwrap().local_addr())
            .collect(),
    }])
    .unwrap();
    let router = Router::new(map, router_config()).unwrap();

    for i in 0..5 {
        let (id, copies) = router.ingest(synthetic_point(700_000 + i, DIM)).unwrap();
        println!("ingest #{i}: global id {id}, acked on {copies}/3 replicas");
    }
    let leader = router.leader_of(0);
    replicas[leader].take().unwrap().shutdown();
    println!("killed the leader (replica {leader})");
    let (id, copies) = router.ingest(synthetic_point(700_100, DIM)).unwrap();
    let promoted = router.leader_of(0);
    println!(
        "failover ingest: global id {id}, acked on {copies}/3 replicas via promoted \
         leader (replica {promoted})"
    );
    let (total, durable) = router.replica_status(0, promoted).unwrap();
    let gauges = router.cluster_gauges();
    println!(
        "promoted leader holds {total} committed records ({durable} durable); \
         promotions = {}, records shipped = {}, applied = {}",
        gauges.promotions, gauges.replication_records_shipped, gauges.replication_records_applied
    );
    assert_eq!(total, (base + 6) as u64, "no acked ingest was lost");

    drop(router);
    for server in replicas.into_iter().flatten() {
        server.shutdown();
    }
    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    println!("cluster demo: ok");
}
