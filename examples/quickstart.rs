//! Quickstart: index a synthetic image corpus, run a relevance-feedback
//! session with the Qcluster engine, and watch retrieval quality improve.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qcluster::core::{QclusterConfig, QclusterEngine};
use qcluster::eval::pr::pr_at;
use qcluster::eval::{Dataset, FeedbackSession};
use qcluster::imaging::{CorpusBuilder, FeatureKind};

fn main() {
    // 1. Build a synthetic labelled image corpus (stand-in for Corel):
    //    40 categories × 20 images, rendered procedurally.
    let corpus = CorpusBuilder::new()
        .categories(40)
        .images_per_category(20)
        .image_size(24)
        .seed(42)
        .build();
    println!(
        "corpus: {} images in {} categories",
        corpus.len(),
        corpus.num_categories()
    );

    // 2. Extract HSV color moments, PCA-reduce to 3 dims, index with the
    //    hybrid tree. `Dataset` wraps features + ground truth + index.
    let dataset = Dataset::from_corpus(&corpus, FeatureKind::ColorMoments).expect("features build");
    println!(
        "features: {} dims, tree with {} nodes",
        dataset.dim(),
        dataset.tree().num_nodes()
    );

    // 3. Run a feedback session: initial k-NN from a query image, then 4
    //    rounds of (mark relevant → refine → re-query) with the simulated
    //    category-oracle user.
    let query_image = 0;
    let k = 20;
    let session = FeedbackSession::new(&dataset, k);
    let mut engine = QclusterEngine::new(QclusterConfig::default());
    let outcome = session
        .run(&mut engine, query_image, 4)
        .expect("session runs");

    // 4. Report precision/recall per iteration.
    let category = dataset.category(query_image);
    println!("\niteration  precision@{k}  recall@{k}");
    for (i, record) in outcome.iterations.iter().enumerate() {
        let pr = pr_at(
            &dataset,
            category,
            &record.retrieved,
            record.retrieved.len(),
        );
        println!("{i:<10} {:<13.3} {:.3}", pr.precision, pr.recall);
    }
    println!(
        "\nengine ended with {} cluster(s); total simulated disk reads: {}",
        engine.num_clusters(),
        outcome.total_disk_reads()
    );
}
