//! The paper's Example 3 / Figure 5: the aggregate disjunctive distance
//! (Eq. 5) retrieving two disjoint balls from uniform synthetic data.
//!
//! 10,000 points uniform in the cube (−2,−2,−2)–(2,2,2); query points at
//! (−1,−1,−1) and (1,1,1) with identity covariance and unit mass. The
//! fuzzy-OR aggregate ranks the union of the two balls first — a convex
//! combination cannot.
//!
//! ```text
//! cargo run --release --example disjunctive_synthetic
//! ```

use qcluster::baselines::{AggregateKind, MultiPointQuery};
use qcluster::eval::synthetic::uniform_cube;
use qcluster::index::{LinearScan, QueryDistance};

fn main() {
    let points = uniform_cube(10_000, 3, -2.0, 2.0, 42);
    let centers = [[-1.0, -1.0, -1.0], [1.0, 1.0, 1.0]];

    // Ground truth: the OR-region of the two unit balls.
    let in_region = |p: &[f64]| {
        centers
            .iter()
            .any(|c| qcluster::linalg::vecops::sq_euclidean(p, c) <= 1.0)
    };
    let region_size = points.iter().filter(|p| in_region(p)).count();
    println!(
        "points inside either unit ball: {region_size} of {}",
        points.len()
    );

    // Eq. 5: harmonic (α = −1 over squared distances) mass-weighted
    // aggregate — identical to the paper's disjunctive distance.
    let disjunctive = MultiPointQuery::uniform(
        centers.iter().map(|c| c.to_vec()).collect(),
        AggregateKind::FuzzyOr { alpha: -1.0 },
    );
    let convex = MultiPointQuery::uniform(
        centers.iter().map(|c| c.to_vec()).collect(),
        AggregateKind::Convex,
    );

    let scan = LinearScan::new(&points);
    for (query, name) in [(&disjunctive, "disjunctive (Eq. 5)"), (&convex, "convex")] {
        let top = scan.knn(query, region_size);
        let hits = top.iter().filter(|n| in_region(&points[n.id])).count();
        let near = |c: &[f64; 3]| {
            top.iter()
                .filter(|n| qcluster::linalg::vecops::sq_euclidean(&points[n.id], c) <= 1.0)
                .count()
        };
        println!(
            "{name:<22}: top-{region_size} overlap with OR-region {:>5.1}%  \
             (near (-1,-1,-1): {}, near (1,1,1): {})",
            100.0 * hits as f64 / region_size as f64,
            near(&centers[0]),
            near(&centers[1]),
        );
    }
    println!("\nThe disjunctive aggregate recovers both balls; the convex mean");
    println!("prefers the midpoint region and misses most of each ball.");

    // Midpoint comparison — the defining difference in one number.
    let mid = [0.0, 0.0, 0.0];
    let at_center = [1.0, 1.0, 1.0];
    println!(
        "\ndistance at a ball center vs the midpoint:\n  disjunctive: {:>6.3} vs {:>6.3}\n  convex:      {:>6.3} vs {:>6.3}",
        disjunctive.distance(&at_center),
        disjunctive.distance(&mid),
        convex.distance(&at_center),
        convex.distance(&mid),
    );
}
