//! # qcluster
//!
//! A Rust reproduction of **Qcluster: Relevance Feedback Using Adaptive
//! Clustering for Content-Based Image Retrieval** (Kim & Chung, SIGMOD
//! 2003) — the complete system: feature extraction, high-dimensional
//! indexing, the adaptive-clustering feedback engine, every baseline the
//! paper compares against, and the experimental harness that regenerates
//! every table and figure.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here. See the README for the architecture overview and
//! DESIGN.md for the system inventory.
//!
//! ## The full pipeline in one example
//!
//! ```
//! use qcluster::core::{QclusterConfig, QclusterEngine};
//! use qcluster::eval::{Dataset, FeedbackSession, SimulatedUser};
//! use qcluster::imaging::{CorpusBuilder, FeatureKind};
//!
//! // 1. A labelled synthetic image corpus (the Corel stand-in).
//! let corpus = CorpusBuilder::new()
//!     .categories(8)
//!     .images_per_category(8)
//!     .image_size(16)
//!     .seed(1)
//!     .build();
//!
//! // 2. Features (HSV color moments → PCA → 3 dims) + hybrid-tree index.
//! let dataset = Dataset::from_corpus(&corpus, FeatureKind::ColorMoments)?;
//!
//! // 3. A relevance-feedback session: initial k-NN from a query image,
//! //    then rounds of mark → classify/merge → disjunctive re-query.
//! let session = FeedbackSession::new(&dataset, 10);
//! let mut engine = QclusterEngine::new(QclusterConfig::default());
//! let outcome = session.run(&mut engine, 0, 2)?;
//!
//! assert_eq!(outcome.iterations.len(), 3); // initial + 2 feedback rounds
//! assert!(engine.num_clusters() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`linalg`] | `qcluster-linalg` | matrices, LU/Cholesky/Jacobi, PCA |
//! | [`stats`] | `qcluster-stats` | χ²/F distributions, Hotelling's T² |
//! | [`imaging`] | `qcluster-imaging` | synthetic corpus, color moments, GLCM |
//! | [`index`] | `qcluster-index` | hybrid tree, k-NN, range queries, node cache |
//! | [`core`] | `qcluster-core` | **the paper's contribution** — the engine |
//! | [`baselines`] | `qcluster-baselines` | QPM, MindReader, QEX, FALCON |
//! | [`eval`] | `qcluster-eval` | oracle, sessions, P/R, experiments, persistence |
//! | [`service`] | `qcluster-service` | multi-session server: shards, worker pool, protocol, metrics |
//! | [`store`] | `qcluster-store` | durable segments + WAL, crash recovery, compaction |
//! | [`net`] | `qcluster-net` | framed TCP transport: pipelining, backpressure, graceful shutdown |

pub use qcluster_baselines as baselines;
pub use qcluster_core as core;
pub use qcluster_eval as eval;
pub use qcluster_imaging as imaging;
pub use qcluster_index as index;
pub use qcluster_linalg as linalg;
pub use qcluster_net as net;
pub use qcluster_service as service;
pub use qcluster_stats as stats;
pub use qcluster_store as store;
